//! A lightweight item parser on top of [`crate::lexer`].
//!
//! The call-graph rules (§14) need more structure than a token stream —
//! which function a token belongs to, what that function calls, what a
//! file imports — but far less than a real Rust parse. This module
//! extracts exactly that middle layer:
//!
//! - **items**: `fn` (free, `impl` methods, trait default methods,
//!   functions nested in bodies), `mod` (inline), `impl` blocks with
//!   their target type, `use` declarations with the names they bind;
//! - **call expressions** inside every fn body: path calls
//!   (`a::b::f(…)`, turbofish included), method calls (`.m(…)`), and
//!   macro invocations (`panic!(…)`);
//! - **spans**: every top-level item carries its byte span, and
//!   [`ParsedFile::segments`] returns an item/gap sequence that tiles
//!   the file exactly — the property the parser proptests pin, mirroring
//!   the lexer's token-tiling contract.
//!
//! Like the lexer, the parser is **total**: any byte soup parses to
//! *some* item list without panicking; unrecognized tokens fall into
//! gaps. It is also deliberately under-ambitious — no type inference, no
//! trait resolution, no macro expansion. The call-graph layer
//! ([`crate::callgraph`]) compensates with conservative name-based
//! resolution; the corners that stay dark (calls through function
//! pointers, macro-generated code) are documented there.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// Keywords that can start an expression and are followed by `(` without
/// being calls (`if (a) …`, `while (…)`, `return (x)`, …).
const EXPR_KEYWORDS: [&str; 24] = [
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "in",
    "as", "move", "ref", "mut", "where", "dyn", "box", "await", "yield", "unsafe", "do", "typeof",
    "abstract",
];

/// Call names whose argument closure swallows panics (or runs them on
/// another thread): a panic **inside** their parenthesized argument does
/// not unwind into the enclosing function, so `transitive-panic` must
/// not traverse those edges. Determinism taint still flows through them
/// (a caught panic is contained; a caught clock read is not).
const PANIC_GUARDS: [&str; 2] = ["catch_unwind", "spawn"];

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `a::b::f(…)` — the full segment path as written (1+ segments).
    Path(Vec<String>),
    /// `.m(…)` — receiver type unknown.
    Method(String),
    /// `name!(…)` — macro invocation.
    Macro(String),
}

/// One call expression inside a fn body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    pub callee: Callee,
    /// Byte offset of the callee's first token.
    pub byte: usize,
    /// 1-based source line of the call.
    pub line: usize,
    /// True when the call happens inside the argument parentheses of a
    /// [`PANIC_GUARDS`] call (`catch_unwind(…)` / `spawn(…)`).
    pub guarded: bool,
}

/// One parsed function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Target type of the enclosing `impl` (or trait name for trait
    /// default methods); `None` for free functions.
    pub impl_type: Option<String>,
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Byte span from the first modifier/keyword token through the
    /// closing body brace (or terminating `;`).
    pub span: (usize, usize),
    /// Byte span of the body `{ … }` braces; `None` for body-less
    /// declarations (trait signatures, extern fns).
    pub body: Option<(usize, usize)>,
    pub calls: Vec<Call>,
}

/// One name bound by a `use` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseBind {
    /// The name as visible in this file (alias when `as` is used).
    pub name: String,
    /// First path segment: `thermaware_lp`, `std`, `crate`, `super`, …
    pub root: String,
}

/// Top-level segment kinds for the tiling view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    Item,
    Gap,
}

/// One top-level segment; [`ParsedFile::segments`] tiles the file with
/// these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    pub kind: SegmentKind,
    pub start: usize,
    pub end: usize,
}

/// Everything the parser extracts from one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
    pub uses: Vec<UseBind>,
    /// Byte spans of top-level items, in source order, non-overlapping.
    pub item_spans: Vec<(usize, usize)>,
}

impl ParsedFile {
    /// The item/gap tiling of a file of `len` bytes: alternating
    /// segments whose concatenation covers `[0, len)` exactly. Item
    /// segments are [`Self::item_spans`]; everything between, before and
    /// after is a gap (whitespace, comments, stray tokens).
    pub fn segments(&self, len: usize) -> Vec<Segment> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        for &(start, end) in &self.item_spans {
            // item_spans are produced in order and disjoint by
            // construction; clamp defensively so the tiling contract
            // holds even against a parser bug.
            let start = start.clamp(pos, len);
            let end = end.clamp(start, len);
            if start > pos {
                out.push(Segment { kind: SegmentKind::Gap, start: pos, end: start });
            }
            if end > start {
                out.push(Segment { kind: SegmentKind::Item, start, end });
            }
            pos = end;
        }
        if pos < len {
            out.push(Segment { kind: SegmentKind::Gap, start: pos, end: len });
        }
        out
    }
}

/// Parse one source file. Total: never panics, on any input.
pub fn parse(file: &SourceFile) -> ParsedFile {
    let code: Vec<&Token> = file
        .tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let mut p = Parser {
        file,
        code,
        out: ParsedFile::default(),
    };
    let end = p.code.len();
    p.items(0, end, None, true);
    p.out
}

struct Parser<'a> {
    file: &'a SourceFile,
    code: Vec<&'a Token>,
    out: ParsedFile,
}

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &str {
        self.code.get(i).map(|t| t.text(&self.file.text)).unwrap_or("")
    }

    fn kind(&self, i: usize) -> Option<TokenKind> {
        self.code.get(i).map(|t| t.kind)
    }

    fn start_byte(&self, i: usize) -> usize {
        self.code.get(i).map(|t| t.start).unwrap_or(self.file.text.len())
    }

    fn end_byte(&self, i: usize) -> usize {
        self.code.get(i).map(|t| t.end).unwrap_or(self.file.text.len())
    }

    /// Skip one `#[…]` / `#![…]` attribute starting at `i`; returns the
    /// index one past the closing `]` (or `i + 1` if not an attribute).
    fn skip_attr(&self, i: usize) -> usize {
        if self.text(i) != "#" {
            return i + 1;
        }
        let mut j = i + 1;
        if self.text(j) == "!" {
            j += 1;
        }
        if self.text(j) != "[" {
            return i + 1;
        }
        let mut depth = 0usize;
        while j < self.code.len() {
            match self.text(j) {
                "[" | "(" => depth += 1,
                "]" | ")" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        self.code.len()
    }

    /// Skip a balanced `<…>` generic-argument list starting at `i`
    /// (which must point at `<`); returns the index one past the
    /// matching `>`. The lexer never glues `<<`/`>>`, and `->`/`=>` are
    /// distinct tokens, so plain angle counting is exact here.
    fn skip_angles(&self, i: usize) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < self.code.len() {
            match self.text(j) {
                "<" => depth += 1,
                ">" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        self.code.len()
    }

    /// Skip a balanced bracket run starting at `i` (pointing at `{`,
    /// `(` or `[`); returns one past the matching closer.
    fn skip_balanced(&self, i: usize) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < self.code.len() {
            match self.text(j) {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        self.code.len()
    }

    /// Skip to the terminating `;` at bracket depth 0 (consts, statics,
    /// type aliases — their initializers may contain braces).
    fn skip_to_semi(&self, i: usize) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < self.code.len() {
            match self.text(j) {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => return j + 1,
                _ => {}
            }
            j += 1;
        }
        self.code.len()
    }

    /// Parse the items in `code[i..end]`. `impl_type` is the enclosing
    /// impl/trait target for fn items found here; `top_level` records
    /// item spans into [`ParsedFile::item_spans`]. Returns nothing — the
    /// walk is driven to completion internally.
    fn items(&mut self, mut i: usize, end: usize, impl_type: Option<&str>, top_level: bool) {
        while i < end {
            let item_start = i;
            // Attributes + modifiers before the defining keyword.
            let mut j = i;
            while self.text(j) == "#" {
                let nj = self.skip_attr(j);
                if nj <= j {
                    break;
                }
                j = nj;
            }
            let mut is_pub = false;
            loop {
                match self.text(j) {
                    "pub" => {
                        is_pub = true;
                        j += 1;
                        if self.text(j) == "(" {
                            j = self.skip_balanced(j);
                        }
                    }
                    "const" if self.text(j + 1) == "fn" => j += 1,
                    "unsafe" | "async" | "default" => j += 1,
                    "extern" if self.kind(j + 1) == Some(TokenKind::StrLit) => j += 2,
                    _ => break,
                }
            }
            let next = match self.text(j) {
                "fn" => self.item_fn(item_start, j, impl_type, is_pub, top_level),
                "mod" => self.item_mod(item_start, j, top_level),
                "impl" => self.item_impl(item_start, j, top_level),
                "trait" => self.item_trait(item_start, j, top_level),
                "use" => self.item_use(item_start, j, is_pub, top_level),
                "struct" | "enum" | "union" => self.item_type_def(item_start, j, top_level),
                "const" | "static" | "type" => {
                    let e = self.skip_to_semi(j);
                    self.record_span(item_start, e, top_level);
                    e
                }
                "macro_rules" => {
                    // macro_rules ! name { … }
                    let mut k = j + 1;
                    while k < self.code.len() && !matches!(self.text(k), "{" | "(" | "[") {
                        k += 1;
                    }
                    let e = if k < self.code.len() { self.skip_balanced(k) } else { self.code.len() };
                    self.record_span(item_start, e, top_level);
                    e
                }
                "extern" => {
                    // extern block `extern "C" { … }` (the fn-modifier
                    // form was consumed above).
                    let mut k = j + 1;
                    if self.kind(k) == Some(TokenKind::StrLit) {
                        k += 1;
                    }
                    let e = if self.text(k) == "{" { self.skip_balanced(k) } else { k + 1 };
                    self.record_span(item_start, e, top_level);
                    e
                }
                _ => {
                    // Not an item start — advance one token (gap).
                    j.max(item_start) + 1
                }
            };
            i = next.max(i + 1);
        }
    }

    fn record_span(&mut self, start_tok: usize, end_tok: usize, top_level: bool) {
        if !top_level {
            return;
        }
        let start = self.start_byte(start_tok);
        let end = self.end_byte(end_tok.saturating_sub(1)).max(start);
        // Keep spans ordered and disjoint even if a parse stumbled.
        let prev_end = self.out.item_spans.last().map(|&(_, e)| e).unwrap_or(0);
        let start = start.max(prev_end);
        if end > start {
            self.out.item_spans.push((start, end));
        }
    }

    /// `fn name<…>(…) -> … { body }` (or `;`). Returns one past the item.
    fn item_fn(
        &mut self,
        item_start: usize,
        fn_kw: usize,
        impl_type: Option<&str>,
        is_pub: bool,
        top_level: bool,
    ) -> usize {
        let name_idx = fn_kw + 1;
        if self.kind(name_idx) != Some(TokenKind::Ident) {
            // `fn(` pointer type or garbage — not an item.
            return fn_kw + 1;
        }
        let name = self.text(name_idx).to_string();
        let mut j = name_idx + 1;
        if self.text(j) == "<" {
            j = self.skip_angles(j);
        }
        if self.text(j) == "(" {
            j = self.skip_balanced(j);
        }
        // Scan for the body `{` or terminating `;` at bracket depth 0.
        // Return types and where clauses contain parens (`-> (f64, f64)`,
        // `Fn(…) -> …`) but never braces.
        let mut depth = 0usize;
        let mut body: Option<(usize, usize)> = None;
        let mut body_toks: Option<(usize, usize)> = None;
        let mut end_tok = j;
        while j < self.code.len() {
            match self.text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => {
                    end_tok = j + 1;
                    break;
                }
                "{" if depth == 0 => {
                    let close = self.skip_balanced(j);
                    body = Some((self.start_byte(j), self.end_byte(close.saturating_sub(1))));
                    // First token inside the braces .. the closing `}`.
                    body_toks = Some((j + 1, close.saturating_sub(1)));
                    end_tok = close;
                    break;
                }
                _ => {}
            }
            j += 1;
            end_tok = j;
        }
        let span = (
            self.start_byte(item_start),
            self.end_byte(end_tok.saturating_sub(1)).max(self.start_byte(item_start)),
        );
        let line = self.file.line_of(self.start_byte(fn_kw));
        let fn_index = self.out.fns.len();
        self.out.fns.push(FnItem {
            name,
            impl_type: impl_type.map(str::to_string),
            is_pub,
            line,
            span,
            body,
            calls: Vec::new(),
        });
        if let Some((open, close)) = body_toks {
            let calls = self.scan_body(open, close, impl_type, top_level);
            self.out.fns[fn_index].calls = calls;
        }
        self.record_span(item_start, end_tok, top_level);
        end_tok
    }

    /// Walk a fn body: collect call expressions, and parse nested `fn`
    /// items as their own [`FnItem`]s (their tokens are excluded from
    /// this body's calls).
    fn scan_body(
        &mut self,
        mut i: usize,
        end: usize,
        impl_type: Option<&str>,
        _top_level: bool,
    ) -> Vec<Call> {
        let mut calls = Vec::new();
        // Active panic-guard regions: byte offsets where each ends.
        let mut guards: Vec<usize> = Vec::new();
        while i < end {
            let t = self.text(i);
            let byte = self.start_byte(i);
            guards.retain(|&g_end| byte < g_end);
            // Nested fn item (not an `fn(…)` pointer type).
            if t == "fn" && self.kind(i + 1) == Some(TokenKind::Ident) {
                let nxt = self.item_fn(i, i, impl_type, false, false);
                i = nxt.max(i + 1);
                continue;
            }
            if self.kind(i) == Some(TokenKind::Ident) && !EXPR_KEYWORDS.contains(&t) {
                // Method call: `.name(` or `.name::<…>(`.
                if self.text(i.wrapping_sub(1)) == "." && i > 0 {
                    let mut j = i + 1;
                    if self.text(j) == "::" && self.text(j + 1) == "<" {
                        j = self.skip_angles(j + 1);
                    }
                    if self.text(j) == "(" {
                        self.push_call(&mut calls, Callee::Method(t.to_string()), i, &mut guards, j);
                    }
                    i += 1;
                    continue;
                }
                // Macro: `name!(…)` / `name!{…}` / `name![…]`.
                if self.text(i + 1) == "!" && matches!(self.text(i + 2), "(" | "{" | "[") {
                    calls.push(Call {
                        callee: Callee::Macro(t.to_string()),
                        byte,
                        line: self.file.line_of(byte),
                        guarded: !guards.is_empty(),
                    });
                    i += 2;
                    continue;
                }
                // Path call: `seg(::seg)*` then optional turbofish, then `(`.
                // Only start a path at its first segment.
                if self.text(i.wrapping_sub(1)) != "::" || i == 0 {
                    let mut segs = vec![t.to_string()];
                    let mut j = i + 1;
                    while self.text(j) == "::" && self.kind(j + 1) == Some(TokenKind::Ident) {
                        segs.push(self.text(j + 1).to_string());
                        j += 2;
                    }
                    let mut k = j;
                    if self.text(k) == "::" && self.text(k + 1) == "<" {
                        k = self.skip_angles(k + 1);
                    }
                    if self.text(k) == "(" {
                        self.push_call(&mut calls, Callee::Path(segs), i, &mut guards, k);
                    }
                    i = j.max(i + 1);
                    continue;
                }
            }
            i += 1;
        }
        calls
    }

    /// Record one call, opening a guard region when the callee is a
    /// panic guard (`open_paren` points at its `(`).
    fn push_call(
        &mut self,
        calls: &mut Vec<Call>,
        callee: Callee,
        at: usize,
        guards: &mut Vec<usize>,
        open_paren: usize,
    ) {
        let byte = self.start_byte(at);
        let name = match &callee {
            Callee::Path(segs) => segs.last().map(String::as_str).unwrap_or(""),
            Callee::Method(m) => m.as_str(),
            Callee::Macro(m) => m.as_str(),
        };
        let is_guard = PANIC_GUARDS.contains(&name);
        calls.push(Call {
            callee,
            byte,
            line: self.file.line_of(byte),
            guarded: !guards.is_empty(),
        });
        if is_guard {
            let close = self.skip_balanced(open_paren);
            guards.push(self.start_byte(close.saturating_sub(1)) + 1);
        }
    }

    /// `mod name { … }` (recurse) or `mod name;`.
    fn item_mod(&mut self, item_start: usize, kw: usize, top_level: bool) -> usize {
        let mut j = kw + 1;
        if self.kind(j) == Some(TokenKind::Ident) {
            j += 1;
        }
        if self.text(j) == "{" {
            let close = self.skip_balanced(j);
            self.items(j + 1, close.saturating_sub(1), None, false);
            self.record_span(item_start, close, top_level);
            close
        } else if self.text(j) == ";" {
            self.record_span(item_start, j + 1, top_level);
            j + 1
        } else {
            kw + 1
        }
    }

    /// `impl<…> Type { … }` / `impl<…> Trait for Type { … }`.
    fn item_impl(&mut self, item_start: usize, kw: usize, top_level: bool) -> usize {
        let mut j = kw + 1;
        if self.text(j) == "<" {
            j = self.skip_angles(j);
        }
        // Collect the target type: idents up to `{`/`where`, restarting
        // after `for`; the type is the last path segment before any
        // generic arguments.
        let mut target: Option<String> = None;
        let mut after_angle = false;
        while j < self.code.len() {
            match self.text(j) {
                "{" => break,
                ";" => {
                    // `impl Trait for Type;` (negative/marker impls).
                    self.record_span(item_start, j + 1, top_level);
                    return j + 1;
                }
                "for" => {
                    target = None;
                    after_angle = false;
                    j += 1;
                }
                "where" => {
                    // Bounds may mention types; stop collecting.
                    while j < self.code.len() && self.text(j) != "{" && self.text(j) != ";" {
                        j += 1;
                    }
                }
                "<" => {
                    j = self.skip_angles(j);
                    after_angle = true;
                }
                _ => {
                    if self.kind(j) == Some(TokenKind::Ident) && !after_angle {
                        let t = self.text(j);
                        if t != "dyn" && t != "mut" {
                            target = Some(t.to_string());
                        }
                    }
                    j += 1;
                }
            }
        }
        if self.text(j) != "{" {
            return kw + 1;
        }
        let close = self.skip_balanced(j);
        let target = target.unwrap_or_default();
        let impl_type = if target.is_empty() { None } else { Some(target) };
        self.items(j + 1, close.saturating_sub(1), impl_type.as_deref(), false);
        self.record_span(item_start, close, top_level);
        close
    }

    /// `trait Name { … }` — default method bodies are parsed with the
    /// trait name as their impl type.
    fn item_trait(&mut self, item_start: usize, kw: usize, top_level: bool) -> usize {
        let name = if self.kind(kw + 1) == Some(TokenKind::Ident) {
            Some(self.text(kw + 1).to_string())
        } else {
            None
        };
        let mut j = kw + 1;
        while j < self.code.len() && !matches!(self.text(j), "{" | ";") {
            if self.text(j) == "<" {
                j = self.skip_angles(j);
            } else {
                j += 1;
            }
        }
        if self.text(j) == "{" {
            let close = self.skip_balanced(j);
            self.items(j + 1, close.saturating_sub(1), name.as_deref(), false);
            self.record_span(item_start, close, top_level);
            close
        } else {
            self.record_span(item_start, j + 1, top_level);
            j + 1
        }
    }

    /// `use path::{a, b as c};` — record every bound name with its root
    /// segment.
    fn item_use(&mut self, item_start: usize, kw: usize, _is_pub: bool, top_level: bool) -> usize {
        let semi = self.skip_to_semi(kw);
        let mut root: Option<String> = None;
        let mut prev_ident: Option<String> = None;
        let mut k = kw + 1;
        while k < semi {
            let t = self.text(k);
            match t {
                "as" => {
                    // Alias: the *next* ident is the bound name.
                    if self.kind(k + 1) == Some(TokenKind::Ident) {
                        let alias = self.text(k + 1).to_string();
                        if let Some(r) = &root {
                            self.out.uses.push(UseBind { name: alias, root: r.clone() });
                        }
                        prev_ident = None;
                        k += 2;
                        continue;
                    }
                }
                "," | "}" | ";" => {
                    if let (Some(name), Some(r)) = (prev_ident.take(), root.as_ref()) {
                        self.out.uses.push(UseBind { name, root: r.clone() });
                    }
                }
                "::" | "{" | "*" => {
                    if t == "{" || t == "::" {
                        prev_ident = None;
                    }
                }
                _ => {
                    if self.kind(k) == Some(TokenKind::Ident) {
                        if root.is_none() {
                            root = Some(t.to_string());
                        }
                        prev_ident = Some(t.to_string());
                    }
                }
            }
            k += 1;
        }
        // `use a::b::c;` — the trailing ident before `;` binds `c`.
        if let (Some(name), Some(r)) = (prev_ident, root.as_ref()) {
            // `use thermaware_lp;` binds the root itself.
            self.out.uses.push(UseBind { name, root: r.clone() });
        }
        self.record_span(item_start, semi, top_level);
        semi
    }

    /// `struct`/`enum`/`union` — skip the definition (tuple structs end
    /// in `;`, braced ones in `}`), no recursion needed.
    fn item_type_def(&mut self, item_start: usize, kw: usize, top_level: bool) -> usize {
        let mut j = kw + 1;
        while j < self.code.len() {
            match self.text(j) {
                "<" => j = self.skip_angles(j),
                "(" => {
                    // Tuple struct: `struct X(f64);`.
                    j = self.skip_balanced(j);
                }
                "{" => {
                    let close = self.skip_balanced(j);
                    self.record_span(item_start, close, top_level);
                    return close;
                }
                ";" => {
                    self.record_span(item_start, j + 1, top_level);
                    return j + 1;
                }
                _ => j += 1,
            }
        }
        self.record_span(item_start, self.code.len(), top_level);
        self.code.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&SourceFile::new("t.rs".into(), "x".into(), src.into()))
    }

    #[test]
    fn free_fn_and_method() {
        let p = parse_src(
            "pub fn solve(a: f64) -> f64 { helper(a) }\n\
             struct S;\n\
             impl S { fn m(&self) { self.helper2(); other::f(); } }\n",
        );
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "solve");
        assert!(p.fns[0].is_pub);
        assert_eq!(p.fns[0].impl_type, None);
        assert_eq!(p.fns[0].calls.len(), 1);
        assert_eq!(p.fns[0].calls[0].callee, Callee::Path(vec!["helper".into()]));
        assert_eq!(p.fns[1].name, "m");
        assert_eq!(p.fns[1].impl_type.as_deref(), Some("S"));
        assert_eq!(
            p.fns[1].calls,
            vec![
                Call { callee: Callee::Method("helper2".into()), byte: p.fns[1].calls[0].byte, line: 3, guarded: false },
                Call {
                    callee: Callee::Path(vec!["other".into(), "f".into()]),
                    byte: p.fns[1].calls[1].byte,
                    line: 3,
                    guarded: false
                },
            ]
        );
    }

    #[test]
    fn impl_trait_for_type_takes_the_type() {
        let p = parse_src("impl<T: Clone> fmt::Display for Plan<T> { fn fmt(&self) { write!(f, \"x\"); } }");
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("Plan"));
    }

    #[test]
    fn macro_and_turbofish_calls() {
        let p = parse_src("fn f() { panic!(\"x\"); xs.iter().collect::<Vec<_>>(); g::<u8>(1); }");
        let c = &p.fns[0].calls;
        assert!(c.iter().any(|c| c.callee == Callee::Macro("panic".into())));
        assert!(c.iter().any(|c| c.callee == Callee::Method("collect".into())));
        assert!(c.iter().any(|c| c.callee == Callee::Path(vec!["g".into()])));
    }

    #[test]
    fn guard_regions_mark_calls() {
        let p = parse_src(
            "fn f() { let r = catch_unwind(|| inner_solve(x)); after(); }",
        );
        let c = &p.fns[0].calls;
        let inner = c.iter().find(|c| c.callee == Callee::Path(vec!["inner_solve".into()])).expect("inner");
        let after = c.iter().find(|c| c.callee == Callee::Path(vec!["after".into()])).expect("after");
        assert!(inner.guarded, "call inside catch_unwind must be guarded");
        assert!(!after.guarded, "call after the guard region must not be guarded");
    }

    #[test]
    fn use_binds_names_and_aliases() {
        let p = parse_src(
            "use thermaware_lp::{Problem, solve as lp_solve};\nuse std::time::Instant;\nuse thermaware_core;\n",
        );
        assert!(p.uses.contains(&UseBind { name: "Problem".into(), root: "thermaware_lp".into() }));
        assert!(p.uses.contains(&UseBind { name: "lp_solve".into(), root: "thermaware_lp".into() }));
        assert!(p.uses.contains(&UseBind { name: "Instant".into(), root: "std".into() }));
        assert!(p.uses.contains(&UseBind { name: "thermaware_core".into(), root: "thermaware_core".into() }));
    }

    #[test]
    fn nested_fn_calls_stay_separate() {
        let p = parse_src("fn outer() { fn inner() { deep(); } inner(); }");
        assert_eq!(p.fns.len(), 2);
        let outer = p.fns.iter().find(|f| f.name == "outer").expect("outer");
        let inner = p.fns.iter().find(|f| f.name == "inner").expect("inner");
        assert!(outer.calls.iter().any(|c| c.callee == Callee::Path(vec!["inner".into()])));
        assert!(!outer.calls.iter().any(|c| c.callee == Callee::Path(vec!["deep".into()])));
        assert!(inner.calls.iter().any(|c| c.callee == Callee::Path(vec!["deep".into()])));
    }

    #[test]
    fn segments_tile_the_file() {
        let src = "// header\nuse std::fmt;\n\npub fn a() {}\n\nmod m { fn b() {} }\n// tail\n";
        let p = parse_src(src);
        let segs = p.segments(src.len());
        assert_eq!(segs.first().map(|s| s.start), Some(0));
        assert_eq!(segs.last().map(|s| s.end), Some(src.len()));
        for w in segs.windows(2) {
            assert_eq!(w[0].end, w[1].start, "segments must tile");
        }
        assert_eq!(segs.iter().filter(|s| s.kind == SegmentKind::Item).count(), 3);
    }

    #[test]
    fn keywords_are_not_calls() {
        let p = parse_src("fn f(x: bool) -> u8 { if (x) { return (1); } while (x) {} match (x) { _ => 0 } }");
        assert!(p.fns[0].calls.is_empty(), "{:?}", p.fns[0].calls);
    }
}
