//! `bench --check` / `bench --bless`: one drift gate over every
//! committed `results/BENCH_*.json` baseline (ROADMAP item 5).
//!
//! Before this verb, three bench binaries each carried a private
//! `check_against` with its own tolerance arithmetic and CLI flags, and
//! `BENCH_obs.json` had no gate at all. The gate now lives here, behind
//! a single manifest ([`SPECS`]) with one normalized schema: every gated
//! metric is reduced to the ratio `now / base` and judged by its drift
//! direction —
//!
//! - **lower-is-better** (pivot counts): fail when the ratio exceeds
//!   `1 + TOLERANCE`;
//! - **higher-is-better** (speedups, hit rates): fail when the ratio
//!   falls below `1 - TOLERANCE`;
//! - **pinned** (deterministic replay counters): fail on >15% movement
//!   in either direction — these should be *bit-stable* for a fixed
//!   seed, and movement in either direction means the computation
//!   changed, which is exactly what a reviewer must see and bless.
//!
//! Only scale-free metrics are gated (ratios, rates, seeded counts);
//! wall-clock milliseconds (`overhead_pct`, `mono_s`, `pooled_s`) vary
//! with CI hardware and stay ungated — the bench binaries keep their own
//! absolute floors (e.g. `lp_bench`'s `MIN_SPEEDUP`) which encode
//! machine-independent claims.
//!
//! Flow: each bench binary writes a fresh snapshot under
//! `results/current/`; `bench --check` compares those against the
//! committed `results/BENCH_*.json`; `bench --bless` copies current over
//! committed after validating it parses and carries every gated metric.

use crate::json::{self, Value};
use std::fs;
use std::path::Path;

/// Allowed relative drift for gated metrics (15%).
pub const TOLERANCE: f64 = 0.15;

/// Directory (under the workspace root) where bench binaries write
/// fresh snapshots for comparison.
pub const CURRENT_DIR: &str = "results/current";

/// Drift direction of one gated metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Lower is better (cost counters): gate the upside only.
    Lower,
    /// Higher is better (speedups, hit rates): gate the downside only.
    Higher,
    /// Deterministic for a fixed seed: gate both directions.
    Pinned,
}

impl Dir {
    fn label(self) -> &'static str {
        match self {
            Dir::Lower => "lower-better",
            Dir::Higher => "higher-better",
            Dir::Pinned => "pinned",
        }
    }
}

/// One gated metric: a key path into the snapshot JSON (segments, not a
/// dotted string — obs counter keys contain dots) and its direction.
pub struct Gate {
    pub path: &'static [&'static str],
    pub dir: Dir,
}

/// One baseline file and its gates.
pub struct BenchSpec {
    /// File name under `results/`, e.g. `BENCH_lp.json`.
    pub file: &'static str,
    pub gates: &'static [Gate],
}

/// The full gate manifest. Adding a metric here is the whole act of
/// gating it; `--bless` validation keys off the same table.
pub const SPECS: [BenchSpec; 4] = [
    BenchSpec {
        file: "BENCH_lp.json",
        gates: &[
            Gate { path: &["stage1_sweep", "warm_pivots"], dir: Dir::Lower },
            Gate { path: &["stage3_replans", "warm_pivots"], dir: Dir::Lower },
            Gate { path: &["total", "warm_pivots"], dir: Dir::Lower },
            Gate { path: &["total", "pivot_speedup"], dir: Dir::Higher },
            Gate { path: &["stage1_sweep", "warm_hit_rate"], dir: Dir::Higher },
            Gate { path: &["stage3_replans", "warm_hit_rate"], dir: Dir::Higher },
        ],
    },
    BenchSpec {
        file: "BENCH_shard.json",
        gates: &[
            Gate { path: &["deterministic", "zone_solves"], dir: Dir::Pinned },
            Gate { path: &["deterministic", "zone_panics"], dir: Dir::Pinned },
            Gate { path: &["deterministic", "zone_retries"], dir: Dir::Pinned },
            Gate { path: &["deterministic", "degraded_zone_epochs"], dir: Dir::Pinned },
            Gate { path: &["deterministic", "recovery_epochs"], dir: Dir::Pinned },
            Gate { path: &["deterministic", "bisection_iters"], dir: Dir::Pinned },
            Gate { path: &["deterministic", "agreement_rel_gap"], dir: Dir::Pinned },
        ],
    },
    BenchSpec {
        file: "BENCH_scenarios.json",
        gates: &[
            Gate { path: &["deterministic", "diurnal_crest_over_trough"], dir: Dir::Pinned },
            Gate { path: &["deterministic", "drift_violations"], dir: Dir::Pinned },
            Gate { path: &["deterministic", "drift_replans"], dir: Dir::Pinned },
            Gate { path: &["deterministic", "chip_hotspots"], dir: Dir::Pinned },
            Gate { path: &["deterministic", "migrations"], dir: Dir::Pinned },
            Gate { path: &["deterministic", "migrate_swaps"], dir: Dir::Pinned },
            Gate { path: &["deterministic", "multiobj_power_drop_frac"], dir: Dir::Pinned },
            Gate { path: &["deterministic", "multiobj_reward_drop_frac"], dir: Dir::Pinned },
        ],
    },
    BenchSpec {
        // Previously ungated: the obs snapshot's seeded counters are
        // deterministic and catch silent instrumentation rot (a counter
        // that stops incrementing pins to zero). Timing overhead stays
        // ungated — it measures the CI machine, not the code.
        file: "BENCH_obs.json",
        gates: &[
            Gate { path: &["counters", "lp.solves"], dir: Dir::Pinned },
            Gate { path: &["counters", "runtime.epochs"], dir: Dir::Pinned },
            Gate { path: &["counters", "runtime.recoveries"], dir: Dir::Pinned },
            Gate { path: &["counters", "sched.admitted"], dir: Dir::Pinned },
            Gate { path: &["counters", "sched.deadline_misses"], dir: Dir::Pinned },
        ],
    },
];

/// One gated metric's comparison result.
pub struct Row {
    pub file: &'static str,
    /// Dotted metric path for display (`total.pivot_speedup`).
    pub metric: String,
    pub dir: Dir,
    pub base: f64,
    pub now: f64,
    /// `now / base`; `1.0` when both are zero, `f64::INFINITY` when only
    /// the base is.
    pub ratio: f64,
    pub ok: bool,
}

/// The full check result.
pub struct BenchReport {
    pub rows: Vec<Row>,
    /// Structural failures: missing files, parse errors, missing gated
    /// metrics. Any entry fails the check.
    pub errors: Vec<String>,
}

impl BenchReport {
    pub fn clean(&self) -> bool {
        self.errors.is_empty() && self.rows.iter().all(|r| r.ok)
    }

    pub fn drifted(&self) -> usize {
        self.rows.iter().filter(|r| !r.ok).count()
    }

    /// Human-readable report.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for e in &self.errors {
            out.push_str(&format!("bench: error: {e}\n"));
        }
        let mut last_file = "";
        for r in &self.rows {
            if r.file != last_file {
                out.push_str(&format!("bench: {}\n", r.file));
                last_file = r.file;
            }
            out.push_str(&format!(
                "  {} {:<32} base {:>12.6} now {:>12.6} ratio {:.4} [{}]\n",
                if r.ok { "ok   " } else { "DRIFT" },
                r.metric,
                r.base,
                r.now,
                r.ratio,
                r.dir.label(),
            ));
        }
        let drifted = self.drifted();
        if self.clean() {
            out.push_str(&format!("bench: clean — {} metrics within {:.0}%\n", self.rows.len(), TOLERANCE * 100.0));
        } else {
            out.push_str(&format!(
                "bench: FAIL — {drifted} metric(s) drifted >{:.0}%, {} structural error(s); re-run and `thermaware-analyze bench --bless` if intended\n",
                TOLERANCE * 100.0,
                self.errors.len(),
            ));
        }
        out
    }

    /// Machine-readable report (same hand-rolled JSON style as the
    /// findings report).
    pub fn json(&self) -> String {
        let mut out = String::from("{\n  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": {}, \"metric\": {}, \"dir\": {}, \"base\": {}, \"now\": {}, \"ratio\": {}, \"ok\": {}}}{}\n",
                quote(r.file),
                quote(&r.metric),
                quote(r.dir.label()),
                fmt_f64(r.base),
                fmt_f64(r.now),
                fmt_f64(r.ratio),
                r.ok,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n  \"errors\": [\n");
        for (i, e) in self.errors.iter().enumerate() {
            out.push_str(&format!(
                "    {}{}\n",
                quote(e),
                if i + 1 < self.errors.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"tolerance\": {TOLERANCE},\n  \"clean\": {}\n}}\n",
            self.clean()
        ));
        out
    }
}

/// Compare `results/current/BENCH_*.json` snapshots against the
/// committed `results/BENCH_*.json` baselines.
pub fn check(root: &Path) -> BenchReport {
    let mut rows = Vec::new();
    let mut errors = Vec::new();
    for spec in &SPECS {
        let base_path = root.join("results").join(spec.file);
        let now_path = root.join(CURRENT_DIR).join(spec.file);
        let base = match load(&base_path) {
            Ok(v) => v,
            Err(e) => {
                errors.push(format!("{}: baseline: {e}", spec.file));
                continue;
            }
        };
        let now = match load(&now_path) {
            Ok(v) => v,
            Err(e) => {
                errors.push(format!(
                    "{}: current snapshot: {e} (run the bench with --out {CURRENT_DIR}/{} first)",
                    spec.file, spec.file
                ));
                continue;
            }
        };
        for gate in spec.gates {
            let metric = gate.path.join(".");
            let (Some(b), Some(n)) = (
                base.get_path(gate.path).and_then(Value::as_f64),
                now.get_path(gate.path).and_then(Value::as_f64),
            ) else {
                let missing_in = if base.get_path(gate.path).and_then(Value::as_f64).is_none() {
                    "baseline"
                } else {
                    "current snapshot"
                };
                errors.push(format!("{}: gated metric `{metric}` missing from {missing_in}", spec.file));
                continue;
            };
            rows.push(judge(spec.file, metric, gate.dir, b, n));
        }
    }
    BenchReport { rows, errors }
}

/// Validate the current snapshots carry every gated metric, then copy
/// them over the committed baselines. Returns the blessed file names.
pub fn bless(root: &Path) -> Result<Vec<&'static str>, String> {
    // Validate everything before overwriting anything: a half-blessed
    // baseline set is worse than a failed bless.
    for spec in &SPECS {
        let now_path = root.join(CURRENT_DIR).join(spec.file);
        let now = load(&now_path)
            .map_err(|e| format!("{}: current snapshot: {e} — nothing blessed", spec.file))?;
        for gate in spec.gates {
            if now.get_path(gate.path).and_then(Value::as_f64).is_none() {
                return Err(format!(
                    "{}: gated metric `{}` missing from current snapshot — nothing blessed",
                    spec.file,
                    gate.path.join(".")
                ));
            }
        }
    }
    let mut blessed = Vec::new();
    for spec in &SPECS {
        let now_path = root.join(CURRENT_DIR).join(spec.file);
        let base_path = root.join("results").join(spec.file);
        fs::copy(&now_path, &base_path)
            .map_err(|e| format!("{}: copy failed: {e}", spec.file))?;
        blessed.push(spec.file);
    }
    Ok(blessed)
}

fn load(path: &Path) -> Result<Value, String> {
    let text = fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn judge(file: &'static str, metric: String, dir: Dir, base: f64, now: f64) -> Row {
    let ratio = if base.abs() < f64::MIN_POSITIVE {
        if now.abs() < f64::MIN_POSITIVE {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        now / base
    };
    // The epsilon keeps zero-valued pinned baselines (e.g. a panic
    // counter at 0) exact-match without tripping on float noise.
    let eps = 1e-9;
    let ok = match dir {
        Dir::Lower => now <= base + TOLERANCE * base.abs() + eps,
        Dir::Higher => now >= base - TOLERANCE * base.abs() - eps,
        Dir::Pinned => (now - base).abs() <= TOLERANCE * base.abs() + eps,
    };
    Row { file, metric, dir, base, now, ratio, ok }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no Infinity; an unreachable ratio serializes as null.
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directions_gate_the_right_side() {
        assert!(judge("f", "m".into(), Dir::Lower, 100.0, 114.0).ok);
        assert!(!judge("f", "m".into(), Dir::Lower, 100.0, 116.0).ok);
        assert!(judge("f", "m".into(), Dir::Lower, 100.0, 10.0).ok, "improvement passes");
        assert!(judge("f", "m".into(), Dir::Higher, 10.0, 8.6).ok);
        assert!(!judge("f", "m".into(), Dir::Higher, 10.0, 8.4).ok);
        assert!(judge("f", "m".into(), Dir::Higher, 10.0, 100.0).ok);
        assert!(!judge("f", "m".into(), Dir::Pinned, 100.0, 116.0).ok);
        assert!(!judge("f", "m".into(), Dir::Pinned, 100.0, 84.0).ok, "pinned gates both directions");
        assert!(judge("f", "m".into(), Dir::Pinned, 0.0, 0.0).ok);
        assert!(!judge("f", "m".into(), Dir::Pinned, 0.0, 1.0).ok, "zero baseline pins to zero");
    }

    #[test]
    fn check_against_committed_baselines_round_trips() {
        // Copy the committed baselines to a temp root as both baseline
        // and current: the check must be clean by construction.
        let repo = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let tmp = std::env::temp_dir().join(format!("thermaware-bench-selftest-{}", std::process::id()));
        let _ = fs::remove_dir_all(&tmp);
        fs::create_dir_all(tmp.join(CURRENT_DIR)).expect("mkdir");
        fs::create_dir_all(tmp.join("results")).expect("mkdir");
        for spec in &SPECS {
            let src = repo.join("results").join(spec.file);
            fs::copy(&src, tmp.join("results").join(spec.file)).expect("copy baseline");
            fs::copy(&src, tmp.join(CURRENT_DIR).join(spec.file)).expect("copy current");
        }
        let report = check(&tmp);
        assert!(report.clean(), "{}", report.text());
        let expected: usize = SPECS.iter().map(|s| s.gates.len()).sum();
        assert_eq!(report.rows.len(), expected, "every gate must produce a row");
        let _ = fs::remove_dir_all(&tmp);
    }

    #[test]
    fn missing_current_is_a_structural_error() {
        let tmp = std::env::temp_dir().join(format!("thermaware-bench-missing-{}", std::process::id()));
        let _ = fs::remove_dir_all(&tmp);
        fs::create_dir_all(tmp.join("results")).expect("mkdir");
        let repo = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        for spec in &SPECS {
            fs::copy(repo.join("results").join(spec.file), tmp.join("results").join(spec.file))
                .expect("copy baseline");
        }
        let report = check(&tmp);
        assert!(!report.clean());
        assert_eq!(report.errors.len(), SPECS.len());
        let _ = fs::remove_dir_all(&tmp);
    }

    #[test]
    fn bless_is_all_or_nothing() {
        let tmp = std::env::temp_dir().join(format!("thermaware-bench-bless-{}", std::process::id()));
        let _ = fs::remove_dir_all(&tmp);
        fs::create_dir_all(tmp.join(CURRENT_DIR)).expect("mkdir");
        fs::create_dir_all(tmp.join("results")).expect("mkdir");
        // No current snapshots at all: bless must refuse.
        assert!(bless(&tmp).is_err());
        let _ = fs::remove_dir_all(&tmp);
    }
}
