//! Cross-crate call graph over the parsed workspace.
//!
//! Nodes are the fn items [`crate::parser`] extracts; edges come from a
//! conservative, name-based resolution of each call expression:
//!
//! - **Path calls** (`f(…)`, `stage1::solve_stage1(…)`,
//!   `Solver::new(…)`, `thermaware_obs::span(…)`): the target crate is
//!   taken from an explicit `thermaware_*`/`crate`/`self`/`super`
//!   prefix, or from the file's `use` imports, else the caller's own
//!   crate; within that crate the last segment resolves **by name**
//!   (module-insensitive — which is what makes re-exports transparent:
//!   `use thermaware_a::helper` finds `a`'s `inner::helper` no matter
//!   how it is re-exported). An uppercase next-to-last segment (or
//!   `Self`) constrains the match to methods of that impl type.
//! - **Method calls** (`.m(…)`): receiver types are unknown, so the
//!   call links to *every* workspace method named `m` — a deliberate
//!   over-approximation (class-hierarchy style), tempered by a stoplist
//!   of ubiquitous std method names ([`METHOD_STOPLIST`]) that would
//!   otherwise wire the graph into a near-clique through `clone`/`len`/
//!   `get`. Workspace methods that shadow a stoplisted name are the one
//!   documented blind spot.
//!
//! What stays dark, by design: calls through function pointers and
//! closures passed as values, and macro-generated code. Both are rare on
//! the solver paths this graph polices; the per-file token rules
//! (`determinism`, `panic-free`) still cover their bodies directly.
//!
//! Each node also carries the facts the graph rules consume: panic
//! sites (`.unwrap()`, `panic!`-family macros), determinism taint
//! sources (wall-clock reads, ambient entropy, `HashMap`/`HashSet` —
//! obs-gated timing exempt, same contract as the `determinism` rule),
//! and whether the body opens an `obs` span.

use crate::parser::{self, Callee, ParsedFile};
use crate::source::SourceFile;
use crate::workspace::Workspace;
use std::collections::BTreeMap;

/// Method names never resolved for `.m(…)` calls: std-prelude noise
/// that would connect everything to everything. A workspace method
/// deliberately named like one of these is invisible to the graph —
/// the per-file rules still see its body.
const METHOD_STOPLIST: [&str; 72] = [
    "abs", "and_then", "as_bytes", "as_mut", "as_ref", "as_slice", "as_str", "borrow",
    "borrow_mut", "ceil", "chain", "clamp", "clear", "clone", "cmp", "collect", "contains",
    "contains_key", "count", "dedup", "default", "drop", "enumerate", "eq", "err", "extend",
    "filter", "finish", "first", "flush", "floor", "fmt", "get", "get_mut", "hash", "insert",
    "into_iter", "is_empty", "is_err", "is_none", "is_ok", "is_some", "iter", "iter_mut", "join",
    "last", "len", "lock", "map", "max", "min", "ne", "next", "ok", "or_else", "parse",
    "partial_cmp", "pop", "push", "read", "recv", "remove", "replace", "rev", "round", "send",
    "sort", "sort_by", "sqrt", "take", "to_string", "zip",
];

/// Node id: index into [`Graph::nodes`].
pub type NodeId = usize;

/// One fn item in the workspace graph.
pub struct Node {
    /// Index into `Workspace::files`.
    pub file: usize,
    pub crate_name: String,
    pub name: String,
    pub impl_type: Option<String>,
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// True for fns in test regions / test targets — excluded from
    /// resolution and from rule scope.
    pub in_test: bool,
    /// `(line, description)` of each panic site in the body.
    pub panic_sites: Vec<(usize, String)>,
    /// `(line, description)` of each non-obs-gated determinism taint
    /// source in the body.
    pub taint_sources: Vec<(usize, String)>,
    /// Whether the body opens an `obs` span (`…::span(…)` call).
    pub opens_span: bool,
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    pub to: NodeId,
    /// 1-based line of the call site in the caller's file.
    pub line: usize,
    /// Inside `catch_unwind(…)`/`spawn(…)` arguments: panics do not
    /// unwind through this edge (taint still flows).
    pub guarded: bool,
}

/// The workspace call graph.
pub struct Graph {
    pub nodes: Vec<Node>,
    /// Adjacency: `edges[caller]` sorted by callee id (deduped).
    pub edges: Vec<Vec<Edge>>,
}

/// A step of a witness path: `(node, call line into the next step)`.
pub struct Witness {
    /// Node ids from entry to target, inclusive.
    pub path: Vec<NodeId>,
    /// `call_lines[i]` is the line in `path[i]`'s file where it calls
    /// `path[i+1]` (length `path.len() - 1`).
    pub call_lines: Vec<usize>,
}

impl Graph {
    /// Parse every file and build the resolved graph.
    pub fn build(ws: &Workspace) -> Graph {
        let parsed: Vec<ParsedFile> = ws.files.iter().map(parser::parse).collect();

        // Nodes, in file order (deterministic: ws.files is sorted).
        let mut nodes = Vec::new();
        let mut node_fns: Vec<(usize, usize)> = Vec::new(); // (file idx, fn idx)
        for (fi, (file, pf)) in ws.files.iter().zip(&parsed).enumerate() {
            for (ki, f) in pf.fns.iter().enumerate() {
                let in_test = file.test_target || file.in_test_region(f.span.0);
                let (panic_sites, taint_sources, opens_span) = body_facts(file, f);
                nodes.push(Node {
                    file: fi,
                    crate_name: file.crate_name.clone(),
                    name: f.name.clone(),
                    impl_type: f.impl_type.clone(),
                    is_pub: f.is_pub,
                    line: f.line,
                    in_test,
                    panic_sites,
                    taint_sources,
                    opens_span,
                });
                node_fns.push((fi, ki));
            }
        }

        // Resolution indices over non-test nodes.
        let mut by_crate_name: BTreeMap<(String, String), Vec<NodeId>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<String, Vec<NodeId>> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            if n.in_test {
                continue;
            }
            by_crate_name
                .entry((n.crate_name.clone(), n.name.clone()))
                .or_default()
                .push(id);
            if n.impl_type.is_some() {
                methods_by_name.entry(n.name.clone()).or_default().push(id);
            }
        }

        // Import maps per file: bound name -> workspace crate short name.
        let crate_of_root = |root: &str, own: &str| -> Option<String> {
            if root == "crate" || root == "self" || root == "super" {
                return Some(own.to_string());
            }
            root.strip_prefix("thermaware_").map(str::to_string)
        };
        let imports: Vec<BTreeMap<String, String>> = ws
            .files
            .iter()
            .zip(&parsed)
            .map(|(file, pf)| {
                let mut m = BTreeMap::new();
                for u in &pf.uses {
                    if let Some(c) = crate_of_root(&u.root, &file.crate_name) {
                        m.insert(u.name.clone(), c);
                    }
                }
                m
            })
            .collect();

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
        for (id, &(fi, ki)) in node_fns.iter().enumerate() {
            let file = &ws.files[fi];
            let f = &parsed[fi].fns[ki];
            let own_crate = file.crate_name.as_str();
            let own_impl = f.impl_type.as_deref();
            let mut out: Vec<Edge> = Vec::new();
            for call in &f.calls {
                let targets: Vec<NodeId> = match &call.callee {
                    Callee::Macro(_) => continue, // panic sites handled in body_facts
                    Callee::Method(m) => {
                        if METHOD_STOPLIST.contains(&m.as_str()) {
                            continue;
                        }
                        methods_by_name.get(m).cloned().unwrap_or_default()
                    }
                    Callee::Path(segs) => resolve_path(
                        segs,
                        own_crate,
                        own_impl,
                        &imports[fi],
                        &by_crate_name,
                        &nodes,
                        &crate_of_root,
                    ),
                };
                for t in targets {
                    out.push(Edge { to: t, line: call.line, guarded: call.guarded });
                }
            }
            // Dedup by (callee, guarded), keeping the earliest call line;
            // an unguarded edge to the same callee must survive next to a
            // guarded one (they differ for panic reachability).
            out.sort_by_key(|e| (e.to, e.guarded, e.line));
            out.dedup_by_key(|e| (e.to, e.guarded));
            edges[id] = out;
        }

        Graph { nodes, edges }
    }

    /// Find nodes by `(crate, impl_type, name)`; `impl_type = None`
    /// matches free fns only. Test nodes are excluded.
    pub fn find(&self, crate_name: &str, impl_type: Option<&str>, name: &str) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                !n.in_test
                    && n.crate_name == crate_name
                    && n.name == name
                    && n.impl_type.as_deref() == impl_type
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// BFS from `entries`. Returns, for each reachable node, the parent
    /// `(node, call line)` it was first discovered through (entries map
    /// to themselves). `skip_guarded` drops `catch_unwind`/`spawn`
    /// edges (panic reachability); taint traversals keep them.
    pub fn reach(&self, entries: &[NodeId], skip_guarded: bool) -> BTreeMap<NodeId, (NodeId, usize)> {
        let mut parent: BTreeMap<NodeId, (NodeId, usize)> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();
        for &e in entries {
            if parent.insert(e, (e, 0)).is_none() {
                queue.push_back(e);
            }
        }
        while let Some(u) = queue.pop_front() {
            for e in &self.edges[u] {
                if skip_guarded && e.guarded {
                    continue;
                }
                if self.nodes[e.to].in_test {
                    continue;
                }
                if let std::collections::btree_map::Entry::Vacant(v) = parent.entry(e.to) {
                    v.insert((u, e.line));
                    queue.push_back(e.to);
                }
            }
        }
        parent
    }

    /// Reconstruct the witness path from an entry to `target` using the
    /// `reach` parent map.
    pub fn witness(&self, parents: &BTreeMap<NodeId, (NodeId, usize)>, target: NodeId) -> Witness {
        let mut path = vec![target];
        let mut lines = Vec::new();
        let mut cur = target;
        // Parent chains are acyclic by construction (BFS tree), but cap
        // the walk so a future bug cannot loop forever.
        for _ in 0..self.nodes.len() + 1 {
            match parents.get(&cur) {
                Some(&(p, line)) if p != cur => {
                    path.push(p);
                    lines.push(line);
                    cur = p;
                }
                _ => break,
            }
        }
        path.reverse();
        lines.reverse();
        Witness { path, call_lines: lines }
    }

    /// Human-readable rendering of a witness path:
    /// `crates/a/src/x.rs:10 A::f -> crates/b/src/y.rs:20 g`.
    pub fn witness_strings(&self, ws: &Workspace, w: &Witness) -> Vec<String> {
        w.path
            .iter()
            .map(|&id| {
                let n = &self.nodes[id];
                let file = &ws.files[n.file];
                format!("{}:{} {}", file.path, n.line, qualified(n))
            })
            .collect()
    }
}

/// `Type::name` or `name` label for a node.
pub fn qualified(n: &Node) -> String {
    match &n.impl_type {
        Some(t) => format!("{t}::{}", n.name),
        None => n.name.clone(),
    }
}

/// Resolve one path call to candidate node ids (possibly empty:
/// std / vendored / unresolvable).
#[allow(clippy::too_many_arguments)]
fn resolve_path(
    segs: &[String],
    own_crate: &str,
    own_impl: Option<&str>,
    imports: &BTreeMap<String, String>,
    by_crate_name: &BTreeMap<(String, String), Vec<NodeId>>,
    nodes: &[Node],
    crate_of_root: &dyn Fn(&str, &str) -> Option<String>,
) -> Vec<NodeId> {
    let Some(name) = segs.last() else {
        return Vec::new();
    };
    // Impl-type qualifier: `Type::f`, `Self::f` — an uppercase
    // next-to-last segment names the receiver type.
    let type_qual: Option<String> = if segs.len() >= 2 {
        let q = &segs[segs.len() - 2];
        if q == "Self" {
            own_impl.map(str::to_string)
        } else if q.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            Some(q.clone())
        } else {
            None
        }
    } else {
        None
    };
    // Crate hint: explicit path root, or the import that bound the
    // path's first visible segment.
    let first = &segs[0];
    let crate_hint: Option<String> = if segs.len() >= 2 {
        crate_of_root(first, own_crate).or_else(|| imports.get(first).cloned())
    } else {
        imports.get(first).cloned()
    };
    let target_crate = crate_hint.unwrap_or_else(|| own_crate.to_string());

    let ids = by_crate_name
        .get(&(target_crate, name.clone()))
        .cloned()
        .unwrap_or_default();
    match &type_qual {
        Some(t) => ids
            .into_iter()
            .filter(|&id| nodes[id].impl_type.as_deref() == Some(t.as_str()))
            .collect(),
        // An unqualified call never targets a method; `Solver::solve`
        // style calls always carry the type.
        None => ids
            .into_iter()
            .filter(|&id| nodes[id].impl_type.is_none())
            .collect(),
    }
}

/// `(line, what)` pairs attributing a fact to a source line.
type SiteList = Vec<(usize, String)>;

/// Extract panic sites, determinism taint sources, and span opening
/// from one fn body. Shares the obs-gating contract with the per-file
/// `determinism` rule: `Instant::now`/`SystemTime` reads with an
/// `obs::enabled()` gate within the preceding ten lines only measure.
fn body_facts(file: &SourceFile, f: &parser::FnItem) -> (SiteList, SiteList, bool) {
    let mut panics = Vec::new();
    let mut taints = Vec::new();
    let mut opens_span = false;

    for call in &f.calls {
        match &call.callee {
            Callee::Method(m) => match m.as_str() {
                "unwrap" => panics.push((call.line, ".unwrap()".to_string())),
                "from_entropy" => taints.push((call.line, "from_entropy — ambient entropy".to_string())),
                _ => {}
            },
            Callee::Macro(m) => {
                if matches!(m.as_str(), "panic" | "unreachable" | "todo" | "unimplemented") {
                    panics.push((call.line, format!("{m}!")));
                }
            }
            Callee::Path(segs) => {
                let last = segs.last().map(String::as_str).unwrap_or("");
                let prev = segs.len().checked_sub(2).map(|i| segs[i].as_str()).unwrap_or("");
                match (prev, last) {
                    (_, "span") => opens_span = true,
                    ("Instant", "now") if !obs_gated(file, call.line) => {
                        taints.push((call.line, "Instant::now — wall-clock read".to_string()));
                    }
                    ("SystemTime", "now") if !obs_gated(file, call.line) => {
                        taints.push((call.line, "SystemTime::now — wall-clock read".to_string()));
                    }
                    (_, "thread_rng") => {
                        taints.push((call.line, "thread_rng — ambient entropy".to_string()));
                    }
                    (_, "from_entropy") => {
                        taints.push((call.line, "from_entropy — ambient entropy".to_string()));
                    }
                    _ => {}
                }
            }
        }
    }

    // HashMap/HashSet anywhere in the body (type positions included —
    // iterating either is order-nondeterministic per process).
    if let Some((b0, b1)) = f.body {
        for tok in &file.tokens {
            if tok.start < b0 || tok.end > b1 {
                continue;
            }
            if tok.kind == crate::lexer::TokenKind::Ident {
                let t = tok.text(&file.text);
                if t == "HashMap" || t == "HashSet" {
                    taints.push((
                        file.line_of(tok.start),
                        format!("{t} — iteration order varies per process"),
                    ));
                }
            }
        }
    }
    taints.sort();
    taints.dedup();
    panics.sort();
    panics.dedup();
    (panics, taints, opens_span)
}

/// Same gate window as the per-file `determinism` rule.
fn obs_gated(file: &SourceFile, line: usize) -> bool {
    const GATE_WINDOW: usize = 10;
    let from = line.saturating_sub(GATE_WINDOW).max(1);
    (from..=line).any(|l| {
        let t = file.line_text(l);
        t.contains("obs::enabled()") || t.contains("enabled().then")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::Workspace;
    use std::path::Path;

    /// Build a tiny in-memory workspace from (path, crate, text) files.
    fn ws_of(files: &[(&str, &str, &str)]) -> Workspace {
        Workspace {
            root: Path::new(".").to_path_buf(),
            crates: Vec::new(),
            files: files
                .iter()
                .map(|(p, c, t)| SourceFile::new(p.to_string(), c.to_string(), t.to_string()))
                .collect(),
        }
    }

    #[test]
    fn cross_crate_resolution_through_import_and_reexport() {
        let ws = ws_of(&[
            (
                "crates/a/src/lib.rs",
                "a",
                "mod inner { pub fn helper() { std::thread::sleep(d); } }\npub use inner::helper;\n",
            ),
            (
                "crates/b/src/lib.rs",
                "b",
                "use thermaware_a::helper;\npub fn entry() { helper(); }\n",
            ),
        ]);
        let g = Graph::build(&ws);
        let entry = g.find("b", None, "entry");
        assert_eq!(entry.len(), 1);
        let helper = g.find("a", None, "helper");
        assert_eq!(helper.len(), 1);
        assert!(
            g.edges[entry[0]].iter().any(|e| e.to == helper[0]),
            "entry must link to a::helper through the import + re-export"
        );
    }

    #[test]
    fn method_and_self_calls_resolve() {
        let ws = ws_of(&[(
            "crates/a/src/lib.rs",
            "a",
            "pub struct S;\nimpl S {\n  pub fn solve(&self) { self.inner_step(); Self::assoc(); }\n  fn inner_step(&self) { x.unwrap(); }\n  fn assoc() {}\n}\n",
        )]);
        let g = Graph::build(&ws);
        let solve = g.find("a", Some("S"), "solve")[0];
        let step = g.find("a", Some("S"), "inner_step")[0];
        let assoc = g.find("a", Some("S"), "assoc")[0];
        let out: Vec<NodeId> = g.edges[solve].iter().map(|e| e.to).collect();
        assert!(out.contains(&step));
        assert!(out.contains(&assoc));
        assert_eq!(g.nodes[step].panic_sites.len(), 1);
    }

    #[test]
    fn witness_reconstructs_the_call_chain() {
        let ws = ws_of(&[(
            "crates/a/src/lib.rs",
            "a",
            "pub fn entry() { mid(); }\nfn mid() { deep(); }\nfn deep() { v.unwrap(); }\n",
        )]);
        let g = Graph::build(&ws);
        let entry = g.find("a", None, "entry")[0];
        let deep = g.find("a", None, "deep")[0];
        let parents = g.reach(&[entry], true);
        assert!(parents.contains_key(&deep));
        let w = g.witness(&parents, deep);
        assert_eq!(w.path.len(), 3);
        assert_eq!(w.path[0], entry);
        assert_eq!(w.path[2], deep);
        assert_eq!(w.call_lines, vec![1, 2]);
    }

    #[test]
    fn guarded_edges_stop_panic_reachability_only() {
        let ws = ws_of(&[(
            "crates/a/src/lib.rs",
            "a",
            "pub fn entry() { let _ = catch_unwind(|| risky()); }\nfn risky() { panic!(\"x\"); }\n",
        )]);
        let g = Graph::build(&ws);
        let entry = g.find("a", None, "entry")[0];
        let risky = g.find("a", None, "risky")[0];
        assert!(!g.reach(&[entry], true).contains_key(&risky), "guarded edge must not carry panics");
        assert!(g.reach(&[entry], false).contains_key(&risky), "taint still flows through guards");
    }

    #[test]
    fn stoplisted_methods_do_not_link() {
        let ws = ws_of(&[(
            "crates/a/src/lib.rs",
            "a",
            "pub struct S;\nimpl S { pub fn get(&self) { x.unwrap(); } }\npub fn entry(s: &S) { s.get(); }\n",
        )]);
        let g = Graph::build(&ws);
        let entry = g.find("a", None, "entry")[0];
        assert!(g.edges[entry].is_empty(), "`.get()` is stoplisted");
    }

    #[test]
    fn obs_gated_timing_is_not_taint() {
        let ws = ws_of(&[(
            "crates/a/src/lib.rs",
            "a",
            "pub fn bare() { let t = Instant::now(); }\npub fn timed() {\n  let t0 = thermaware_obs::enabled().then(Instant::now);\n  work();\n}\n",
        )]);
        let g = Graph::build(&ws);
        let timed = g.find("a", None, "timed")[0];
        let bare = g.find("a", None, "bare")[0];
        assert!(g.nodes[timed].taint_sources.is_empty(), "{:?}", g.nodes[timed].taint_sources);
        assert_eq!(g.nodes[bare].taint_sources.len(), 1);
    }
}
