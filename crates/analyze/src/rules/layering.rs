//! `layering`: enforce the crate DAG and facade-only re-exports.
//!
//! The workspace is layered so that subsystem crates stay independently
//! testable and the solve path's dependency cone stays small (DESIGN.md
//! §3): `obs` and the physics crates (`linalg`, `power`, `workload`)
//! sit at the bottom and depend on no workspace crate; `lp` and
//! `thermal` may use the substrate but never `core`; only the root
//! `thermaware` facade re-exports across layers. Three checks:
//!
//! - **dag** — a `[dependencies]` edge not in the allowed-DAG table
//!   below (e.g. `thermal` growing a dep on `core` would invert the
//!   solver stack).
//! - **unused-dep** — a declared `thermaware-*` edge whose crate is
//!   never referenced in source. Dead edges silently widen the DAG:
//!   they compile today, so nothing stops code from starting to use
//!   them tomorrow, and they lengthen every cold build.
//! - **facade** — `pub use thermaware_*` outside the root facade.
//!   Cross-layer re-exports give one crate's types a second public
//!   address, and downstream code that imports through it couples to
//!   the middle crate's dependency set.
//!
//! Crates not in the table (fixtures, future additions) get the
//! unused-dep and facade checks but no DAG constraint — adding the new
//! crate to [`ALLOWED`] is part of introducing it.

use super::Finding;
use crate::workspace::Workspace;

/// The allowed dependency DAG: `(crate, allowed deps)`. `"*"` means any
/// workspace crate (the facade and the bench harness integrate
/// everything by design).
const ALLOWED: [(&str, &[&str]); 14] = [
    ("obs", &[]),
    ("linalg", &[]),
    ("power", &[]),
    ("workload", &[]),
    ("analyze", &[]),
    ("lp", &["linalg", "obs"]),
    ("thermal", &["linalg", "lp"]),
    ("datacenter", &["obs", "lp", "power", "thermal", "workload"]),
    ("core", &["linalg", "obs", "lp", "power", "thermal", "workload", "datacenter"]),
    ("scheduler", &["workload", "obs", "datacenter", "core"]),
    ("runtime", &["core", "obs", "datacenter", "scheduler", "thermal", "workload"]),
    ("service", &["core", "obs", "datacenter", "runtime", "scheduler", "workload"]),
    ("shard", &["core", "obs", "datacenter", "runtime"]),
    ("bench", &["*"]),
];

pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for info in &ws.crates {
        let manifest = if info.dir == "." {
            "Cargo.toml".to_string()
        } else {
            format!("{}/Cargo.toml", info.dir)
        };
        let allowed = ALLOWED.iter().find(|(c, _)| *c == info.name).map(|(_, d)| *d);
        for dep in &info.deps {
            // DAG membership. The facade (".") integrates everything.
            if info.name != "." {
                if let Some(allowed) = allowed {
                    if !allowed.contains(&"*") && !allowed.contains(&dep.name.as_str()) {
                        out.push(Finding {
                            rule: "layering",
                            path: manifest.clone(),
                            line: dep.line,
                            message: format!(
                                "dag: `{}` must not depend on `{}` (allowed: {})",
                                info.name,
                                dep.name,
                                if allowed.is_empty() { "none".to_string() } else { allowed.join(", ") },
                            ),
                            snippet: format!("thermaware-{}", dep.name),
                            witness: Vec::new(),
                        });
                    }
                }
            }
            // Unused declared edge.
            let ident = format!("thermaware_{}", dep.name);
            let used = ws
                .crate_files(&info.name)
                .any(|f| f.text.contains(&ident));
            if !used {
                out.push(Finding {
                    rule: "layering",
                    path: manifest.clone(),
                    line: dep.line,
                    message: format!(
                        "unused-dep: `{}` declares `thermaware-{}` but never references it — dead DAG edge",
                        info.name, dep.name
                    ),
                    snippet: format!("thermaware-{}", dep.name),
                    witness: Vec::new(),
                });
            }
        }
    }

    // Facade-only re-exports: `pub use thermaware_*` outside the root.
    for file in &ws.files {
        if file.crate_name == "." {
            continue;
        }
        let code: Vec<_> = file.code_tokens().collect();
        for w in 0..code.len().saturating_sub(2) {
            let a = code[w].text(&file.text);
            let b = code[w + 1].text(&file.text);
            let c = code[w + 2].text(&file.text);
            if a == "pub" && b == "use" && c.starts_with("thermaware_") {
                let line = file.line_of(code[w].start);
                out.push(Finding {
                    rule: "layering",
                    path: file.path.clone(),
                    line,
                    message: format!(
                        "facade: re-export of `{c}` outside the root facade — import at the use site instead"
                    ),
                    snippet: file.line_text(line).to_string(),
                    witness: Vec::new(),
                });
            }
        }
    }
    out
}
