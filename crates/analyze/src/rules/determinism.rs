//! `determinism`: no ambient nondeterminism in crates on the replay
//! path.
//!
//! PR 2's crash recovery re-executes epochs from a snapshot and requires
//! the replay to be **bit-identical** to the original run (the journal
//! commits carry a CRC of the post-step state). Anything that reads
//! ambient entropy or wall-clock time inside the replayed computation —
//! `Instant::now`, `SystemTime`, `thread_rng`, `from_entropy` — breaks
//! that, as does iterating a `HashMap`/`HashSet` (std's `RandomState`
//! seeds per-process, so iteration order differs between the original
//! run and the resumed one). The fix is a seeded RNG threaded through
//! the call graph, `BTreeMap`/`BTreeSet`, or — for timing only — an
//! obs-gated block.
//!
//! **Obs-gated timing blocks are exempt**: `Instant::now` behind a
//! `thermaware_obs::enabled()` check (within the preceding ten lines)
//! only measures, never feeds the computation, and is how the
//! observability layer keeps its no-recorder overhead at one atomic
//! load (DESIGN.md §8).
//!
//! Scope: the replay-path crates (`core`, `lp`, `linalg`, `thermal`,
//! `power`, `scheduler`, `workload`) plus `runtime`'s persistence module
//! and the deterministic half of `service` (engine, store, breaker,
//! proto — the daemon shell and loadgen are live code and may read
//! clocks freely) — non-test code only; tests may time things freely.

use super::Finding;
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// Crates whose entire non-test source is on the replay path.
const REPLAY_CRATES: [&str; 7] = ["core", "lp", "linalg", "thermal", "power", "scheduler", "workload"];

/// `service` files on the replay path; the daemon shell, loadgen, and
/// CLI glue live in wall-clock land by design.
const SERVICE_REPLAY_FILES: [&str; 4] =
    ["/engine.rs", "/store.rs", "/breaker.rs", "/proto.rs"];

/// `shard` files on the replay path: profiles, the bisection master,
/// fleet building, the solver's plan/fallback logic, and state
/// snapshots are pure functions of their inputs. `pool.rs` (deadlines,
/// backoff sleeps, hedging) and `chaos.rs` (scripted stalls) are live
/// wall-clock code by design.
const SHARD_REPLAY_FILES: [&str; 5] =
    ["/fleet.rs", "/profile.rs", "/master.rs", "/solver.rs", "/state.rs"];

/// How many lines above a timing call an `obs::enabled()` gate may sit.
const GATE_WINDOW: usize = 10;

pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        let in_scope = REPLAY_CRATES.contains(&file.crate_name.as_str())
            || (file.crate_name == "runtime"
                && (file.path.ends_with("/persist.rs") || file.path.ends_with("/degrade.rs")))
            || (file.crate_name == "service"
                && SERVICE_REPLAY_FILES.iter().any(|f| file.path.ends_with(f)))
            || (file.crate_name == "shard"
                && SHARD_REPLAY_FILES.iter().any(|f| file.path.ends_with(f)));
        if !in_scope || file.test_target {
            continue;
        }
        check_file(file, &mut out);
    }
    out
}

fn check_file(file: &SourceFile, out: &mut Vec<Finding>) {
    let code: Vec<_> = file.code_tokens().collect();
    for (i, tok) in code.iter().enumerate() {
        let text = tok.text(&file.text);
        let (what, gateable) = match text {
            // `Instant` alone may appear in types (`Option<Instant>`);
            // only the actual clock read is nondeterministic.
            "Instant" => {
                let a = code.get(i + 1).map(|t| t.text(&file.text));
                let b = code.get(i + 2).map(|t| t.text(&file.text));
                if a == Some("::") && b == Some("now") {
                    ("Instant::now — wall-clock read on the replay path", true)
                } else {
                    continue;
                }
            }
            "SystemTime" => ("SystemTime — wall-clock read on the replay path", true),
            "thread_rng" => ("thread_rng — ambient entropy; thread a seeded RNG instead", false),
            "from_entropy" => ("from_entropy — ambient entropy; seed from the run's seed instead", false),
            "HashMap" | "HashSet" => (
                "HashMap/HashSet — RandomState iteration order varies per process; use BTreeMap/BTreeSet",
                false,
            ),
            _ => continue,
        };
        if file.in_test_region(tok.start) {
            continue;
        }
        let line = file.line_of(tok.start);
        if gateable && obs_gated(file, line) {
            continue;
        }
        out.push(Finding {
            rule: "determinism",
            path: file.path.clone(),
            line,
            message: what.to_string(),
            snippet: file.line_text(line).to_string(),
            witness: Vec::new(),
        });
    }
}

/// A timing call is obs-gated when `obs::enabled()` appears on the same
/// line or within the preceding [`GATE_WINDOW`] lines — covering both
/// the `enabled().then(Instant::now)` idiom and the early-return form
/// `if !thermaware_obs::enabled() { return …; }`.
fn obs_gated(file: &SourceFile, line: usize) -> bool {
    let from = line.saturating_sub(GATE_WINDOW).max(1);
    (from..=line).any(|l| {
        let t = file.line_text(l);
        t.contains("obs::enabled()") || t.contains("enabled().then")
    })
}
