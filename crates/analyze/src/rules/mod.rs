//! The rule set. Each rule is a function from the loaded [`Workspace`]
//! to a list of [`Finding`]s; the engine (in [`crate::engine`]) applies
//! inline-allow escapes and the tracked allowlist afterwards, so rules
//! themselves only report raw violations.
//!
//! | rule                | invariant it fences                                        |
//! |---------------------|------------------------------------------------------------|
//! | `determinism`       | bit-identical checkpoint replay (DESIGN.md §7)             |
//! | `float-eq`          | numerical conventions — no exact compares on computed f64  |
//! | `panic-free`        | panic-free solver paths (DESIGN.md §6)                     |
//! | `layering`          | the crate DAG: obs at the bottom, facade-only re-exports   |
//! | `api-snapshot`      | reviewable `pub` surface drift under `results/api/`        |
//! | `transitive-panic`  | no panic reachable from solve/replan/resume entries (§14)  |
//! | `determinism-taint` | no clock/entropy reachable from replay entries (§14)       |
//! | `obs-coverage`      | every public solve entry opens an obs span (§14)           |
//!
//! The last three are call-graph rules ([`graph`]): instead of judging a
//! line by its file, they judge it by what the workspace's entry points
//! can reach, and each finding carries a witness call path.

pub mod api;
pub mod determinism;
pub mod float_eq;
pub mod graph;
pub mod layering;
pub mod panic_free;

use crate::workspace::Workspace;

/// Rule names, in report order.
pub const RULES: [&str; 8] = [
    "determinism",
    "float-eq",
    "panic-free",
    "layering",
    "api-snapshot",
    "transitive-panic",
    "determinism-taint",
    "obs-coverage",
];

/// One violation at a specific line of a workspace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line (0 for file-level findings such as a missing API
    /// snapshot).
    pub line: usize,
    /// Human-oriented explanation, including the fix direction.
    pub message: String,
    /// Trimmed text of the offending line (used by the allowlist to
    /// detect stale entries when the code under an entry changes).
    pub snippet: String,
    /// For call-graph findings: the shortest witness call path from an
    /// entry point to the offending site, one `path:line fn` step per
    /// element. Empty for per-file findings.
    pub witness: Vec<String>,
}

/// Run every rule over the workspace. Findings are sorted by
/// (path, line, rule) for stable reports.
pub fn run_all(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(determinism::check(ws));
    findings.extend(float_eq::check(ws));
    findings.extend(panic_free::check(ws));
    findings.extend(layering::check(ws));
    findings.extend(api::check(ws));
    findings.extend(graph::check(ws));
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
    });
    findings
}
