//! The call-graph rules: `transitive-panic`, `determinism-taint`,
//! `obs-coverage` (DESIGN.md §14).
//!
//! The per-file token rules fence what a line *is*; these fence what an
//! entry point can *reach*. All three share one [`Graph`] built per
//! analysis and one entry-point manifest style: `(crate, impl type,
//! fn name)` rows resolved against the graph. A row that stops
//! resolving is caught by the self-check test (`entry_manifests_resolve`
//! in `tests/selfcheck.rs`), not by a runtime finding — the golden
//! fixture workspaces deliberately contain only fragments of the real
//! tree and must not drown in missing-entry noise.
//!
//! - **`transitive-panic`** — nothing reachable from a solve/replan/
//!   resume entry may hit `.unwrap()` or a `panic!`-family macro. BFS
//!   over unguarded edges (`catch_unwind`/`spawn` arguments are panic
//!   boundaries by design — the shard pool *harvests* zone panics);
//!   each finding lands on the panic site and carries the shortest
//!   witness call path from an entry.
//! - **`determinism-taint`** — nothing reachable from a replay-path
//!   entry may read wall-clock/entropy or touch `HashMap`/`HashSet`.
//!   Guards do **not** stop taint (a caught panic is contained; a
//!   caught clock read still happened), so this BFS traverses guarded
//!   edges. Obs-gated timing is exempt, same contract as the token
//!   `determinism` rule.
//! - **`obs-coverage`** — every public solve/replan/resume entry must
//!   open an `obs` span in its own crate, directly or via some function
//!   it reaches (delegating wrappers like `Solver::solve` →
//!   `solve_three_stage` count). A span opened only in *another* crate
//!   does not: that instrumentation names someone else's subsystem, and
//!   accepting it would let any entry ride on the one span left in the
//!   workspace.
//!
//! Findings land on the offending *site* (panic/taint source) or the
//! *entry* (missing span), so the existing suppression machinery —
//! inline `// lint: allow(rule): reason` and the tracked allowlist —
//! applies unchanged.

use super::Finding;
use crate::callgraph::{qualified, Graph, NodeId};
use crate::workspace::Workspace;

/// One entry-point manifest row: `(crate, impl type, fn name)`.
pub type Entry = (&'static str, Option<&'static str>, &'static str);

/// The panic-free surface: everything a caller can invoke to get a
/// plan, plus the crash-recovery and supervision paths that must
/// survive chaos drills without unwinding.
pub const PANIC_ENTRIES: [Entry; 16] = [
    ("core", Some("Solver"), "solve"),
    ("core", Some("Solver"), "solve_at"),
    ("core", None, "solve_three_stage"),
    ("core", None, "solve_three_stage_best_of"),
    ("core", None, "solve_stage1"),
    ("core", None, "solve_stage3"),
    ("core", None, "solve_stage3_warm"),
    ("core", None, "solve_baseline"),
    ("shard", Some("FleetSolver"), "replan"),
    ("shard", None, "solve_zone"),
    ("shard", None, "solve_monolithic"),
    ("service", Some("ServiceEngine"), "step"),
    ("service", None, "resume_service"),
    ("runtime", None, "resume"),
    ("runtime", Some("Supervisor"), "run"),
    ("runtime", Some("LiveRun"), "step"),
];

/// The replay surface: entries whose re-execution must be bit-identical
/// to the original run (journal CRCs check exactly this). The solver
/// crates themselves are fully covered by the token `determinism` rule;
/// these are the orchestration entries whose *helpers* could hide a
/// clock read in a file the token rule does not scope.
pub const TAINT_ENTRIES: [Entry; 6] = [
    ("runtime", None, "resume"),
    ("service", Some("ServiceEngine"), "step"),
    ("service", None, "resume_service"),
    ("shard", Some("FleetSolver"), "replan"),
    ("shard", None, "solve_zone"),
    ("shard", None, "solve_monolithic"),
];

/// Public solve/replan/resume entries that must stay instrumented
/// (PR 3's span tree is what EXPERIMENTS.md traces are cut from; an
/// uninstrumented entry rots silently until someone needs the trace).
pub const OBS_ENTRIES: [Entry; 10] = [
    ("core", Some("Solver"), "solve"),
    ("core", Some("Solver"), "solve_at"),
    ("core", None, "solve_three_stage"),
    ("core", None, "solve_baseline"),
    ("shard", Some("FleetSolver"), "replan"),
    ("service", Some("ServiceEngine"), "step"),
    ("service", None, "resume_service"),
    ("runtime", None, "resume"),
    ("runtime", Some("Supervisor"), "run"),
    ("runtime", Some("LiveRun"), "step"),
];

/// Run all three graph rules over one shared graph.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let g = Graph::build(ws);
    let mut out = Vec::new();
    transitive_panic(ws, &g, &mut out);
    determinism_taint(ws, &g, &mut out);
    obs_coverage(ws, &g, &mut out);
    out
}

/// Resolve manifest rows against the graph; rows absent from this
/// workspace (fixture fragments) resolve to nothing.
fn resolve(g: &Graph, entries: &[Entry]) -> Vec<NodeId> {
    let mut ids = Vec::new();
    for (krate, impl_type, name) in entries {
        ids.extend(g.find(krate, *impl_type, name));
    }
    ids
}

fn transitive_panic(ws: &Workspace, g: &Graph, out: &mut Vec<Finding>) {
    let entries = resolve(g, &PANIC_ENTRIES);
    let parents = g.reach(&entries, /*skip_guarded=*/ true);
    for &id in parents.keys() {
        let node = &g.nodes[id];
        if node.panic_sites.is_empty() {
            continue;
        }
        let w = g.witness(&parents, id);
        let entry = &g.nodes[w.path[0]];
        let file = &ws.files[node.file];
        for (line, what) in &node.panic_sites {
            out.push(Finding {
                rule: "transitive-panic",
                path: file.path.clone(),
                line: *line,
                message: format!(
                    "{what} in `{}` is reachable from entry `{}::{}` ({} call(s) deep) — return an error instead",
                    qualified(node),
                    entry.crate_name,
                    qualified(entry),
                    w.path.len() - 1,
                ),
                snippet: file.line_text(*line).to_string(),
                witness: witness_with_site(ws, g, &w, &file.path, *line, what),
            });
        }
    }
}

fn determinism_taint(ws: &Workspace, g: &Graph, out: &mut Vec<Finding>) {
    let entries = resolve(g, &TAINT_ENTRIES);
    let parents = g.reach(&entries, /*skip_guarded=*/ false);
    for &id in parents.keys() {
        let node = &g.nodes[id];
        if node.taint_sources.is_empty() {
            continue;
        }
        let w = g.witness(&parents, id);
        let entry = &g.nodes[w.path[0]];
        let file = &ws.files[node.file];
        for (line, what) in &node.taint_sources {
            out.push(Finding {
                rule: "determinism-taint",
                path: file.path.clone(),
                line: *line,
                message: format!(
                    "{what}; `{}` is on the replay path of entry `{}::{}` ({} call(s) deep)",
                    qualified(node),
                    entry.crate_name,
                    qualified(entry),
                    w.path.len() - 1,
                ),
                snippet: file.line_text(*line).to_string(),
                witness: witness_with_site(ws, g, &w, &file.path, *line, what),
            });
        }
    }
}

fn obs_coverage(ws: &Workspace, g: &Graph, out: &mut Vec<Finding>) {
    for id in resolve(g, &OBS_ENTRIES) {
        let entry = &g.nodes[id];
        let parents = g.reach(&[id], /*skip_guarded=*/ false);
        let covered = parents
            .keys()
            .any(|&r| g.nodes[r].opens_span && g.nodes[r].crate_name == entry.crate_name);
        if covered {
            continue;
        }
        let file = &ws.files[entry.file];
        out.push(Finding {
            rule: "obs-coverage",
            path: file.path.clone(),
            line: entry.line,
            message: format!(
                "public entry `{}::{}` never opens an obs span (directly or via any reachable fn in `{}`) — add `let _span = thermaware_obs::span(\"…\");`",
                entry.crate_name,
                qualified(entry),
                entry.crate_name,
            ),
            snippet: file.line_text(entry.line).to_string(),
            witness: Vec::new(),
        });
    }
}

/// Witness path strings: the call chain entry → … → containing fn, then
/// the site itself as the final hop.
fn witness_with_site(
    ws: &Workspace,
    g: &Graph,
    w: &crate::callgraph::Witness,
    site_path: &str,
    site_line: usize,
    what: &str,
) -> Vec<String> {
    let mut steps = g.witness_strings(ws, w);
    steps.push(format!("{site_path}:{site_line} {what}"));
    steps
}
