//! `api-snapshot`: the `pub` surface of every crate is committed under
//! `results/api/<crate>.txt` and drift fails CI until the snapshot is
//! refreshed with `thermaware-analyze --bless`.
//!
//! The point is not to freeze the API — it is to make API change a
//! *reviewed* act: a PR that adds, removes or re-types a public item
//! carries the one-line snapshot diff, so the facade, the examples and
//! downstream users never discover surface changes by build breakage.
//!
//! Extraction is token-level, not a full parse: every `pub` item outside
//! test regions contributes one normalized signature line —
//!
//! - `pub fn` / `pub const` / `pub static` / `pub type` / `pub trait` /
//!   `pub mod` / `pub use` / `pub struct`: tokens up to the body brace,
//!   terminating `;`, or initializer `=`;
//! - `pub enum`: the **full body** (variants are all implicitly public,
//!   so variant changes are API changes);
//! - `pub` struct fields: the `name: Type` pair.
//!
//! `pub(crate)` / `pub(super)` / `pub(in …)` are not public API and are
//! skipped. Trait *bodies* (default methods) and enum discriminant
//! values are deliberately out of scope — token-level extraction cannot
//! attribute them reliably, and the item headers already catch the
//! drift that matters for review.

use super::Finding;
use crate::lexer::Token;
use crate::source::SourceFile;
use crate::workspace::Workspace;
use std::collections::BTreeMap;
use std::fs;

/// Directory (workspace-relative) holding the committed snapshots.
pub const SNAPSHOT_DIR: &str = "results/api";

/// Snapshot file stem for a crate (the facade's package is
/// `thermaware`).
pub fn snapshot_name(crate_name: &str) -> String {
    if crate_name == "." {
        "thermaware.txt".to_string()
    } else {
        format!("{crate_name}.txt")
    }
}

/// Extract the current `pub` surface of every crate: crate → sorted,
/// deduplicated signature lines.
pub fn extract(ws: &Workspace) -> BTreeMap<String, Vec<String>> {
    let mut surfaces: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for info in &ws.crates {
        surfaces.entry(info.name.clone()).or_default();
    }
    for file in &ws.files {
        if file.test_target {
            continue;
        }
        let entry = surfaces.entry(file.crate_name.clone()).or_default();
        extract_file(file, entry);
    }
    for sigs in surfaces.values_mut() {
        sigs.sort();
        sigs.dedup();
    }
    surfaces
}

pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for (crate_name, current) in extract(ws) {
        let snap_rel = format!("{SNAPSHOT_DIR}/{}", snapshot_name(&crate_name));
        let snap_path = ws.root.join(&snap_rel);
        let committed: Vec<String> = match fs::read_to_string(&snap_path) {
            Ok(text) => {
                let mut lines: Vec<String> = text
                    .lines()
                    .filter(|l| !l.is_empty() && !l.starts_with('#'))
                    .map(str::to_string)
                    .collect();
                // `diff` binary-searches; a hand-edited snapshot may be
                // out of order.
                lines.sort();
                lines
            }
            Err(_) => {
                out.push(Finding {
                    rule: "api-snapshot",
                    path: snap_rel,
                    line: 0,
                    message: format!(
                        "missing API snapshot for `{crate_name}` ({} pub items) — run `thermaware-analyze --bless`",
                        current.len()
                    ),
                    snippet: String::new(),
                    witness: Vec::new(),
                });
                continue;
            }
        };
        for added in diff(&current, &committed) {
            out.push(Finding {
                rule: "api-snapshot",
                path: snap_rel.clone(),
                line: 0,
                message: format!("undocumented API addition in `{crate_name}` — run `thermaware-analyze --bless` to record it"),
                snippet: added.clone(),
                witness: Vec::new(),
            });
        }
        for removed in diff(&committed, &current) {
            out.push(Finding {
                rule: "api-snapshot",
                path: snap_rel.clone(),
                line: 0,
                message: format!("undocumented API removal in `{crate_name}` — run `thermaware-analyze --bless` to record it"),
                snippet: removed.clone(),
                witness: Vec::new(),
            });
        }
    }
    out
}

/// Lines in `a` that are not in `b` (both sorted).
fn diff<'a>(a: &'a [String], b: &[String]) -> Vec<&'a String> {
    a.iter().filter(|l| b.binary_search(l).is_err()).collect()
}

fn extract_file(file: &SourceFile, out: &mut Vec<String>) {
    let code: Vec<&Token> = file.code_tokens().collect();
    // Byte ranges already swallowed by a full-body capture (enum
    // bodies); `pub` tokens inside them would double-report.
    let mut consumed_until = 0usize;
    for (i, tok) in code.iter().enumerate() {
        if tok.start < consumed_until {
            continue;
        }
        if tok.text(&file.text) != "pub" || file.in_test_region(tok.start) {
            continue;
        }
        // Restricted visibility (`pub(crate)` etc.) is not public API.
        if code.get(i + 1).map(|t| t.text(&file.text)) == Some("(") {
            continue;
        }
        let kind = code.get(i + 1).map(|t| t.text(&file.text)).unwrap_or("");
        let full_body = kind == "enum";
        let (sig, end) = capture(&code, i, file, full_body);
        if !sig.is_empty() {
            out.push(sig);
        }
        if full_body {
            consumed_until = end;
        }
    }
}

/// Capture a signature starting at the `pub` token `code[i]`. Returns
/// the normalized signature and the byte offset where capture stopped.
///
/// Stops at the first `{` (exclusive), `;`, `=` or `,` at bracket depth
/// zero — unless `full_body`, which brace-matches through the item body.
fn capture(code: &[&Token], i: usize, file: &SourceFile, full_body: bool) -> (String, usize) {
    let mut parts: Vec<&str> = Vec::new();
    let mut depth = 0i32;
    let mut j = i;
    let mut end = code[i].end;
    while j < code.len() {
        let t = code[j];
        let text = t.text(&file.text);
        match text {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => {
                // A closer at depth 0 belongs to an *enclosing* group —
                // e.g. the `)` of a tuple struct around a `pub` field —
                // so the signature ends here.
                if depth <= 0 {
                    break;
                }
                depth -= 1;
            }
            "{" if depth <= 0 => {
                if !full_body {
                    break;
                }
                // Brace-match the body, including it in the signature.
                let mut braces = 0i32;
                while j < code.len() {
                    let bt = code[j].text(&file.text);
                    if bt == "{" {
                        braces += 1;
                    } else if bt == "}" {
                        braces -= 1;
                    }
                    parts.push(bt);
                    end = code[j].end;
                    if braces == 0 && bt == "}" {
                        return (normalize(&parts), end);
                    }
                    j += 1;
                }
                return (normalize(&parts), end);
            }
            ";" | "=" | "," if depth <= 0 => break,
            _ => {}
        }
        parts.push(text);
        end = t.end;
        // Cap runaway captures (malformed input): the signature is for
        // humans diffing, not a parser.
        if parts.len() > 400 {
            break;
        }
        j += 1;
    }
    (normalize(&parts), end)
}

fn normalize(parts: &[&str]) -> String {
    let mut s = String::new();
    for (i, p) in parts.iter().enumerate() {
        // Glue path/field/generic punctuation without spaces so the
        // snapshot lines stay readable and whitespace-insensitive.
        let no_space_before = matches!(*p, "::" | "." | "," | ")" | "]" | ">" | ";" | "(");
        let no_space_after_prev =
            i > 0 && matches!(parts[i - 1], "::" | "." | "(" | "[" | "<" | "&");
        if i > 0 && !no_space_before && !no_space_after_prev {
            s.push(' ');
        }
        s.push_str(p);
    }
    s
}
