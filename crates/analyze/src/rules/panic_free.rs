//! `panic-free`: no reachable panic in solver-crate production code.
//!
//! PR 1 made the runtime supervisor panic-free (`clippy::unwrap_used`
//! denied in `runtime` and `obs`); this rule extends the guarantee
//! workspace-wide to every crate a solve can pass through. A panic
//! inside `solve_three_stage` unwinds through the supervisor's staged
//! degradation ladder and turns a recoverable numerical pathology into a
//! dead run — the exact failure mode PR 1 removed.
//!
//! Flagged in non-test code of the solver crates: `.unwrap()`,
//! `panic!`, `unreachable!`, `todo!`, `unimplemented!`. Not flagged:
//! `.expect("…")` — the sanctioned form for true invariants, because the
//! message forces the author to *state* the invariant and shows up in
//! any crash report; and `assert!`-family checks, which are invariant
//! documentation, not control flow. Slice indexing is also left alone:
//! the workspace deliberately keeps paper-subscript index loops
//! (`clippy::needless_range_loop` is allowed workspace-wide for the same
//! reason) and bounds are established by construction in the kernels.
//!
//! Test regions, `tests/`, `benches/` and `examples/` are exempt — a
//! panicking test is just a failing test.

use super::Finding;
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// Crates reachable from a solve — the panic-free surface.
const SOLVER_CRATES: [&str; 6] = ["linalg", "lp", "core", "thermal", "power", "datacenter"];

pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !SOLVER_CRATES.contains(&file.crate_name.as_str()) || file.test_target {
            continue;
        }
        check_file(file, &mut out);
    }
    out
}

fn check_file(file: &SourceFile, out: &mut Vec<Finding>) {
    let code: Vec<_> = file.code_tokens().collect();
    for (i, tok) in code.iter().enumerate() {
        let text = tok.text(&file.text);
        let message = match text {
            "unwrap" => {
                // Only `.unwrap()` the method call; `unwrap_or`,
                // `unwrap_used`, a fn named unwrap… don't match the
                // exact ident + call shape.
                let prev = i.checked_sub(1).map(|j| code[j].text(&file.text));
                let next = code.get(i + 1).map(|t| t.text(&file.text));
                let next2 = code.get(i + 2).map(|t| t.text(&file.text));
                if prev == Some(".") && next == Some("(") && next2 == Some(")") {
                    ".unwrap() in solver code — state the invariant with expect(\"…\") or propagate the error"
                } else {
                    continue;
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                if code.get(i + 1).map(|t| t.text(&file.text)) == Some("!") {
                    "panic-family macro in solver code — return a typed error instead"
                } else {
                    continue;
                }
            }
            _ => continue,
        };
        if file.in_test_region(tok.start) {
            continue;
        }
        let line = file.line_of(tok.start);
        out.push(Finding {
            rule: "panic-free",
            path: file.path.clone(),
            line,
            message: message.to_string(),
            snippet: file.line_text(line).to_string(),
            witness: Vec::new(),
        });
    }
}
