//! `float-eq`: no `==`/`!=` between computed `f64` expressions.
//!
//! Two computed floating-point values that are mathematically equal are
//! rarely bit-equal (DESIGN.md §5's numerical conventions), so an exact
//! compare is either a latent flaky assert or a real logic bug — the
//! reward-reclamation assert fixed in this PR compared two
//! independently-accumulated reward rates with `==` and held only
//! because the loop currently terminates on the same iteration path.
//! Use `thermaware_linalg::approx::{eq_abs, eq_ulps}` for tolerant
//! comparison, or `f64::to_bits` when *exact bit* equality is the
//! specified contract (checkpoint replay).
//!
//! Without type information the rule is a token heuristic, tuned to this
//! workspace; it flags a comparison when either operand
//!
//! - contains a **float literal** (`x == 0.0`, `1.5 != y`), or
//! - ends in one of the workspace's known-`f64` **domain fields**
//!   (`reward_rate`, `total_power_kw`, …).
//!
//! An operand that passes through `to_bits` is exempt (the compare is
//! then `u64` and exactness is the point). Deliberate exact compares —
//! sparsity skips against a stored `0.0`, sentinel checks — carry an
//! inline `// lint: allow(float-eq): <reason>` at the site.
//!
//! Scope: every crate, tests included (a flaky assert in a test is
//! still a bug).

use super::Finding;
use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// Fields/idents known to be `f64` domain quantities in this workspace.
/// A comparison whose operand chain ends at one of these is flagged even
/// without a float literal on either side.
const F64_FIELDS: [&str; 9] = [
    "reward_rate",
    "reward_collected",
    "total_power_kw",
    "power_kw",
    "tout_c",
    "tin_c",
    "crac_out_c",
    "bias_c",
    "surge",
];

pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        check_file(file, &mut out);
    }
    out
}

fn check_file(file: &SourceFile, out: &mut Vec<Finding>) {
    let code: Vec<_> = file.code_tokens().collect();
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Punct {
            continue;
        }
        let op = tok.text(&file.text);
        if op != "==" && op != "!=" {
            continue;
        }
        let left = operand(&code, i, Dir::Left, file);
        let right = operand(&code, i, Dir::Right, file);
        if left.to_bits || right.to_bits {
            continue; // u64 compare; bit-exactness is the contract
        }
        if !(left.floaty || right.floaty) {
            continue;
        }
        let line = file.line_of(tok.start);
        out.push(Finding {
            rule: "float-eq",
            path: file.path.clone(),
            line,
            message: format!(
                "exact {op} on computed f64 — use approx::eq_abs/eq_ulps, or to_bits() if bit equality is the contract"
            ),
            snippet: file.line_text(line).to_string(),
            witness: Vec::new(),
        });
    }
}

enum Dir {
    Left,
    Right,
}

struct Operand {
    /// Operand looks like an f64 expression (float literal or known
    /// domain field in the chain).
    floaty: bool,
    /// Operand passes through `to_bits` (so the compared value is u64).
    to_bits: bool,
}

/// Inspect the operand chain adjacent to the comparison operator at
/// `code[at]`. The chain is the contiguous run of idents, numbers,
/// field/path separators and balanced brackets; scanning stops at any
/// token that ends an expression operand (`;`, `,`, `&&`, `{`, an
/// unbalanced bracket, …) or after a bounded number of tokens.
fn operand(code: &[&Token], at: usize, dir: Dir, file: &SourceFile) -> Operand {
    let mut floaty = false;
    let mut to_bits = false;
    // Balance counts brackets opened *within* the operand; going
    // negative means we've left the operand's bracket context.
    let mut balance: i32 = 0;
    let mut steps = 0usize;
    let mut idx = at;
    loop {
        let next = match dir {
            Dir::Left => idx.checked_sub(1),
            Dir::Right => idx.checked_add(1).filter(|&j| j < code.len()),
        };
        let Some(j) = next else { break };
        steps += 1;
        if steps > 24 {
            break;
        }
        let t = code[j];
        let text = t.text(&file.text);
        match t.kind {
            TokenKind::Num => {
                if t.is_float {
                    floaty = true;
                }
            }
            TokenKind::Ident => {
                if F64_FIELDS.contains(&text) {
                    floaty = true;
                }
                if text == "to_bits" {
                    to_bits = true;
                }
            }
            TokenKind::Punct => {
                // Walking leftwards, `)`/`]` open a bracket group and
                // `(`/`[` close it; rightwards it's the usual way round.
                let opens = match dir {
                    Dir::Left => matches!(text, ")" | "]"),
                    Dir::Right => matches!(text, "(" | "["),
                };
                let closes = match dir {
                    Dir::Left => matches!(text, "(" | "["),
                    Dir::Right => matches!(text, ")" | "]"),
                };
                if opens {
                    balance += 1;
                } else if closes {
                    balance -= 1;
                    if balance < 0 {
                        break;
                    }
                } else if matches!(text, "." | "::" | "-" | "&" | "*" | "!") {
                    // path/field separators and unary prefixes: continue
                } else if balance == 0 {
                    // Any other operator at depth 0 ends the operand.
                    break;
                }
            }
            _ => {
                if balance == 0 {
                    break;
                }
            }
        }
        idx = j;
    }
    Operand { floaty, to_bits }
}
