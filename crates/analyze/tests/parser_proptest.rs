//! Totality of the item parser: for *any* input — arbitrary bytes,
//! lossy-decoded, or adversarial concatenations of item-shaped
//! fragments — `parse` must not panic, and the item/gap segmentation it
//! produces must tile the file exactly (every byte covered once, in
//! order, items and gaps alternating over `[0, len)`).
//!
//! The tiling property is what the call-graph layer leans on: function
//! body spans, call-site attribution and `impl` block ownership all
//! assume item spans are in source order and disjoint.

use proptest::prelude::*;
use thermaware_analyze::parser::{parse, SegmentKind};
use thermaware_analyze::source::SourceFile;

/// Parse `src` and assert the item/gap tiling invariant.
fn assert_tiles(src: &str) -> Result<(), TestCaseError> {
    let file = SourceFile::new("crates/x/src/lib.rs".into(), "x".into(), src.to_string());
    let parsed = parse(&file);
    let segs = parsed.segments(src.len());

    let mut pos = 0usize;
    for s in &segs {
        prop_assert_eq!(s.start, pos, "gap or overlap at byte {}", pos);
        prop_assert!(s.start < s.end, "empty segment at byte {}", s.start);
        pos = s.end;
    }
    prop_assert_eq!(pos, src.len(), "segments must cover the whole file");
    for w in segs.windows(2) {
        prop_assert!(
            !(w[0].kind == SegmentKind::Gap && w[1].kind == SegmentKind::Gap),
            "adjacent gaps must coalesce"
        );
    }

    // Everything the parser attributes to a function must stay inside
    // that function's item span, and spans must be char-boundary-safe.
    for f in &parsed.fns {
        prop_assert!(f.span.0 < f.span.1 && f.span.1 <= src.len());
        prop_assert!(src.is_char_boundary(f.span.0) && src.is_char_boundary(f.span.1));
        if let Some((b0, b1)) = f.body {
            prop_assert!(b0 >= f.span.0 && b1 <= f.span.1, "body escapes its item");
        }
        for c in &f.calls {
            prop_assert!(
                c.line >= f.line,
                "call attributed above its owning function"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // Arbitrary bytes, lossy-decoded: unterminated strings swallowing
    // braces, stray closers, unknown tokens between items.
    #[test]
    fn arbitrary_bytes_never_panic(raw in prop::collection::vec(0usize..256, 0..160)) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_tiles(&src)?;
    }

    // Item-shaped fragment soup: headers without bodies, bodies without
    // headers, generics left open so angle-depth tracking is stressed,
    // `impl`/`mod`/`use` torn apart and reassembled out of order.
    #[test]
    fn item_fragment_soup_never_panics(
        picks in prop::collection::vec(
            prop::sample::select(vec![
                "fn", "pub fn f", "fn g()", "-> Vec<u8>", "where T: Ord",
                "impl", "impl Solver", "impl<T> Deep<T> for X", "for",
                "mod", "mod m", "mod m;", "use", "use a::b::{c, d};",
                "pub use x::*;", "self::", "super::", "crate::",
                "{", "}", "{}", "{{", "}}", "(", ")", ";", ",",
                "<", ">", "<<", ">>", "->", "=>", "::<u64>", "|x|",
                "a.b()", "A::b()", "Self::new()", "m!(", "panic!(\"x\")",
                "#[cfg(test)]", "#[test]", "// fn fake()", "/* } */",
                "\"fn in string { }\"", "r#\"raw } \"#", "'{'",
                "let x = 1;", "return", "match x", "if let Some(v)",
                "é", "\n", "\t", " ",
            ]),
            0..28,
        ),
    ) {
        let src: String = picks.iter().map(|p| format!("{p} ")).collect();
        assert_tiles(&src)?;
    }

    // Well-formed skeletons with a fuzzed interior: the parser must
    // keep the enclosing item's span exact no matter what the body
    // holds, including braces hidden in strings and comments.
    #[test]
    fn fuzzed_bodies_stay_inside_their_item(
        body in prop::collection::vec(
            prop::sample::select(vec![
                "x.y()", "a::b::c()", "s!(z)", "\"}\"", "'}'",
                "/* { */", "{ nested(); }", "if x { y() }", ";", "\n",
            ]),
            0..12,
        ),
    ) {
        let src = format!(
            "pub struct S;\nimpl S {{\n    pub fn f(&self) {{ {} }}\n}}\nfn tail() {{}}\n",
            body.concat()
        );
        let file = SourceFile::new("crates/x/src/lib.rs".into(), "x".into(), src.clone());
        let parsed = parse(&file);
        assert_tiles(&src)?;
        // Whatever the body contained, `tail` must still be found as
        // its own top-level item after the impl block.
        prop_assert!(
            parsed.fns.iter().any(|f| f.name == "tail" && f.impl_type.is_none()),
            "fuzzed impl body swallowed the following item"
        );
        prop_assert!(
            parsed.fns.iter().any(|f| f.name == "f" && f.impl_type.as_deref() == Some("S"))
        );
    }
}

/// Known-hard deterministic cases, kept explicit so a regression names
/// the construct instead of a shrunken fragment soup.
#[test]
fn deterministic_edge_cases_tile() {
    for src in [
        "",
        "fn",
        "fn f",
        "fn f(",
        "fn f() {",
        "fn f() {}",
        "impl",
        "impl X {",
        "impl X { fn g(&self) {} ",
        "mod m { fn h() {} }",
        "fn generics<T: Into<Vec<u8>>>(t: T) {}",
        "fn shr(x: u64) -> u64 { x >> 2 }",
        "fn cmp() -> bool { 1 < 2 && 3 > 4 }",
        "use a::{b, c::{d, e}};",
        "fn s() { let _ = \"} fn fake() {\"; }",
        "fn c() { /* } fn fake() { */ }",
        "#[cfg(test)]\nmod tests { #[test] fn t() { panic!() } }",
        "trait T { fn required(&self); }",
        "fn 🦀() {}",
    ] {
        assert_tiles(src).expect(src);
    }
}
