//! Facade-rule fixture: a cross-layer re-export outside the root.
pub use thermaware_lp::converged;
