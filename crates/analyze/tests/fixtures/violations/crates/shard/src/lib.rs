//! Fixture shard crate: a replay-path entry that is correctly spanned
//! (obs-coverage passes) but tainted through a cross-crate re-export.

mod solver;
pub use solver::FleetSolver;
