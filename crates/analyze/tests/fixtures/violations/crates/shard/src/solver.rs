//! Replay-path entry (`FleetSolver::replan`, in `TAINT_ENTRIES`) that
//! reaches ambient entropy through `thermaware_runtime`'s re-export.

use thermaware_runtime::seed_epoch;

pub struct FleetSolver {
    seed: u64,
}

impl FleetSolver {
    /// Spanned (obs-coverage must NOT fire here) but tainted:
    /// `seed_epoch` is `thread_rng` behind a re-export, one hop away.
    pub fn replan(&mut self) -> u64 {
        let _span = thermaware_obs::span("shard.replan");
        self.seed = mix(self.seed, seed_epoch());
        self.seed
    }
}

fn mix(a: u64, b: u64) -> u64 {
    a ^ b
}
