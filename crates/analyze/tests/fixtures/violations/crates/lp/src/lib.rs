//! Seeded violations for the analyzer golden tests
//! (crates/analyze/tests/fixtures.rs asserts the exact flagged lines).

use std::time::Instant;
use thermaware_core as _dag_edge_used;

pub fn entropy_ns() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn histogram(xs: &[u64]) -> std::collections::HashMap<u64, u64> {
    let mut m = std::collections::HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

pub fn converged(a: f64) -> bool {
    a == 0.0 || a != 1.5
}

pub fn bit_equal(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

pub fn first(xs: &[f64]) -> f64 {
    let v = xs.first().unwrap();
    if xs.len() > 9 {
        unreachable!("seeded violation");
    }
    *v
}

pub fn sentinel(x: f64) -> f64 {
    // lint: allow(float-eq): seeded escape — must not be reported
    if x == 0.5 {
        return 1.0;
    }
    x
}

pub fn allowlisted_site(y: f64) -> bool {
    y != 0.25
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_from_panic_free_and_determinism() {
        let v: Option<f64> = Some(1.0);
        v.unwrap();
        let _ = std::time::Instant::now();
        assert!(v.expect("set") == 1.0);
    }
}
