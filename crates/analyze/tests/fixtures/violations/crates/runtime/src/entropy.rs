//! Ambient entropy outside the token `determinism` rule's scope (it
//! scopes `runtime` only at persist.rs/degrade.rs), so only the
//! `determinism-taint` graph rule can reach this — through the call
//! graph, across the lib.rs re-export.

pub fn seed_epoch() -> u64 {
    thread_rng()
}
