//! Re-export shim: the shard fixture imports the taint below through
//! this `pub use`, so the graph rule must see through it.

mod entropy;
pub use entropy::seed_epoch;
