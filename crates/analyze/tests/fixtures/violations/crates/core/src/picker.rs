//! The deep end of the seeded call chain.

/// Reached as `Solver::solve` -> `plan` -> `deep_pick` (via the lib.rs
/// re-export); the unwrap below must be flagged by both `panic-free`
/// (token rule) and `transitive-panic` (graph rule, with a witness).
pub fn deep_pick(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}
