//! Seeded cross-function violations for the call-graph rules: a panic
//! two calls deep behind a re-export, and an un-spanned entry point.

mod picker;
pub use picker::deep_pick;

pub struct Solver {
    xs: Vec<f64>,
}

impl Solver {
    pub fn new(xs: Vec<f64>) -> Solver {
        Solver { xs }
    }

    /// Entry point (`PANIC_ENTRIES` / `OBS_ENTRIES`): never opens an obs
    /// span (seeded obs-coverage violation at this line) and reaches an
    /// unwrap two calls deep (seeded transitive-panic violation).
    pub fn solve(&self) -> f64 {
        plan(&self.xs)
    }
}

fn plan(xs: &[f64]) -> f64 {
    deep_pick(xs)
}
