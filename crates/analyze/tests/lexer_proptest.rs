//! Totality of the hand-rolled lexer: for *any* input — arbitrary
//! bytes, lossy-decoded, or adversarial concatenations of the trickiest
//! Rust fragments — `lex` must not panic and its token spans must tile
//! the input exactly (every byte covered once, in order).
//!
//! The tiling property is what the rest of the analyzer leans on:
//! line mapping, test-region detection and snippet extraction all
//! assume spans are contiguous and exhaustive.

use proptest::prelude::*;
use thermaware_analyze::lexer::lex;

/// Assert the tiling invariant for one input.
fn assert_tiles(src: &str) -> Result<(), TestCaseError> {
    let tokens = lex(src);
    if src.is_empty() {
        prop_assert!(tokens.is_empty(), "empty input must yield no tokens");
        return Ok(());
    }
    prop_assert!(!tokens.is_empty(), "non-empty input yielded no tokens");
    prop_assert_eq!(tokens[0].start, 0, "first token must start at byte 0");
    prop_assert_eq!(
        tokens[tokens.len() - 1].end,
        src.len(),
        "last token must end at the input length"
    );
    for w in tokens.windows(2) {
        prop_assert_eq!(
            w[0].end,
            w[1].start,
            "gap or overlap between consecutive tokens"
        );
    }
    for t in &tokens {
        prop_assert!(t.start < t.end, "empty token span at byte {}", t.start);
        // Spans must land on char boundaries or `Token::text` would
        // panic when slicing.
        prop_assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // Arbitrary bytes, lossy-decoded: exercises unknown tokens, stray
    // control characters, multi-byte UTF-8 replacement chars, and
    // unterminated everything.
    #[test]
    fn arbitrary_bytes_never_panic(raw in prop::collection::vec(0usize..256, 0..120)) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_tiles(&src)?;
    }

    // Adversarial fragments: every construct with lexer special-casing,
    // concatenated in random orders so openers are routinely left
    // unterminated or doubled.
    #[test]
    fn tricky_fragment_soup_never_panics(
        picks in prop::collection::vec(
            prop::sample::select(vec![
                "r#\"", "\"#", "r\"", "br#\"", "b\"", "\"", "\\\"", "\\",
                "/*", "*/", "//", "/**/", "/* /* */",
                "'a", "'a'", "'\\n'", "'", "b'x'",
                "0.5", "0..5", "1.", "1e9", "1e", "0x_f", "..", "..=",
                "==", "!=", "::", "->", "=>", "<=", ">=", "&&", "||",
                "fn", "pub", "#[cfg(test)]", "{", "}", "(", ")",
                "é", "日", "\u{FFFD}", "\n", "\t", " ",
            ]),
            0..24,
        ),
    ) {
        let src: String = picks.concat();
        assert_tiles(&src)?;
    }

    // Same soup inside an (possibly unterminated) enclosing construct —
    // raw strings and block comments must consume arbitrary tails
    // without ever stepping past the end.
    #[test]
    fn fragments_inside_openers_never_panic(
        opener in prop::sample::select(vec!["r#\"", "/*", "\"", "'", "br\""]),
        picks in prop::collection::vec(
            prop::sample::select(vec!["\"#", "*/", "\"", "\\", "#", "*", "/", "x", "\n"]),
            0..16,
        ),
    ) {
        let src = format!("{opener}{}", picks.concat());
        assert_tiles(&src)?;
    }
}

/// Known-hard deterministic cases, kept explicit so a regression names
/// the construct instead of a shrunken byte soup.
#[test]
fn deterministic_edge_cases_tile() {
    for src in [
        "",
        "'",
        "'a",
        "'a'",
        "r",
        "r#",
        "r#\"unterminated",
        "br##\"x\"#",
        "/* /* nested */ still open",
        "0.",
        "0..",
        "0..=1",
        "1.0e",
        "let x = 'static",
        "\"ends with backslash \\",
        "b'",
        "r#\"\"#",
        "🦀",
        "a\u{0}b",
    ] {
        assert_tiles(src).expect(src);
    }
}
