//! Golden tests: run the full engine over the seeded-violation fixture
//! workspace in `tests/fixtures/violations/` and assert every rule
//! flags exactly the lines it was seeded to flag — no more, no fewer.
//!
//! The fixture tree is *data*, never compiled and never scanned when
//! the analyzer runs on the real workspace (the walker skips `fixtures`
//! directories), so the violations in it are permanent.

use std::path::PathBuf;
use thermaware_analyze::engine::{self, Analysis};

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/violations")
}

fn analysis() -> Analysis {
    let root = fixture_root();
    assert!(
        root.join("crates/lp/Cargo.toml").is_file(),
        "fixture tree missing at {}",
        root.display()
    );
    engine::analyze(&root)
}

/// `(rule, path, line)` projection for order-sensitive comparison.
fn keys(findings: &[thermaware_analyze::rules::Finding]) -> Vec<(String, String, usize)> {
    findings
        .iter()
        .map(|f| (f.rule.to_string(), f.path.clone(), f.line))
        .collect()
}

#[test]
fn every_rule_flags_its_seeded_lines_exactly() {
    let a = analysis();
    let lib = "crates/lp/src/lib.rs";
    let expected: Vec<(String, String, usize)> = [
        // Sorted by (path, line, rule) — the engine's report order.
        ("obs-coverage", "crates/core/src/lib.rs", 19), // un-spanned entry point
        ("panic-free", "crates/core/src/picker.rs", 7), // token rule sees the unwrap locally…
        ("transitive-panic", "crates/core/src/picker.rs", 7), // …and the graph rule sees it from the entry
        ("layering", "crates/lp/Cargo.toml", 5),  // dag: lp -> core inverted edge
        ("layering", "crates/lp/Cargo.toml", 6),  // unused-dep: linalg never referenced
        ("determinism", lib, 8),                  // Instant::now, ungated
        ("determinism", lib, 12),                 // HashMap in return type
        ("determinism", lib, 13),                 // HashMap::new
        ("float-eq", lib, 21),                    // a == 0.0
        ("float-eq", lib, 21),                    // a != 1.5
        ("panic-free", lib, 29),                  // .unwrap()
        ("panic-free", lib, 31),                  // unreachable!
        ("float-eq", lib, 55),                    // float == inside #[cfg(test)] — still flagged
        ("determinism-taint", "crates/runtime/src/entropy.rs", 7), // thread_rng behind a re-export
        ("layering", "crates/thermal/src/lib.rs", 2), // pub use thermaware_* outside facade
        ("api-snapshot", "results/api/lp.txt", 0),    // ghost_item removal drift
        ("api-snapshot", "results/api/thermal.txt", 0), // snapshot missing entirely
    ]
    .into_iter()
    .map(|(r, p, l)| (r.to_string(), p.to_string(), l))
    .collect();
    assert_eq!(keys(&a.unsuppressed), expected);
    assert!(!a.clean(), "seeded fixture must fail --check");
}

#[test]
fn inline_allow_suppresses_the_next_line_only() {
    let a = analysis();
    assert_eq!(
        keys(&a.inline_allowed),
        vec![("float-eq".to_string(), "crates/lp/src/lib.rs".to_string(), 38)],
        "the `// lint: allow(float-eq)` escape on line 37 covers line 38"
    );
    // The escape must not bleed onto other float compares in the file.
    assert!(a.unsuppressed.iter().any(|f| f.rule == "float-eq" && f.line == 21));
}

#[test]
fn allowlist_matches_one_finding_and_reports_the_stale_entry() {
    let a = analysis();
    assert_eq!(
        keys(&a.allowlisted),
        vec![("float-eq".to_string(), "crates/lp/src/lib.rs".to_string(), 45)],
    );
    assert_eq!(a.stale_entries.len(), 1, "the line-999 entry matches nothing");
    assert_eq!(a.stale_entries[0].line, 999);
    assert_eq!(a.stale_entries[0].rule, "panic-free");
    assert!(a.malformed.is_empty());
}

#[test]
fn test_regions_exempt_panic_free_and_determinism_but_not_float_eq() {
    let a = analysis();
    let in_test_mod = |f: &thermaware_analyze::rules::Finding| {
        f.path == "crates/lp/src/lib.rs" && f.line >= 48
    };
    // Lines 53/54 hold `.unwrap()` and `Instant::now()` inside
    // `#[cfg(test)] mod tests` — neither rule may fire there…
    assert!(!a
        .unsuppressed
        .iter()
        .any(|f| in_test_mod(f) && (f.rule == "panic-free" || f.rule == "determinism")));
    // …while float-eq deliberately covers tests (line 55).
    assert!(a
        .unsuppressed
        .iter()
        .any(|f| in_test_mod(f) && f.rule == "float-eq" && f.line == 55));
}

#[test]
fn to_bits_compare_is_exempt_from_float_eq() {
    let a = analysis();
    let all = a
        .unsuppressed
        .iter()
        .chain(a.allowlisted.iter())
        .chain(a.inline_allowed.iter());
    // Line 25 compares f64 bit patterns — the sanctioned exact form.
    assert!(!all
        .into_iter()
        .any(|f| f.rule == "float-eq" && f.path == "crates/lp/src/lib.rs" && f.line == 25));
}

#[test]
fn finding_snippets_carry_the_offending_line() {
    let a = analysis();
    let unwrap_site = a
        .unsuppressed
        .iter()
        .find(|f| f.rule == "panic-free" && f.line == 29)
        .expect("seeded .unwrap() finding");
    assert_eq!(unwrap_site.snippet, "let v = xs.first().unwrap();");
    let dag = a
        .unsuppressed
        .iter()
        .find(|f| f.rule == "layering" && f.line == 5)
        .expect("seeded dag finding");
    assert!(dag.message.contains("`lp` must not depend on `core`"), "{}", dag.message);
}

#[test]
fn transitive_panic_witness_is_the_exact_call_chain() {
    let a = analysis();
    let f = a
        .unsuppressed
        .iter()
        .find(|f| f.rule == "transitive-panic")
        .expect("seeded transitive-panic finding");
    assert_eq!(
        f.witness,
        vec![
            "crates/core/src/lib.rs:19 Solver::solve",
            "crates/core/src/lib.rs:24 plan",
            "crates/core/src/picker.rs:6 deep_pick",
            "crates/core/src/picker.rs:7 .unwrap()",
        ],
        "witness must walk entry -> wrapper -> re-exported helper -> site"
    );
    assert!(f.message.contains("2 call(s) deep"), "{}", f.message);
}

#[test]
fn determinism_taint_sees_through_the_cross_crate_reexport() {
    let a = analysis();
    let f = a
        .unsuppressed
        .iter()
        .find(|f| f.rule == "determinism-taint")
        .expect("seeded determinism-taint finding");
    // `FleetSolver::replan` imports `seed_epoch` via
    // `thermaware_runtime`'s lib.rs re-export; the witness must still
    // land on the defining module, not the re-export.
    assert_eq!(
        f.witness,
        vec![
            "crates/shard/src/solver.rs:13 FleetSolver::replan",
            "crates/runtime/src/entropy.rs:6 seed_epoch",
            "crates/runtime/src/entropy.rs:7 thread_rng — ambient entropy",
        ]
    );
}

#[test]
fn spanned_entry_passes_obs_coverage() {
    let a = analysis();
    // The shard fixture's `replan` opens `thermaware_obs::span(…)` in
    // its own body: obs-coverage must fire only for the core entry.
    let obs: Vec<_> = a.unsuppressed.iter().filter(|f| f.rule == "obs-coverage").collect();
    assert_eq!(obs.len(), 1);
    assert_eq!(obs[0].path, "crates/core/src/lib.rs");
}

#[test]
fn api_drift_names_the_ghost_item() {
    let a = analysis();
    let removal = a
        .unsuppressed
        .iter()
        .find(|f| f.rule == "api-snapshot" && f.path == "results/api/lp.txt")
        .expect("seeded removal drift");
    assert_eq!(removal.snippet, "pub fn ghost_item() -> u64");
    assert!(removal.message.contains("removal"), "{}", removal.message);
}
