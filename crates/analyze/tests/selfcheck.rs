//! Self-check: the analyzer's own `--check` contract holds for the tree
//! this test is running from. Equivalent to the CI gate, but as a plain
//! `cargo test` so a dirty tree fails fast locally with the findings in
//! the assertion message.
//!
//! Clean means: zero unsuppressed findings, zero stale allowlist
//! entries (the shipped `crates/analyze/allowlist.txt` matches the tree
//! *exactly* — every entry still corresponds to a real finding), zero
//! malformed allowlist lines, and every `results/api/<crate>.txt`
//! snapshot matching the current pub surface.

use std::path::PathBuf;
use thermaware_analyze::engine;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn shipped_tree_is_clean_and_allowlist_is_exact() {
    let root = workspace_root();
    assert!(root.join("Cargo.toml").is_file(), "not a workspace root: {}", root.display());
    let a = engine::analyze(&root);

    let mut problems = String::new();
    for f in &a.unsuppressed {
        problems.push_str(&format!("  {}: {}:{}: {}\n", f.rule, f.path, f.line, f.message));
    }
    for e in &a.stale_entries {
        problems.push_str(&format!(
            "  stale allowlist entry (allowlist.txt:{}): {} {}:{}\n",
            e.at, e.rule, e.path, e.line
        ));
    }
    for m in &a.malformed {
        problems.push_str(&format!("  {m}\n"));
    }
    assert!(
        a.clean(),
        "tree is not analyze-clean — fix the sites, add `// lint: allow(<rule>): <reason>`, \
         or run `cargo run -p thermaware-analyze -- --bless`:\n{problems}"
    );
}

#[test]
fn entry_manifests_resolve() {
    // The graph rules' entry manifests are name-based and the real tree
    // moves under them. A row that stops resolving silently disables
    // its gate, so every row must still match at least one function in
    // the workspace.
    use thermaware_analyze::callgraph::Graph;
    use thermaware_analyze::rules::graph::{OBS_ENTRIES, PANIC_ENTRIES, TAINT_ENTRIES};
    use thermaware_analyze::workspace::Workspace;

    let ws = Workspace::load(&workspace_root());
    let g = Graph::build(&ws);
    let mut missing = String::new();
    for (label, rows) in [
        ("PANIC_ENTRIES", &PANIC_ENTRIES[..]),
        ("TAINT_ENTRIES", &TAINT_ENTRIES[..]),
        ("OBS_ENTRIES", &OBS_ENTRIES[..]),
    ] {
        for (krate, impl_type, name) in rows {
            if g.find(krate, *impl_type, name).is_empty() {
                let owner = impl_type.map(|t| format!("{t}::")).unwrap_or_default();
                missing.push_str(&format!("  {label}: {krate} {owner}{name}\n"));
            }
        }
    }
    assert!(
        missing.is_empty(),
        "entry-manifest rows no longer resolve to any function — the rule \
         silently stopped gating them; update rules/graph.rs:\n{missing}"
    );
}

#[test]
fn analyzer_actually_scanned_the_workspace() {
    // Guard against a silently-empty walk (wrong root, renamed dirs):
    // the real tree has hundreds of findings *before* suppression and
    // a known tracked-debt ledger.
    let a = engine::analyze(&workspace_root());
    assert!(
        a.total_raw() >= 10,
        "implausibly few raw findings ({}) — did the walker find the sources?",
        a.total_raw()
    );
    assert!(
        !a.allowlisted.is_empty() || !a.inline_allowed.is_empty(),
        "the shipped tree carries known suppressed findings; zero means the walk went wrong"
    );
}
