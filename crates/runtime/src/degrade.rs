//! The greedy throttle ladder, exposed as a standalone deterministic
//! primitive.
//!
//! PR 1 buried the power-cap throttle inside the supervisor's rung-3
//! response. The fleet solver (`crates/shard`) needs the same move for
//! its degraded-zone fallback — take the zone's last-good plan and walk
//! it back under a shrunken budget — so the greedy core selection lives
//! here and the supervisor calls it for its power-mode rung.
//!
//! The move is the paper's Stage-2 logic run in reverse: repeatedly
//! deepen the P-state of the core giving up the most power per MHz of
//! speed lost (the least reward-efficient speed, by concavity of ARR).
//! Deepening only ever lowers node powers, and the heat-flow model's
//! inlet temperatures are nondecreasing in node powers, so a
//! redline-feasible plan stays redline-feasible at every step — the
//! ladder can only walk *into* the feasible region.

use thermaware_datacenter::DataCenter;
use thermaware_thermal::ChipModel;

/// Pick the cheapest one-state deepening: among each live node's
/// shallowest core, the one shedding the most power per MHz lost.
/// `dead[j]` masks out dead nodes (`None` = all alive). Returns the
/// global core index, or `None` when every core is already off.
pub fn cheapest_throttle_step(
    dc: &DataCenter,
    pstates: &[usize],
    dead: Option<&[bool]>,
) -> Option<usize> {
    let mut best: Option<(f64, usize)> = None; // (score, core)
    for j in 0..dc.n_nodes() {
        if dead.is_some_and(|d| d[j]) {
            continue;
        }
        let table = &dc.node_type(j).core.pstates;
        let off = table.off_index();
        let Some(k) = dc
            .cores_of_node(j)
            .filter(|&k| pstates[k] < off)
            .min_by_key(|&k| pstates[k])
        else {
            continue;
        };
        let p = pstates[k];
        let dp_kw = table.power_kw(p) - table.power_kw(p + 1);
        let ds_mhz = (table.freq_mhz(p) - table.freq_mhz(p + 1)).max(1e-9);
        let score = dp_kw / ds_mhz;
        if best.is_none_or(|(b, _)| score > b) {
            best = Some((score, k));
        }
    }
    best.map(|(_, k)| k)
}

/// A throttled plan and where it landed.
#[derive(Debug, Clone, PartialEq)]
pub struct ThrottlePlan {
    /// The deepened per-core P-states (global core order).
    pub pstates: Vec<usize>,
    /// One-state deepenings applied.
    pub steps: usize,
    /// IT power of the result, kW.
    pub it_kw: f64,
    /// Cooling power of the result at `outlets`, kW.
    pub cooling_kw: f64,
    /// Whether `it_kw + cooling_kw ≤ budget_kw` was reached (false means
    /// the ladder ran out of cores or steps first).
    pub fits: bool,
}

/// Walk `pstates` under `budget_kw` (total IT + cooling at the given
/// CRAC outlets) by greedy one-state deepenings, up to `max_steps`.
pub fn throttle_to_budget(
    dc: &DataCenter,
    outlets: &[f64],
    pstates: &[usize],
    budget_kw: f64,
    max_steps: usize,
) -> ThrottlePlan {
    let mut pstates = pstates.to_vec();
    let mut steps = 0usize;
    loop {
        let powers = dc.node_powers_from_pstates(&pstates);
        let (it_kw, cooling_kw, _state) = dc.total_power_kw(outlets, &powers);
        if it_kw + cooling_kw <= budget_kw {
            return ThrottlePlan { pstates, steps, it_kw, cooling_kw, fits: true };
        }
        if steps >= max_steps {
            return ThrottlePlan { pstates, steps, it_kw, cooling_kw, fits: false };
        }
        match cheapest_throttle_step(dc, &pstates, None) {
            Some(k) => {
                pstates[k] += 1;
                steps += 1;
            }
            None => return ThrottlePlan { pstates, steps, it_kw, cooling_kw, fits: false },
        }
    }
}

/// A chip-level migration plan and where it landed.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationPlan {
    /// The permuted per-core P-states (global core order). Within every
    /// node this is a permutation of the input — node power totals, and
    /// therefore every room-level constraint, are unchanged.
    pub pstates: Vec<usize>,
    /// Pairwise core swaps applied.
    pub swaps: usize,
    /// Fleet-wide peak die temperature before, °C.
    pub peak_before_c: f64,
    /// Fleet-wide peak die temperature after, °C.
    pub peak_after_c: f64,
    /// Whether every die's peak ended at or under the chip model's DTM
    /// threshold (false means migration alone cannot cool the hotspot —
    /// the caller should fall back to throttling).
    pub fits: bool,
}

/// Cool chip-level hotspots by migrating work between cores of the same
/// node: greedy strictly-improving P-state swaps on each over-threshold
/// die, up to `max_swaps` total. `inlets_c[j]` is node `j`'s inlet (die
/// ambient) temperature; `dead[j]` masks out dead nodes. This is the
/// degradation rung between throttle and shed: unlike both, it sheds
/// **zero** reward — node power totals are invariant, so a Stage-3 warm
/// replan after it reproduces the same rates.
pub fn migrate_to_tspd(
    dc: &DataCenter,
    chip: &ChipModel,
    inlets_c: &[f64],
    pstates: &[usize],
    max_swaps: usize,
    dead: Option<&[bool]>,
) -> MigrationPlan {
    let mut pstates = pstates.to_vec();
    let mut swaps = 0usize;
    let mut peak_before = f64::NEG_INFINITY;
    let mut peak_after = f64::NEG_INFINITY;
    let mut fits = true;
    for j in 0..dc.n_nodes() {
        let t = dc.node_type_of[j];
        if t >= chip.n_types() {
            continue;
        }
        let grid = chip.grid(t);
        let cores: Vec<usize> = dc.cores_of_node(j).collect();
        if cores.len() != grid.n_cores() {
            continue;
        }
        let table = &dc.node_type(j).core.pstates;
        let ambient = inlets_c.get(j).copied().unwrap_or(0.0);
        let mut powers: Vec<f64> = cores.iter().map(|&k| table.power_kw(pstates[k])).collect();
        let mut peak = grid.peak_c(ambient, &powers);
        peak_before = peak_before.max(peak);
        if dead.is_some_and(|d| d[j]) {
            peak_after = peak_after.max(peak);
            continue;
        }
        // Greedy local search: take the swap that lowers this die's peak
        // the most, repeat while any strictly-improving swap exists.
        while peak > chip.t_dtm_c() && swaps < max_swaps {
            let mut best: Option<(f64, usize, usize)> = None; // (peak, a, b)
            for a in 0..powers.len() {
                for b in (a + 1)..powers.len() {
                    if powers[a] == powers[b] {
                        continue;
                    }
                    powers.swap(a, b);
                    let p = grid.peak_c(ambient, &powers);
                    powers.swap(a, b);
                    if p < peak - 1e-12 && best.is_none_or(|(bp, _, _)| p < bp) {
                        best = Some((p, a, b));
                    }
                }
            }
            let Some((p, a, b)) = best else { break };
            powers.swap(a, b);
            pstates.swap(cores[a], cores[b]);
            peak = p;
            swaps += 1;
        }
        peak_after = peak_after.max(peak);
        if peak > chip.t_dtm_c() {
            fits = false;
        }
    }
    MigrationPlan {
        pstates,
        swaps,
        peak_before_c: peak_before,
        peak_after_c: peak_after,
        fits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermaware_core::{solve_three_stage, ThreeStageOptions};
    use thermaware_datacenter::ScenarioParams;
    use thermaware_thermal::ChipParams;

    fn solved_zone() -> (DataCenter, Vec<usize>, Vec<f64>) {
        let dc = ScenarioParams::small_test().build(3).expect("scenario builds");
        let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("solves");
        let outlets = plan.crac_out_c().to_vec();
        (dc, plan.pstates, outlets)
    }

    #[test]
    fn throttling_to_a_lower_budget_monotonically_sheds_power() {
        let (dc, pstates, outlets) = solved_zone();
        let powers = dc.node_powers_from_pstates(&pstates);
        let (it, cooling, _) = dc.total_power_kw(&outlets, &powers);
        let full = it + cooling;
        let target = 0.8 * full;
        let plan = throttle_to_budget(&dc, &outlets, &pstates, target, 100_000);
        assert!(plan.fits, "80% of the solved load must be reachable");
        assert!(plan.it_kw + plan.cooling_kw <= target + 1e-9);
        assert!(plan.steps > 0);
        // Deepening only: every core at an equal-or-deeper state.
        for (a, b) in pstates.iter().zip(&plan.pstates) {
            assert!(b >= a);
        }
    }

    #[test]
    fn redlines_survive_throttling() {
        let (dc, pstates, outlets) = solved_zone();
        let powers = dc.node_powers_from_pstates(&pstates);
        let (it, cooling, state) = dc.total_power_kw(&outlets, &powers);
        assert!(dc.redlines_ok(&state), "solved plan starts feasible");
        let plan = throttle_to_budget(&dc, &outlets, &pstates, 0.75 * (it + cooling), 100_000);
        let (_, _, state) = dc.total_power_kw(&outlets, &dc.node_powers_from_pstates(&plan.pstates));
        assert!(dc.redlines_ok(&state), "throttling must not create violations");
    }

    #[test]
    fn impossible_budget_reports_not_fitting() {
        let (dc, pstates, outlets) = solved_zone();
        // Below even the all-off floor: the ladder must terminate and
        // report fits = false rather than loop.
        let plan = throttle_to_budget(&dc, &outlets, &pstates, 0.0, 100_000);
        assert!(!plan.fits);
        // Everything it could turn off, it did.
        assert!(cheapest_throttle_step(&dc, &plan.pstates, None).is_none());
    }

    #[test]
    fn dead_nodes_are_skipped() {
        let (dc, pstates, _outlets) = solved_zone();
        let mut dead = vec![false; dc.n_nodes()];
        dead[0] = true;
        if let Some(k) = cheapest_throttle_step(&dc, &pstates, Some(&dead)) {
            assert!(!dc.cores_of_node(0).contains(&k), "dead node must not be chosen");
        }
    }

    #[test]
    fn budget_above_draw_is_a_no_op() {
        let (dc, pstates, outlets) = solved_zone();
        let powers = dc.node_powers_from_pstates(&pstates);
        let (it, cooling, _) = dc.total_power_kw(&outlets, &powers);
        let plan = throttle_to_budget(&dc, &outlets, &pstates, it + cooling + 10.0, 100_000);
        assert!(plan.fits, "a budget above the current draw fits as-is");
        assert_eq!(plan.steps, 0);
        assert_eq!(plan.pstates, pstates, "no core may be touched");
    }

    #[test]
    fn zero_budget_on_an_all_off_fleet_terminates_without_steps() {
        let (dc, pstates, outlets) = solved_zone();
        let mut all_off = pstates;
        for j in 0..dc.n_nodes() {
            let off = dc.node_type(j).core.pstates.off_index();
            for k in dc.cores_of_node(j) {
                all_off[k] = off;
            }
        }
        // Nothing left to deepen: the ladder must return immediately, and
        // static node power keeps the floor above a zero budget.
        assert!(cheapest_throttle_step(&dc, &all_off, None).is_none());
        let plan = throttle_to_budget(&dc, &outlets, &all_off, 0.0, 100_000);
        assert_eq!(plan.steps, 0);
        assert_eq!(plan.pstates, all_off);
        assert!(!plan.fits, "static draw cannot fit a zero budget");
        assert!(plan.it_kw + plan.cooling_kw > 0.0);
    }

    /// Four max-power cores clustered in a die corner run hotter than any
    /// spread placement; migration must cool the die to its local optimum
    /// without moving a single watt between nodes.
    #[test]
    fn migration_cools_a_clustered_die_and_preserves_node_power() {
        let (dc, pstates, _outlets) = solved_zone();
        let cores_per_type: Vec<usize> =
            dc.node_types.iter().map(|t| t.cores_per_node).collect();
        // t_dtm below ambient: the greedy search runs until no
        // strictly-improving swap exists, i.e. to its local optimum.
        let cold = ChipModel::build(
            &cores_per_type,
            &ChipParams { t_dtm_c: 0.0, ..ChipParams::default() },
        )
        .expect("chip model builds");

        // All cores off except four shallow (max-power) cores packed into
        // adjacent grid positions in node 0's corner.
        let mut clustered = pstates;
        for j in 0..dc.n_nodes() {
            let off = dc.node_type(j).core.pstates.off_index();
            for k in dc.cores_of_node(j) {
                clustered[k] = off;
            }
        }
        let node0: Vec<usize> = dc.cores_of_node(0).collect();
        let (w, _) = cold.grid(dc.node_type_of[0]).shape();
        for &local in &[0, 1, w, w + 1] {
            clustered[node0[local]] = 0;
        }
        let inlets = vec![25.0; dc.n_nodes()];

        let plan = migrate_to_tspd(&dc, &cold, &inlets, &clustered, 10_000, None);
        assert!(plan.swaps > 0, "the clustered corner must be broken up");
        assert!(
            plan.peak_after_c < plan.peak_before_c - 0.1,
            "peak {} -> {} must drop",
            plan.peak_before_c,
            plan.peak_after_c
        );
        // Node power totals are invariant (room constraints untouched) and
        // every node's P-state multiset is preserved (pure permutation).
        let before = dc.node_powers_from_pstates(&clustered);
        let after = dc.node_powers_from_pstates(&plan.pstates);
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 1e-12, "node power moved: {b} -> {a}");
        }
        for j in 0..dc.n_nodes() {
            let mut x: Vec<usize> = dc.cores_of_node(j).map(|k| clustered[k]).collect();
            let mut y: Vec<usize> = dc.cores_of_node(j).map(|k| plan.pstates[k]).collect();
            x.sort_unstable();
            y.sort_unstable();
            assert_eq!(x, y, "node {j}: P-state multiset must be preserved");
        }

        // A DTM redline midway between the clustered and migrated peaks is
        // reachable by migration alone: the rung reports fits = true.
        let mid = 0.5 * (plan.peak_before_c + plan.peak_after_c);
        let chip = ChipModel::build(
            &cores_per_type,
            &ChipParams { t_dtm_c: mid, ..ChipParams::default() },
        )
        .expect("chip model builds");
        let plan2 = migrate_to_tspd(&dc, &chip, &inlets, &clustered, 10_000, None);
        assert!(plan2.fits, "a reachable redline must be reported as fitting");
        assert!(plan2.peak_after_c <= mid + 1e-9);
    }
}
