//! The greedy throttle ladder, exposed as a standalone deterministic
//! primitive.
//!
//! PR 1 buried the power-cap throttle inside the supervisor's rung-3
//! response. The fleet solver (`crates/shard`) needs the same move for
//! its degraded-zone fallback — take the zone's last-good plan and walk
//! it back under a shrunken budget — so the greedy core selection lives
//! here and the supervisor calls it for its power-mode rung.
//!
//! The move is the paper's Stage-2 logic run in reverse: repeatedly
//! deepen the P-state of the core giving up the most power per MHz of
//! speed lost (the least reward-efficient speed, by concavity of ARR).
//! Deepening only ever lowers node powers, and the heat-flow model's
//! inlet temperatures are nondecreasing in node powers, so a
//! redline-feasible plan stays redline-feasible at every step — the
//! ladder can only walk *into* the feasible region.

use thermaware_datacenter::DataCenter;

/// Pick the cheapest one-state deepening: among each live node's
/// shallowest core, the one shedding the most power per MHz lost.
/// `dead[j]` masks out dead nodes (`None` = all alive). Returns the
/// global core index, or `None` when every core is already off.
pub fn cheapest_throttle_step(
    dc: &DataCenter,
    pstates: &[usize],
    dead: Option<&[bool]>,
) -> Option<usize> {
    let mut best: Option<(f64, usize)> = None; // (score, core)
    for j in 0..dc.n_nodes() {
        if dead.is_some_and(|d| d[j]) {
            continue;
        }
        let table = &dc.node_type(j).core.pstates;
        let off = table.off_index();
        let Some(k) = dc
            .cores_of_node(j)
            .filter(|&k| pstates[k] < off)
            .min_by_key(|&k| pstates[k])
        else {
            continue;
        };
        let p = pstates[k];
        let dp_kw = table.power_kw(p) - table.power_kw(p + 1);
        let ds_mhz = (table.freq_mhz(p) - table.freq_mhz(p + 1)).max(1e-9);
        let score = dp_kw / ds_mhz;
        if best.is_none_or(|(b, _)| score > b) {
            best = Some((score, k));
        }
    }
    best.map(|(_, k)| k)
}

/// A throttled plan and where it landed.
#[derive(Debug, Clone, PartialEq)]
pub struct ThrottlePlan {
    /// The deepened per-core P-states (global core order).
    pub pstates: Vec<usize>,
    /// One-state deepenings applied.
    pub steps: usize,
    /// IT power of the result, kW.
    pub it_kw: f64,
    /// Cooling power of the result at `outlets`, kW.
    pub cooling_kw: f64,
    /// Whether `it_kw + cooling_kw ≤ budget_kw` was reached (false means
    /// the ladder ran out of cores or steps first).
    pub fits: bool,
}

/// Walk `pstates` under `budget_kw` (total IT + cooling at the given
/// CRAC outlets) by greedy one-state deepenings, up to `max_steps`.
pub fn throttle_to_budget(
    dc: &DataCenter,
    outlets: &[f64],
    pstates: &[usize],
    budget_kw: f64,
    max_steps: usize,
) -> ThrottlePlan {
    let mut pstates = pstates.to_vec();
    let mut steps = 0usize;
    loop {
        let powers = dc.node_powers_from_pstates(&pstates);
        let (it_kw, cooling_kw, _state) = dc.total_power_kw(outlets, &powers);
        if it_kw + cooling_kw <= budget_kw {
            return ThrottlePlan { pstates, steps, it_kw, cooling_kw, fits: true };
        }
        if steps >= max_steps {
            return ThrottlePlan { pstates, steps, it_kw, cooling_kw, fits: false };
        }
        match cheapest_throttle_step(dc, &pstates, None) {
            Some(k) => {
                pstates[k] += 1;
                steps += 1;
            }
            None => return ThrottlePlan { pstates, steps, it_kw, cooling_kw, fits: false },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermaware_core::{solve_three_stage, ThreeStageOptions};
    use thermaware_datacenter::ScenarioParams;

    fn solved_zone() -> (DataCenter, Vec<usize>, Vec<f64>) {
        let dc = ScenarioParams::small_test().build(3).expect("scenario builds");
        let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("solves");
        let outlets = plan.crac_out_c().to_vec();
        (dc, plan.pstates, outlets)
    }

    #[test]
    fn throttling_to_a_lower_budget_monotonically_sheds_power() {
        let (dc, pstates, outlets) = solved_zone();
        let powers = dc.node_powers_from_pstates(&pstates);
        let (it, cooling, _) = dc.total_power_kw(&outlets, &powers);
        let full = it + cooling;
        let target = 0.8 * full;
        let plan = throttle_to_budget(&dc, &outlets, &pstates, target, 100_000);
        assert!(plan.fits, "80% of the solved load must be reachable");
        assert!(plan.it_kw + plan.cooling_kw <= target + 1e-9);
        assert!(plan.steps > 0);
        // Deepening only: every core at an equal-or-deeper state.
        for (a, b) in pstates.iter().zip(&plan.pstates) {
            assert!(b >= a);
        }
    }

    #[test]
    fn redlines_survive_throttling() {
        let (dc, pstates, outlets) = solved_zone();
        let powers = dc.node_powers_from_pstates(&pstates);
        let (it, cooling, state) = dc.total_power_kw(&outlets, &powers);
        assert!(dc.redlines_ok(&state), "solved plan starts feasible");
        let plan = throttle_to_budget(&dc, &outlets, &pstates, 0.75 * (it + cooling), 100_000);
        let (_, _, state) = dc.total_power_kw(&outlets, &dc.node_powers_from_pstates(&plan.pstates));
        assert!(dc.redlines_ok(&state), "throttling must not create violations");
    }

    #[test]
    fn impossible_budget_reports_not_fitting() {
        let (dc, pstates, outlets) = solved_zone();
        // Below even the all-off floor: the ladder must terminate and
        // report fits = false rather than loop.
        let plan = throttle_to_budget(&dc, &outlets, &pstates, 0.0, 100_000);
        assert!(!plan.fits);
        // Everything it could turn off, it did.
        assert!(cheapest_throttle_step(&dc, &plan.pstates, None).is_none());
    }

    #[test]
    fn dead_nodes_are_skipped() {
        let (dc, pstates, _outlets) = solved_zone();
        let mut dead = vec![false; dc.n_nodes()];
        dead[0] = true;
        if let Some(k) = cheapest_throttle_step(&dc, &pstates, Some(&dead)) {
            assert!(!dc.cores_of_node(0).contains(&k), "dead node must not be chosen");
        }
    }
}
