//! Composable, seeded fault scripts injected into a supervised run.

use rand::Rng;
use serde::{Deserialize, Serialize, Value};

/// One kind of mid-run fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// A CRAC unit's coil fails (fan keeps turning): it stops cooling and
    /// passes air through (`steady_state_with_failed_cracs`).
    CracFailure {
        /// CRAC unit index.
        unit: usize,
    },
    /// A previously failed CRAC unit comes back at its current set-point.
    CracRecovery {
        /// CRAC unit index.
        unit: usize,
    },
    /// A compute node dies: its cores stop, in-flight tasks are lost, and
    /// it draws no power (and produces no heat) from then on.
    NodeDeath {
        /// Node index.
        node: usize,
    },
    /// Inlet sensors drift by a common bias: the supervisor *observes*
    /// node inlets shifted by `bias_c` °C (positive reads hot — phantom
    /// violations; negative reads cold — masked violations). The physics
    /// — and the thermal-trip rule — use the true temperatures.
    SensorDrift {
        /// Observed-minus-true inlet bias, °C.
        bias_c: f64,
    },
    /// The arrival rate of every task type is multiplied by `factor` from
    /// this point on (a demand surge for `factor > 1`; a lull below).
    ArrivalSurge {
        /// Rate multiplier, ≥ 0.
        factor: f64,
    },
}

/// A fault scheduled at an absolute simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Injection time, seconds from the start of the run.
    pub at_s: f64,
    /// What happens.
    pub fault: Fault,
}

/// A time-ordered script of faults. Build one with the chained
/// constructors, or [`FaultScript::random`] for randomized robustness
/// testing.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct FaultScript {
    events: Vec<FaultEvent>,
}

impl FaultScript {
    /// An empty script (a nominal run).
    pub fn new() -> FaultScript {
        FaultScript::default()
    }

    /// Schedule an arbitrary fault.
    pub fn push(&mut self, at_s: f64, fault: Fault) {
        let at_s = if at_s.is_finite() { at_s.max(0.0) } else { 0.0 };
        let idx = self
            .events
            .partition_point(|e| e.at_s <= at_s);
        self.events.insert(idx, FaultEvent { at_s, fault });
    }

    /// Schedule a CRAC coil failure.
    pub fn crac_failure(mut self, at_s: f64, unit: usize) -> FaultScript {
        self.push(at_s, Fault::CracFailure { unit });
        self
    }

    /// Schedule a CRAC recovery.
    pub fn crac_recovery(mut self, at_s: f64, unit: usize) -> FaultScript {
        self.push(at_s, Fault::CracRecovery { unit });
        self
    }

    /// Schedule a node death.
    pub fn node_death(mut self, at_s: f64, node: usize) -> FaultScript {
        self.push(at_s, Fault::NodeDeath { node });
        self
    }

    /// Schedule an inlet-sensor drift.
    pub fn sensor_drift(mut self, at_s: f64, bias_c: f64) -> FaultScript {
        self.push(at_s, Fault::SensorDrift { bias_c });
        self
    }

    /// Schedule an arrival-rate surge.
    pub fn arrival_surge(mut self, at_s: f64, factor: f64) -> FaultScript {
        self.push(at_s, Fault::ArrivalSurge { factor });
        self
    }

    /// The scheduled events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Is the script empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A random script of `n_events` faults over `[0, horizon_s)` on a
    /// floor with `n_crac` CRAC units and `n_nodes` nodes. Every fault
    /// kind is drawn with equal probability; indices are always in range.
    pub fn random<R: Rng>(
        rng: &mut R,
        n_events: usize,
        horizon_s: f64,
        n_crac: usize,
        n_nodes: usize,
    ) -> FaultScript {
        let mut script = FaultScript::new();
        for _ in 0..n_events {
            let at_s = rng.gen_range(0.0..horizon_s.max(f64::MIN_POSITIVE));
            let fault = match rng.gen_range(0..5u32) {
                0 => Fault::CracFailure {
                    unit: rng.gen_range(0..n_crac.max(1)),
                },
                1 => Fault::CracRecovery {
                    unit: rng.gen_range(0..n_crac.max(1)),
                },
                2 => Fault::NodeDeath {
                    node: rng.gen_range(0..n_nodes.max(1)),
                },
                3 => Fault::SensorDrift {
                    bias_c: rng.gen_range(-5.0..5.0),
                },
                _ => Fault::ArrivalSurge {
                    factor: rng.gen_range(0.2..3.0),
                },
            };
            script.push(at_s, fault);
        }
        script
    }
}

// The vendored serde derive cannot express payload-carrying enums, so
// `Fault` serializes by hand as a tagged object. `FaultScript`
// deserialization rebuilds through [`FaultScript::push`], restoring the
// sort order and timestamp clamping no matter what the file contained.

impl Serialize for Fault {
    fn to_value(&self) -> Value {
        let entries = match self {
            Fault::CracFailure { unit } => vec![
                ("kind".to_string(), "crac_failure".to_value()),
                ("unit".to_string(), unit.to_value()),
            ],
            Fault::CracRecovery { unit } => vec![
                ("kind".to_string(), "crac_recovery".to_value()),
                ("unit".to_string(), unit.to_value()),
            ],
            Fault::NodeDeath { node } => vec![
                ("kind".to_string(), "node_death".to_value()),
                ("node".to_string(), node.to_value()),
            ],
            Fault::SensorDrift { bias_c } => vec![
                ("kind".to_string(), "sensor_drift".to_value()),
                ("bias_c".to_string(), bias_c.to_value()),
            ],
            Fault::ArrivalSurge { factor } => vec![
                ("kind".to_string(), "arrival_surge".to_value()),
                ("factor".to_string(), factor.to_value()),
            ],
        };
        Value::Object(entries)
    }
}

impl Deserialize for Fault {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("Fault: expected object"))?;
        let kind: String = serde::field(entries, "kind")?;
        match kind.as_str() {
            "crac_failure" => Ok(Fault::CracFailure {
                unit: serde::field(entries, "unit")?,
            }),
            "crac_recovery" => Ok(Fault::CracRecovery {
                unit: serde::field(entries, "unit")?,
            }),
            "node_death" => Ok(Fault::NodeDeath {
                node: serde::field(entries, "node")?,
            }),
            "sensor_drift" => Ok(Fault::SensorDrift {
                bias_c: serde::field(entries, "bias_c")?,
            }),
            "arrival_surge" => Ok(Fault::ArrivalSurge {
                factor: serde::field(entries, "factor")?,
            }),
            other => Err(serde::Error::custom(format!(
                "Fault: unknown kind '{other}'"
            ))),
        }
    }
}

impl Deserialize for FaultScript {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("FaultScript: expected object"))?;
        let events: Vec<FaultEvent> = serde::field(entries, "events")?;
        let mut script = FaultScript::new();
        for e in events {
            script.push(e.at_s, e.fault);
        }
        Ok(script)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scripts_stay_time_ordered() {
        let s = FaultScript::new()
            .node_death(5.0, 1)
            .crac_failure(1.0, 0)
            .arrival_surge(3.0, 2.0);
        let times: Vec<f64> = s.events().iter().map(|e| e.at_s).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn degenerate_times_are_clamped() {
        let mut s = FaultScript::new();
        s.push(f64::NAN, Fault::SensorDrift { bias_c: 1.0 });
        s.push(-4.0, Fault::ArrivalSurge { factor: 2.0 });
        assert!(s.events().iter().all(|e| e.at_s == 0.0)); // lint: allow(float-eq): degenerate times are clamped to the literal 0.0, never computed
    }

    #[test]
    fn random_scripts_are_in_range_and_sorted() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let s = FaultScript::random(&mut rng, 8, 20.0, 2, 5);
            assert_eq!(s.events().len(), 8);
            for w in s.events().windows(2) {
                assert!(w[0].at_s <= w[1].at_s);
            }
            for e in s.events() {
                match e.fault {
                    Fault::CracFailure { unit } | Fault::CracRecovery { unit } => {
                        assert!(unit < 2)
                    }
                    Fault::NodeDeath { node } => assert!(node < 5),
                    _ => {}
                }
            }
        }
    }
}
