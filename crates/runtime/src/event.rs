//! The supervisor's structured event log: every fault, detection,
//! response, and recovery as a typed, timestamped record.

use crate::fault::Fault;
use std::fmt;

/// A detected constraint violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// An inlet redline breach as *observed* (sensor bias included), °C
    /// over the redline.
    Redline {
        /// Observed worst violation, °C.
        observed_c: f64,
    },
    /// Total power (IT + cooling) over the Eq.-18 budget.
    PowerCap {
        /// Total draw, kW.
        total_kw: f64,
        /// The budget, kW.
        budget_kw: f64,
    },
    /// The active plan no longer matches the floor (dead nodes still
    /// carrying desired rates, a surge since the last replan, …).
    StalePlan,
}

/// A degradation-ladder response.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Stage-3 replan on the surviving cores (P-states fixed — the paper's
    /// Section V.B rule for the rate-only subproblem).
    Replan,
    /// Surviving CRAC outlet set-points dropped.
    OutletDrop {
        /// Drop applied, °C.
        by_c: f64,
    },
    /// Emergency P-state throttle of the hottest nodes.
    Throttle {
        /// P-state deepening steps applied.
        steps: usize,
    },
    /// The lowest-reward task type was shed (its desired rates zeroed).
    ShedTaskType {
        /// Task type index.
        task_type: usize,
        /// Its per-task reward.
        reward: f64,
    },
}

/// One typed log entry.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A scripted fault was injected.
    FaultInjected(Fault),
    /// A node shut itself down: its true inlet exceeded the redline by
    /// more than the trip margin (happens with or without a supervisor).
    NodeTripped {
        /// Node index.
        node: usize,
        /// True inlet at the trip, °C.
        inlet_c: f64,
    },
    /// The room has no thermal steady state (every CRAC failed): all
    /// surviving nodes trip.
    NoSteadyState,
    /// The supervisor detected a violation.
    ViolationDetected(Violation),
    /// The supervisor took a degradation-ladder action.
    ActionTaken(Action),
    /// A replan attempt failed.
    ReplanFailed {
        /// 1-based attempt number within the current response.
        attempt: u32,
        /// The solver error, rendered.
        error: String,
    },
    /// The ladder could not restore health; the supervisor backs off and
    /// retries after the given number of epochs.
    Backoff {
        /// Epochs until the next response attempt.
        epochs: u32,
    },
    /// Health restored: the observed floor is back inside every
    /// constraint.
    Recovered {
        /// Observed redline margin after recovery (≤ 0), °C.
        margin_c: f64,
    },
}

/// A timestamped [`EventKind`].
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulation time, seconds.
    pub at_s: f64,
    /// What happened.
    pub kind: EventKind,
}

/// The run's full, time-ordered event history.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// Append an event.
    pub fn record(&mut self, at_s: f64, kind: EventKind) {
        self.events.push(Event { at_s, kind });
    }

    /// All events in record order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of successful replans.
    pub fn replans(&self) -> usize {
        self.count(|k| matches!(k, EventKind::ActionTaken(Action::Replan)))
    }

    /// Number of task types shed.
    pub fn sheds(&self) -> usize {
        self.count(|k| matches!(k, EventKind::ActionTaken(Action::ShedTaskType { .. })))
    }

    /// Number of node thermal trips.
    pub fn trips(&self) -> usize {
        self.count(|k| matches!(k, EventKind::NodeTripped { .. }))
    }

    /// Number of events matching a predicate.
    pub fn count(&self, pred: impl Fn(&EventKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }
}

impl fmt::Display for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "[{:8.2}s] {}", e.at_s, e.kind)?;
        }
        Ok(())
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::FaultInjected(fault) => write!(f, "fault injected: {fault:?}"),
            EventKind::NodeTripped { node, inlet_c } => {
                write!(f, "node {node} TRIPPED at inlet {inlet_c:.2} °C")
            }
            EventKind::NoSteadyState => {
                write!(f, "no thermal steady state (all CRACs down): floor lost")
            }
            EventKind::ViolationDetected(v) => match v {
                Violation::Redline { observed_c } => {
                    write!(f, "violation: observed redline breach {observed_c:+.2} °C")
                }
                Violation::PowerCap { total_kw, budget_kw } => {
                    write!(f, "violation: power {total_kw:.1} kW over budget {budget_kw:.1} kW")
                }
                Violation::StalePlan => write!(f, "violation: plan is stale"),
            },
            EventKind::ActionTaken(a) => match a {
                Action::Replan => write!(f, "action: Stage-3 replan on surviving cores"),
                Action::OutletDrop { by_c } => {
                    write!(f, "action: CRAC outlet set-points dropped {by_c:.1} °C")
                }
                Action::Throttle { steps } => {
                    write!(f, "action: emergency throttle ({steps} P-state steps)")
                }
                Action::ShedTaskType { task_type, reward } => {
                    write!(f, "action: shed task type {task_type} (reward {reward:.2})")
                }
            },
            EventKind::ReplanFailed { attempt, error } => {
                write!(f, "replan attempt {attempt} failed: {error}")
            }
            EventKind::Backoff { epochs } => {
                write!(f, "ladder exhausted: backing off {epochs} epoch(s)")
            }
            EventKind::Recovered { margin_c } => {
                write!(f, "recovered: observed redline margin {margin_c:+.2} °C")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_helpers() {
        let mut log = EventLog::default();
        log.record(0.0, EventKind::ActionTaken(Action::Replan));
        log.record(1.0, EventKind::ActionTaken(Action::Throttle { steps: 3 }));
        log.record(
            2.0,
            EventKind::ActionTaken(Action::ShedTaskType {
                task_type: 4,
                reward: 1.5,
            }),
        );
        log.record(
            2.0,
            EventKind::NodeTripped {
                node: 0,
                inlet_c: 29.0,
            },
        );
        assert_eq!(log.replans(), 1);
        assert_eq!(log.sheds(), 1);
        assert_eq!(log.trips(), 1);
        assert_eq!(log.events().len(), 4);
        let text = log.to_string();
        assert!(text.contains("TRIPPED"));
        assert!(text.contains("shed task type 4"));
    }
}
