//! The supervisor's structured event log: every fault, detection,
//! response, and recovery as a typed, timestamped record.

use crate::fault::Fault;
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A detected constraint violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// An inlet redline breach as *observed* (sensor bias included), °C
    /// over the redline.
    Redline {
        /// Observed worst violation, °C.
        observed_c: f64,
    },
    /// Total power (IT + cooling) over the Eq.-18 budget.
    PowerCap {
        /// Total draw, kW.
        total_kw: f64,
        /// The budget, kW.
        budget_kw: f64,
    },
    /// The active plan no longer matches the floor (dead nodes still
    /// carrying desired rates, a surge since the last replan, …).
    StalePlan,
    /// A die's chip-level peak temperature exceeded its TSPD limit
    /// (requires a chip model attached to the supervisor).
    ChipHotspot {
        /// Hottest observed die temperature, °C.
        observed_c: f64,
    },
    /// Observed demand drifted from the multiplier the active plan was
    /// solved for by more than the configured threshold.
    DemandDrift {
        /// Current arrival-rate multiplier.
        multiplier: f64,
        /// Multiplier the active plan was solved at.
        planned: f64,
    },
}

/// A degradation-ladder response.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Stage-3 replan on the surviving cores (P-states fixed — the paper's
    /// Section V.B rule for the rate-only subproblem).
    Replan,
    /// Surviving CRAC outlet set-points dropped.
    OutletDrop {
        /// Drop applied, °C.
        by_c: f64,
    },
    /// Emergency P-state throttle of the hottest nodes.
    Throttle {
        /// P-state deepening steps applied.
        steps: usize,
    },
    /// The lowest-reward task type was shed (its desired rates zeroed).
    ShedTaskType {
        /// Task type index.
        task_type: usize,
        /// Its per-task reward.
        reward: f64,
    },
    /// Chip-level task migration: P-states permuted between cores of the
    /// same node to spread heat across the die. Node power totals (and
    /// therefore every room-level constraint) are unchanged.
    Migrate {
        /// Pairwise core swaps applied.
        swaps: usize,
    },
    /// A full three-stage re-solve at the drifted demand (new outlets,
    /// P-states, and rates) — the scenario engine's answer to sustained
    /// demand drift, heavier than the Stage-3-only [`Action::Replan`].
    Stage1Replan,
}

/// One typed log entry.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A scripted fault was injected.
    FaultInjected(Fault),
    /// A node shut itself down: its true inlet exceeded the redline by
    /// more than the trip margin (happens with or without a supervisor).
    NodeTripped {
        /// Node index.
        node: usize,
        /// True inlet at the trip, °C.
        inlet_c: f64,
    },
    /// The room has no thermal steady state (every CRAC failed): all
    /// surviving nodes trip.
    NoSteadyState,
    /// The supervisor detected a violation.
    ViolationDetected(Violation),
    /// The supervisor took a degradation-ladder action.
    ActionTaken(Action),
    /// A replan attempt failed.
    ReplanFailed {
        /// 1-based attempt number within the current response.
        attempt: u32,
        /// The solver error, rendered.
        error: String,
    },
    /// The ladder could not restore health; the supervisor backs off and
    /// retries after the given number of epochs.
    Backoff {
        /// Epochs until the next response attempt.
        epochs: u32,
    },
    /// Health restored: the observed floor is back inside every
    /// constraint.
    Recovered {
        /// Observed redline margin after recovery (≤ 0), °C.
        margin_c: f64,
    },
}

/// A timestamped [`EventKind`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Simulation time, seconds.
    pub at_s: f64,
    /// What happened.
    pub kind: EventKind,
}

/// Default event capacity: far above what a horizon-bounded run
/// produces, small enough that a daemon holding one log per live run
/// stays bounded (~a few MB at worst-case event sizes).
pub const DEFAULT_LOG_CAPACITY: usize = 16_384;

/// The run's time-ordered event history — a **bounded ring**: once
/// `capacity` events are held, recording a new one evicts the oldest
/// and bumps [`dropped`](EventLog::dropped). A batch run over a fixed
/// horizon never comes near the default capacity; a long-running
/// daemon must not grow without bound, and the eviction rule is
/// deterministic, so crash-replayed logs stay bit-identical.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EventLog {
    events: Vec<Event>,
    capacity: usize,
    dropped: u64,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog {
            events: Vec::new(),
            capacity: DEFAULT_LOG_CAPACITY,
            dropped: 0,
        }
    }
}

impl EventLog {
    /// Record an event, keeping the log time-ordered. Live appends carry
    /// non-decreasing timestamps, so this degenerates to a push; when
    /// entries are coalesced out of order — journal replay merging
    /// records from different epochs — the entry is inserted at its
    /// timestamp position (after existing entries with the same time, so
    /// same-instant causality is preserved).
    pub fn record(&mut self, at_s: f64, kind: EventKind) {
        // The log is the supervisor's single chokepoint for detections,
        // ladder actions, trips, and recoveries — counting here gives the
        // obs layer a complete degradation-transition census for free.
        if thermaware_obs::enabled() {
            let counter = match &kind {
                EventKind::FaultInjected(_) => "runtime.faults_injected",
                EventKind::NodeTripped { .. } => "runtime.node_trips",
                EventKind::NoSteadyState => "runtime.no_steady_state",
                EventKind::ViolationDetected(Violation::Redline { .. }) => {
                    "runtime.violation.redline"
                }
                EventKind::ViolationDetected(Violation::PowerCap { .. }) => {
                    "runtime.violation.power_cap"
                }
                EventKind::ViolationDetected(Violation::StalePlan) => {
                    "runtime.violation.stale_plan"
                }
                EventKind::ViolationDetected(Violation::ChipHotspot { .. }) => {
                    "runtime.violation.chip_hotspot"
                }
                EventKind::ViolationDetected(Violation::DemandDrift { .. }) => {
                    "runtime.violation.demand_drift"
                }
                EventKind::ActionTaken(Action::Replan) => "runtime.action.replan",
                EventKind::ActionTaken(Action::OutletDrop { .. }) => "runtime.action.outlet_drop",
                EventKind::ActionTaken(Action::Throttle { .. }) => "runtime.action.throttle",
                EventKind::ActionTaken(Action::ShedTaskType { .. }) => "runtime.action.shed",
                EventKind::ActionTaken(Action::Migrate { .. }) => "runtime.action.migrate",
                EventKind::ActionTaken(Action::Stage1Replan) => "runtime.action.stage1_replan",
                EventKind::ReplanFailed { .. } => "runtime.replan_failed",
                EventKind::Backoff { .. } => "runtime.backoffs",
                EventKind::Recovered { .. } => "runtime.recoveries",
            };
            thermaware_obs::counter_add(counter, 1);
            if let EventKind::ActionTaken(Action::Throttle { steps }) = &kind {
                thermaware_obs::counter_add("runtime.throttle_steps", *steps as u64);
            }
            if let EventKind::ActionTaken(Action::Migrate { swaps }) = &kind {
                thermaware_obs::counter_add("runtime.migrate_swaps", *swaps as u64);
            }
        }
        let evicted = self.insert_ordered(Event { at_s, kind });
        if evicted > 0 {
            thermaware_obs::counter_add("runtime.log_dropped", evicted);
        }
    }

    /// Ordered insert + ring eviction, shared by [`record`](Self::record)
    /// (which also counts evictions into obs) and deserialization (which
    /// must not — replaying a persisted log is not a live drop). Returns
    /// the number of events evicted.
    fn insert_ordered(&mut self, event: Event) -> u64 {
        let idx = self.events.partition_point(|e| e.at_s <= event.at_s);
        if idx == self.events.len() {
            self.events.push(event);
        } else {
            self.events.insert(idx, event);
        }
        let cap = self.capacity.max(1);
        let mut evicted = 0;
        while self.events.len() > cap {
            self.events.remove(0);
            self.dropped += 1;
            evicted += 1;
        }
        evicted
    }

    /// A log that keeps at most `capacity` events (clamped to ≥ 1),
    /// evicting the oldest beyond that.
    pub fn with_capacity(capacity: usize) -> EventLog {
        EventLog {
            events: Vec::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// The ring bound: how many events are retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted by the ring bound over the log's whole life.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// All events in time order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Entries from position `from` on — the "what happened since the
    /// last journal record" view the persist layer writes ahead.
    pub fn events_since(&self, from: usize) -> &[Event] {
        &self.events[from.min(self.events.len())..]
    }

    /// Is every timestamp non-decreasing? (Always true by construction;
    /// used as a recovery invariant check on deserialized logs.)
    pub fn is_time_ordered(&self) -> bool {
        self.events.windows(2).all(|w| w[0].at_s <= w[1].at_s)
    }

    /// Number of successful replans.
    pub fn replans(&self) -> usize {
        self.count(|k| matches!(k, EventKind::ActionTaken(Action::Replan)))
    }

    /// Number of task types shed.
    pub fn sheds(&self) -> usize {
        self.count(|k| matches!(k, EventKind::ActionTaken(Action::ShedTaskType { .. })))
    }

    /// Number of node thermal trips.
    pub fn trips(&self) -> usize {
        self.count(|k| matches!(k, EventKind::NodeTripped { .. }))
    }

    /// Number of events matching a predicate.
    pub fn count(&self, pred: impl Fn(&EventKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }
}

impl fmt::Display for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "[{:8.2}s] {}", e.at_s, e.kind)?;
        }
        Ok(())
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::FaultInjected(fault) => write!(f, "fault injected: {fault:?}"),
            EventKind::NodeTripped { node, inlet_c } => {
                write!(f, "node {node} TRIPPED at inlet {inlet_c:.2} °C")
            }
            EventKind::NoSteadyState => {
                write!(f, "no thermal steady state (all CRACs down): floor lost")
            }
            EventKind::ViolationDetected(v) => match v {
                Violation::Redline { observed_c } => {
                    write!(f, "violation: observed redline breach {observed_c:+.2} °C")
                }
                Violation::PowerCap { total_kw, budget_kw } => {
                    write!(f, "violation: power {total_kw:.1} kW over budget {budget_kw:.1} kW")
                }
                Violation::StalePlan => write!(f, "violation: plan is stale"),
                Violation::ChipHotspot { observed_c } => {
                    write!(f, "violation: chip hotspot at {observed_c:.2} °C over TSPD")
                }
                Violation::DemandDrift { multiplier, planned } => {
                    write!(
                        f,
                        "violation: demand at {multiplier:.2}x drifted from planned {planned:.2}x"
                    )
                }
            },
            EventKind::ActionTaken(a) => match a {
                Action::Replan => write!(f, "action: Stage-3 replan on surviving cores"),
                Action::OutletDrop { by_c } => {
                    write!(f, "action: CRAC outlet set-points dropped {by_c:.1} °C")
                }
                Action::Throttle { steps } => {
                    write!(f, "action: emergency throttle ({steps} P-state steps)")
                }
                Action::ShedTaskType { task_type, reward } => {
                    write!(f, "action: shed task type {task_type} (reward {reward:.2})")
                }
                Action::Migrate { swaps } => {
                    write!(f, "action: chip-level migration ({swaps} core swaps)")
                }
                Action::Stage1Replan => {
                    write!(f, "action: full three-stage replan at drifted demand")
                }
            },
            EventKind::ReplanFailed { attempt, error } => {
                write!(f, "replan attempt {attempt} failed: {error}")
            }
            EventKind::Backoff { epochs } => {
                write!(f, "ladder exhausted: backing off {epochs} epoch(s)")
            }
            EventKind::Recovered { margin_c } => {
                write!(f, "recovered: observed redline margin {margin_c:+.2} °C")
            }
        }
    }
}

// ---- Serde -----------------------------------------------------------------
//
// The vendored serde derive cannot express payload-carrying enums, so
// `Violation`, `Action`, and `EventKind` implement the trait contract by
// hand as tagged objects `{"kind": ..., <payload>}`. `EventLog`
// deserialization rebuilds through the ordered insert, so a log read
// back from disk is time-ordered even if the stored array was not.

/// Observed measurements (temperatures, powers) can legitimately be
/// non-finite — a floor with no steady state observes `+inf` — but JSON
/// has no number for those and the serializer would write `null`,
/// making the event (and every snapshot whose log contains it)
/// unreadable. Non-finite measurements are encoded as the strings
/// `"inf"` / `"-inf"` / `"NaN"`; finite values stay plain numbers.
fn measurement_to_value(x: f64) -> Value {
    if x.is_finite() {
        x.to_value()
    } else {
        Value::String(format!("{x}"))
    }
}

fn measurement_from_value(v: &Value, what: &str) -> Result<f64, serde::Error> {
    match v {
        Value::Number(x) => Ok(*x),
        Value::String(s) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "NaN" => Ok(f64::NAN),
            other => Err(serde::Error::custom(format!(
                "{what}: invalid measurement '{other}'"
            ))),
        },
        _ => Err(serde::Error::custom(format!(
            "{what}: expected a measurement"
        ))),
    }
}

fn raw_field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, serde::Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| serde::Error::custom(format!("missing field '{name}'")))
}

impl Serialize for Violation {
    fn to_value(&self) -> Value {
        let entries = match self {
            Violation::Redline { observed_c } => vec![
                ("kind".to_string(), "redline".to_value()),
                ("observed_c".to_string(), measurement_to_value(*observed_c)),
            ],
            Violation::PowerCap { total_kw, budget_kw } => vec![
                ("kind".to_string(), "power_cap".to_value()),
                ("total_kw".to_string(), measurement_to_value(*total_kw)),
                ("budget_kw".to_string(), budget_kw.to_value()),
            ],
            Violation::StalePlan => vec![("kind".to_string(), "stale_plan".to_value())],
            Violation::ChipHotspot { observed_c } => vec![
                ("kind".to_string(), "chip_hotspot".to_value()),
                ("observed_c".to_string(), measurement_to_value(*observed_c)),
            ],
            Violation::DemandDrift { multiplier, planned } => vec![
                ("kind".to_string(), "demand_drift".to_value()),
                ("multiplier".to_string(), measurement_to_value(*multiplier)),
                ("planned".to_string(), planned.to_value()),
            ],
        };
        Value::Object(entries)
    }
}

impl Deserialize for Violation {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("Violation: expected object"))?;
        let kind: String = serde::field(entries, "kind")?;
        match kind.as_str() {
            "redline" => Ok(Violation::Redline {
                observed_c: measurement_from_value(raw_field(entries, "observed_c")?, "Violation")?,
            }),
            "power_cap" => Ok(Violation::PowerCap {
                total_kw: measurement_from_value(raw_field(entries, "total_kw")?, "Violation")?,
                budget_kw: serde::field(entries, "budget_kw")?,
            }),
            "stale_plan" => Ok(Violation::StalePlan),
            "chip_hotspot" => Ok(Violation::ChipHotspot {
                observed_c: measurement_from_value(raw_field(entries, "observed_c")?, "Violation")?,
            }),
            "demand_drift" => Ok(Violation::DemandDrift {
                multiplier: measurement_from_value(raw_field(entries, "multiplier")?, "Violation")?,
                planned: serde::field(entries, "planned")?,
            }),
            other => Err(serde::Error::custom(format!(
                "Violation: unknown kind '{other}'"
            ))),
        }
    }
}

impl Serialize for Action {
    fn to_value(&self) -> Value {
        let entries = match self {
            Action::Replan => vec![("kind".to_string(), "replan".to_value())],
            Action::OutletDrop { by_c } => vec![
                ("kind".to_string(), "outlet_drop".to_value()),
                ("by_c".to_string(), by_c.to_value()),
            ],
            Action::Throttle { steps } => vec![
                ("kind".to_string(), "throttle".to_value()),
                ("steps".to_string(), steps.to_value()),
            ],
            Action::ShedTaskType { task_type, reward } => vec![
                ("kind".to_string(), "shed_task_type".to_value()),
                ("task_type".to_string(), task_type.to_value()),
                ("reward".to_string(), reward.to_value()),
            ],
            Action::Migrate { swaps } => vec![
                ("kind".to_string(), "migrate".to_value()),
                ("swaps".to_string(), swaps.to_value()),
            ],
            Action::Stage1Replan => vec![("kind".to_string(), "stage1_replan".to_value())],
        };
        Value::Object(entries)
    }
}

impl Deserialize for Action {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("Action: expected object"))?;
        let kind: String = serde::field(entries, "kind")?;
        match kind.as_str() {
            "replan" => Ok(Action::Replan),
            "outlet_drop" => Ok(Action::OutletDrop {
                by_c: serde::field(entries, "by_c")?,
            }),
            "throttle" => Ok(Action::Throttle {
                steps: serde::field(entries, "steps")?,
            }),
            "shed_task_type" => Ok(Action::ShedTaskType {
                task_type: serde::field(entries, "task_type")?,
                reward: serde::field(entries, "reward")?,
            }),
            "migrate" => Ok(Action::Migrate {
                swaps: serde::field(entries, "swaps")?,
            }),
            "stage1_replan" => Ok(Action::Stage1Replan),
            other => Err(serde::Error::custom(format!(
                "Action: unknown kind '{other}'"
            ))),
        }
    }
}

impl Serialize for EventKind {
    fn to_value(&self) -> Value {
        let entries = match self {
            EventKind::FaultInjected(fault) => vec![
                ("kind".to_string(), "fault_injected".to_value()),
                ("fault".to_string(), fault.to_value()),
            ],
            EventKind::NodeTripped { node, inlet_c } => vec![
                ("kind".to_string(), "node_tripped".to_value()),
                ("node".to_string(), node.to_value()),
                ("inlet_c".to_string(), measurement_to_value(*inlet_c)),
            ],
            EventKind::NoSteadyState => vec![("kind".to_string(), "no_steady_state".to_value())],
            EventKind::ViolationDetected(v) => vec![
                ("kind".to_string(), "violation_detected".to_value()),
                ("violation".to_string(), v.to_value()),
            ],
            EventKind::ActionTaken(a) => vec![
                ("kind".to_string(), "action_taken".to_value()),
                ("action".to_string(), a.to_value()),
            ],
            EventKind::ReplanFailed { attempt, error } => vec![
                ("kind".to_string(), "replan_failed".to_value()),
                ("attempt".to_string(), attempt.to_value()),
                ("error".to_string(), error.to_value()),
            ],
            EventKind::Backoff { epochs } => vec![
                ("kind".to_string(), "backoff".to_value()),
                ("epochs".to_string(), epochs.to_value()),
            ],
            EventKind::Recovered { margin_c } => vec![
                ("kind".to_string(), "recovered".to_value()),
                ("margin_c".to_string(), measurement_to_value(*margin_c)),
            ],
        };
        Value::Object(entries)
    }
}

impl Deserialize for EventKind {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("EventKind: expected object"))?;
        let kind: String = serde::field(entries, "kind")?;
        match kind.as_str() {
            "fault_injected" => Ok(EventKind::FaultInjected(serde::field(entries, "fault")?)),
            "node_tripped" => Ok(EventKind::NodeTripped {
                node: serde::field(entries, "node")?,
                inlet_c: measurement_from_value(raw_field(entries, "inlet_c")?, "EventKind")?,
            }),
            "no_steady_state" => Ok(EventKind::NoSteadyState),
            "violation_detected" => Ok(EventKind::ViolationDetected(serde::field(
                entries,
                "violation",
            )?)),
            "action_taken" => Ok(EventKind::ActionTaken(serde::field(entries, "action")?)),
            "replan_failed" => Ok(EventKind::ReplanFailed {
                attempt: serde::field(entries, "attempt")?,
                error: serde::field(entries, "error")?,
            }),
            "backoff" => Ok(EventKind::Backoff {
                epochs: serde::field(entries, "epochs")?,
            }),
            "recovered" => Ok(EventKind::Recovered {
                margin_c: measurement_from_value(raw_field(entries, "margin_c")?, "EventKind")?,
            }),
            other => Err(serde::Error::custom(format!(
                "EventKind: unknown kind '{other}'"
            ))),
        }
    }
}

impl Deserialize for EventLog {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("EventLog: expected object"))?;
        let events: Vec<Event> = serde::field(entries, "events")?;
        // `capacity`/`dropped` are absent from logs written before the
        // ring bound existed; default them rather than rejecting.
        let capacity: usize = match serde::field(entries, "capacity") {
            Ok(c) => c,
            Err(_) => DEFAULT_LOG_CAPACITY,
        };
        let dropped: u64 = serde::field(entries, "dropped").unwrap_or(0);
        let mut log = EventLog::with_capacity(capacity);
        // Rebuild through the ordered insert (a stored array may be out
        // of order) but *not* through `record`: replaying a persisted
        // log must not re-count its events into the obs registry.
        for e in events {
            if !e.at_s.is_finite() {
                return Err(serde::Error::custom("EventLog: non-finite timestamp"));
            }
            log.insert_ordered(e);
        }
        // Eviction during the rebuild (an over-capacity stored array)
        // would inflate `dropped`; the persisted count is authoritative.
        log.dropped = dropped;
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A meltdown floor observes `+inf` (no steady state exists); the
    /// events recording that must survive JSON — a `null` here once made
    /// every snapshot containing the log unreadable.
    #[test]
    fn non_finite_measurements_round_trip() {
        let mut log = EventLog::default();
        log.record(
            10.0,
            EventKind::ViolationDetected(Violation::Redline {
                observed_c: f64::INFINITY,
            }),
        );
        log.record(
            10.0,
            EventKind::ViolationDetected(Violation::PowerCap {
                total_kw: f64::INFINITY,
                budget_kw: 19.4,
            }),
        );
        log.record(
            11.0,
            EventKind::NodeTripped {
                node: 2,
                inlet_c: f64::INFINITY,
            },
        );
        log.record(
            12.0,
            EventKind::Recovered {
                margin_c: f64::NEG_INFINITY,
            },
        );
        let json = serde_json::to_string(&log).expect("encode");
        assert!(json.contains("\"inf\""), "non-finite encoded as a string");
        let back: EventLog = serde_json::from_str(&json).expect("decode");
        assert_eq!(back, log);
        // Byte-stable re-encode: the journal's state CRC stays defined.
        assert_eq!(serde_json::to_string(&back).expect("re-encode"), json);
    }

    #[test]
    fn counting_helpers() {
        let mut log = EventLog::default();
        log.record(0.0, EventKind::ActionTaken(Action::Replan));
        log.record(1.0, EventKind::ActionTaken(Action::Throttle { steps: 3 }));
        log.record(
            2.0,
            EventKind::ActionTaken(Action::ShedTaskType {
                task_type: 4,
                reward: 1.5,
            }),
        );
        log.record(
            2.0,
            EventKind::NodeTripped {
                node: 0,
                inlet_c: 29.0,
            },
        );
        assert_eq!(log.replans(), 1);
        assert_eq!(log.sheds(), 1);
        assert_eq!(log.trips(), 1);
        assert_eq!(log.events().len(), 4);
        let text = log.to_string();
        assert!(text.contains("TRIPPED"));
        assert!(text.contains("shed task type 4"));
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut log = EventLog::with_capacity(3);
        for i in 0..5 {
            log.record(i as f64, EventKind::Backoff { epochs: i });
        }
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.capacity(), 3);
        // Oldest evicted first: the survivors are the three newest.
        let kept: Vec<f64> = log.events().iter().map(|e| e.at_s).collect();
        assert_eq!(kept, vec![2.0, 3.0, 4.0]);
        assert!(log.is_time_ordered());
    }

    #[test]
    fn ring_state_round_trips_byte_identically() {
        let mut log = EventLog::with_capacity(2);
        for i in 0..4 {
            log.record(i as f64, EventKind::ActionTaken(Action::Replan));
        }
        assert_eq!(log.dropped(), 2);
        let json = serde_json::to_string(&log).expect("encode");
        let back: EventLog = serde_json::from_str(&json).expect("decode");
        assert_eq!(back, log);
        assert_eq!(back.capacity(), 2);
        assert_eq!(back.dropped(), 2);
        // Byte-stable re-encode: snapshot/journal CRCs over states that
        // embed a log stay well-defined across a save/load cycle.
        assert_eq!(serde_json::to_string(&back).expect("re-encode"), json);
    }

    /// Logs persisted before the ring bound existed have no
    /// `capacity`/`dropped` fields; they must still load, with defaults.
    #[test]
    fn legacy_log_without_ring_fields_parses() {
        let mut log = EventLog::default();
        log.record(1.0, EventKind::NoSteadyState);
        let full = serde_json::to_string(&log).expect("encode");
        let legacy = full
            .replace(&format!(",\"capacity\":{DEFAULT_LOG_CAPACITY}"), "")
            .replace(",\"dropped\":0", "");
        assert!(!legacy.contains("capacity"), "stripped: {legacy}");
        let back: EventLog = serde_json::from_str(&legacy).expect("decode");
        assert_eq!(back, log);
        assert_eq!(back.capacity(), DEFAULT_LOG_CAPACITY);
        assert_eq!(back.dropped(), 0);
    }
}
