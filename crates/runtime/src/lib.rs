//! **thermaware-runtime** — a fault-tolerant runtime supervisor over the
//! paper's two-step technique.
//!
//! The paper (Section V) plans once at steady state and trusts the
//! dynamic scheduler from then on. A real power-capped floor sees CRAC
//! failures, node deaths, sensor drift, and demand surges mid-flight.
//! This crate closes the loop: [`Supervisor`] advances the discrete-event
//! simulation in epochs, injects faults from a seeded [`FaultScript`],
//! detects violations (inlet redlines, the Eq.-18 power cap, stale
//! plans), and responds through a staged degradation ladder — Stage-3
//! replan on surviving cores, CRAC set-point drops, emergency P-state
//! throttling, load shedding — with bounded retry/backoff and a typed
//! [`EventLog`] of everything it saw and did.
//!
//! Every run terminates with a typed [`Outcome`]; no path through the
//! supervisor panics (`clippy::unwrap_used` is denied crate-wide, and the
//! solver paths it calls return [`thermaware_core::SolveError`]).
//!
//! ```
//! use thermaware_core::{solve_three_stage, ThreeStageOptions};
//! use thermaware_datacenter::ScenarioParams;
//! use thermaware_runtime::{FaultScript, Supervisor, SupervisorConfig};
//!
//! let dc = ScenarioParams { n_nodes: 8, n_crac: 2, ..ScenarioParams::small_test() }
//!     .build(1)
//!     .expect("scenario");
//! let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("plan");
//!
//! // Kill a node 3 s in; surge demand 1.5x at 6 s.
//! let script = FaultScript::new().node_death(3.0, 0).arrival_surge(6.0, 1.5);
//! let cfg = SupervisorConfig { horizon_s: 12.0, ..SupervisorConfig::default() };
//! let report = Supervisor::new(&dc, cfg).run(&plan, &script);
//!
//! println!("{:?}: reward {:.1}/s", report.outcome, report.sim.reward_rate);
//! println!("{}", report.log);
//! ```

pub mod degrade;
pub mod event;
pub mod fault;
pub mod persist;
pub mod supervisor;

pub use degrade::{
    cheapest_throttle_step, migrate_to_tspd, throttle_to_budget, MigrationPlan, ThrottlePlan,
};
pub use event::{Action, Event, EventKind, EventLog, Violation};
pub use fault::{Fault, FaultEvent, FaultScript};
pub use persist::{
    resume, run_checkpointed, CheckpointConfig, Checkpointer, PersistError, RecoveredRun,
    RecoveryInfo, RunHeader,
};
pub use supervisor::{
    LiveRun, Outcome, Supervisor, SupervisorConfig, SupervisorReport, SupervisorState, WorldView,
};
