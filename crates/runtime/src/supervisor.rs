//! The fault-tolerant runtime supervisor.
//!
//! The supervisor advances the discrete-event simulation in fixed epochs.
//! At every epoch boundary it (1) injects scripted faults, (2) — when
//! supervision is enabled — assesses the *observed* floor (sensor bias
//! included) and responds to violations through a staged degradation
//! ladder, and (3) applies the environment's own physics: any node whose
//! **true** inlet exceeds the redline by more than the trip margin shuts
//! itself down, supervisor or not. Step 2 running before step 3 models
//! thermal inertia: the control loop is faster than the air, so a
//! supervisor that reacts at the same boundary a fault lands on can
//! prevent the trips an unsupervised floor suffers.
//!
//! The degradation ladder, in escalation order:
//!
//! 1. **Stage-3 replan** on the surviving cores with P-states fixed (the
//!    paper's Section V.B rate-only subproblem) — repairs stale plans
//!    (dead nodes, demand surges) without touching power or heat.
//! 2. **CRAC outlet set-point drop** — buys thermal margin at a cooling
//!    power cost; bounded by each unit's minimum outlet.
//! 3. **Emergency P-state throttle** of the hottest nodes — sheds heat
//!    and IT power; bounded by every core reaching its off state.
//! 4. **Load shedding** of the lowest-reward task types — the last
//!    resort when replanning itself keeps failing; bounded by the number
//!    of task types.
//!
//! Within one response the *physical* rungs run first (a rate-only
//! replan cannot clear a thermal or power breach, and dropping outlets
//! or throttling stales the plan anyway); the replan then runs exactly
//! once at the end, so the scheduler's admission clocks are not reset
//! mid-ladder.
//!
//! Replans retry up to a configured attempt budget; if the ladder cannot
//! restore health the supervisor *backs off* exponentially (in epochs)
//! before trying again, running degraded in between. Every detection,
//! action, failure, and recovery is recorded in the typed [`EventLog`].

use crate::event::{Action, EventKind, EventLog, Violation};
use crate::fault::{Fault, FaultScript};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize, Value};
use thermaware_core::stage3::{solve_stage3_warm, Stage3Basis, Stage3Solution};
use thermaware_core::{solve_three_stage, ThreeStageOptions, ThreeStageSolution};
use thermaware_datacenter::DataCenter;
use thermaware_scheduler::{EpochSim, EpochSimState, SimulationResult};
use thermaware_thermal::ChipModel;
use thermaware_workload::{Curve, TaskArrival};

/// Absolute bound on ladder iterations within one response — a backstop
/// far above what the per-rung bounds allow, guaranteeing termination.
const MAX_LADDER_ITERS: usize = 10_000;

/// Supervisor tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Epoch length, seconds.
    pub epoch_s: f64,
    /// Simulated horizon, seconds.
    pub horizon_s: f64,
    /// Replan attempts per response before load shedding is considered.
    pub max_replan_attempts: u32,
    /// CRAC outlet drop per ladder application, °C.
    pub outlet_drop_c: f64,
    /// P-state deepening steps per throttle application.
    pub throttle_steps: usize,
    /// True inlet excess over the redline at which a node trips, °C.
    pub trip_margin_c: f64,
    /// Redline violation tolerance, °C.
    pub redline_tol_c: f64,
    /// Power budget tolerance, kW.
    pub power_tol_kw: f64,
    /// Enable detection/response. `false` gives the *unsupervised*
    /// baseline: same faults, same physics (trips included), stale plan.
    pub supervise: bool,
    /// Seed of the arrival stream (identical across supervised and
    /// unsupervised runs of the same config/seed).
    pub seed: u64,
    /// Scenario demand curve: each epoch the planned arrival-rate
    /// multiplier follows `demand.rate_at(t)` (times any scripted surge
    /// fault), and the supervisor triggers a full three-stage re-solve
    /// when the live multiplier drifts from the one the active plan was
    /// solved at by more than [`drift_threshold`]. `None` (the default)
    /// reproduces the static-demand supervisor bit for bit.
    ///
    /// [`drift_threshold`]: SupervisorConfig::drift_threshold
    pub demand: Option<Curve>,
    /// Relative demand drift that triggers a Stage-1 replan (only with
    /// [`demand`](SupervisorConfig::demand) set): replan when
    /// `|m − planned| > drift_threshold · planned`.
    pub drift_threshold: f64,
    /// ψ (percent) used by drift-triggered three-stage re-solves.
    pub psi_percent: f64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            epoch_s: 1.0,
            horizon_s: 30.0,
            max_replan_attempts: 3,
            outlet_drop_c: 2.0,
            throttle_steps: 8,
            trip_margin_c: 3.0,
            redline_tol_c: 1e-6,
            power_tol_kw: 1e-6,
            supervise: true,
            seed: 0,
            demand: None,
            drift_threshold: 0.25,
            psi_percent: 50.0,
        }
    }
}

// The vendored serde routes every integer through `f64`, which silently
// rounds seeds above 2^53 — so `seed` travels as a 16-digit hex string.

impl Serialize for SupervisorConfig {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("epoch_s".to_string(), self.epoch_s.to_value()),
            ("horizon_s".to_string(), self.horizon_s.to_value()),
            (
                "max_replan_attempts".to_string(),
                self.max_replan_attempts.to_value(),
            ),
            ("outlet_drop_c".to_string(), self.outlet_drop_c.to_value()),
            ("throttle_steps".to_string(), self.throttle_steps.to_value()),
            ("trip_margin_c".to_string(), self.trip_margin_c.to_value()),
            ("redline_tol_c".to_string(), self.redline_tol_c.to_value()),
            ("power_tol_kw".to_string(), self.power_tol_kw.to_value()),
            ("supervise".to_string(), self.supervise.to_value()),
            ("seed".to_string(), format!("{:016x}", self.seed).to_value()),
            (
                "demand".to_string(),
                match &self.demand {
                    Some(curve) => curve.to_value(),
                    None => Value::Null,
                },
            ),
            (
                "drift_threshold".to_string(),
                self.drift_threshold.to_value(),
            ),
            ("psi_percent".to_string(), self.psi_percent.to_value()),
        ])
    }
}

impl Deserialize for SupervisorConfig {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("SupervisorConfig: expected object"))?;
        let seed_hex: String = serde::field(entries, "seed")?;
        let seed = u64::from_str_radix(&seed_hex, 16).map_err(|e| {
            serde::Error::custom(format!("SupervisorConfig: bad seed '{seed_hex}': {e}"))
        })?;
        // The scenario fields are absent from configs persisted before
        // the scenario engine existed; default them rather than
        // rejecting (the defaults reproduce the static supervisor).
        let demand = match entries.iter().find(|(k, _)| k == "demand") {
            None | Some((_, Value::Null)) => None,
            Some((_, v)) => Some(Curve::from_value(v)?),
        };
        let defaults = SupervisorConfig::default();
        let drift_threshold: f64 =
            serde::field(entries, "drift_threshold").unwrap_or(defaults.drift_threshold);
        let psi_percent: f64 = serde::field(entries, "psi_percent").unwrap_or(defaults.psi_percent);
        Ok(SupervisorConfig {
            epoch_s: serde::field(entries, "epoch_s")?,
            horizon_s: serde::field(entries, "horizon_s")?,
            max_replan_attempts: serde::field(entries, "max_replan_attempts")?,
            outlet_drop_c: serde::field(entries, "outlet_drop_c")?,
            trip_margin_c: serde::field(entries, "trip_margin_c")?,
            throttle_steps: serde::field(entries, "throttle_steps")?,
            redline_tol_c: serde::field(entries, "redline_tol_c")?,
            power_tol_kw: serde::field(entries, "power_tol_kw")?,
            supervise: serde::field(entries, "supervise")?,
            seed,
            demand,
            drift_threshold,
            psi_percent,
        })
    }
}

/// How a supervised run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// No violation was ever detected; the initial plan ran untouched.
    Nominal,
    /// Violations occurred and were fully recovered without shedding
    /// load: the final true steady state is inside every constraint.
    Recovered,
    /// Health was restored, but only by shedding task types.
    Shed,
    /// The run ended outside constraints (ladder exhausted or backing
    /// off), but the floor still has a steady state.
    Degraded,
    /// The floor was lost: no thermal steady state (all CRACs down) or
    /// everything off and still outside constraints.
    Unrecoverable,
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct SupervisorReport {
    /// Typed terminal outcome.
    pub outcome: Outcome,
    /// The workload simulation summary (reward, drops, latency).
    pub sim: SimulationResult,
    /// The typed event history.
    pub log: EventLog,
    /// True redline violation of the final steady state, °C (≤ 0 when
    /// safe; `INFINITY` when no steady state exists).
    pub final_violation_c: f64,
    /// Total power (IT + cooling) of the final steady state, kW.
    pub final_power_kw: f64,
    /// Nodes dead at the end (scripted deaths + thermal trips).
    pub nodes_dead: usize,
    /// Task types shed by the supervisor.
    pub shed_task_types: Vec<usize>,
}

/// Per-epoch health assessment (observed, i.e. sensor bias applied to
/// node inlets).
#[derive(Debug, Clone, Copy)]
struct Health {
    /// Observed worst redline violation, °C.
    redline_c: f64,
    /// Total power minus budget, kW.
    power_over_kw: f64,
    /// Total power, kW.
    power_kw: f64,
    /// Worst live die's peak temperature over the chip model's DTM
    /// threshold, °C (`-inf` without a chip model — never a violation).
    chip_over_c: f64,
}

impl Health {
    fn ok(&self, cfg: &SupervisorConfig) -> bool {
        self.redline_c <= cfg.redline_tol_c
            && self.power_over_kw <= cfg.power_tol_kw
            && self.chip_over_c <= cfg.redline_tol_c
    }
}

/// Mutable world + plan state threaded through the epoch loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct World {
    /// Current per-core P-states (live nodes; dead nodes are masked via
    /// `dead` wherever it matters).
    pstates: Vec<usize>,
    /// Current CRAC outlet set-points, °C.
    outlets: Vec<f64>,
    /// Current Stage-3 rates.
    stage3: Stage3Solution,
    /// Optimal basis of the last Stage-3 solve, used to warm-start the
    /// next replan. Part of the persisted world so a crash-resumed run
    /// replays the same warm starts and stays bit-identical to an
    /// uninterrupted one.
    stage3_basis: Option<Stage3Basis>,
    /// Failed CRAC units.
    failed: Vec<bool>,
    /// Dead nodes.
    dead: Vec<bool>,
    /// Observed-minus-true inlet sensor bias, °C.
    bias_c: f64,
    /// Arrival-rate multiplier the floor currently sees (demand-curve
    /// level × scripted surge faults).
    surge: f64,
    /// Multiplier the active plan was last solved at — the reference
    /// the drift detector compares `surge` against.
    planned_surge: f64,
    /// Scripted-surge component of `surge` (1.0 when unfaulted). Kept
    /// separate so the demand curve and surge faults compose.
    fault_surge: f64,
    /// Shed task types.
    shed: Vec<usize>,
    /// The plan no longer matches the floor (death/surge/throttle since
    /// the last successful replan).
    stale: bool,
    /// The room lost its steady state at some point.
    meltdown: bool,
}

/// The fault-tolerant runtime supervisor for one data center.
#[derive(Clone, Copy)]
pub struct Supervisor<'a> {
    dc: &'a DataCenter,
    cfg: SupervisorConfig,
    chip: Option<&'a ChipModel>,
}

impl<'a> Supervisor<'a> {
    /// A supervisor over `dc` with the given configuration.
    pub fn new(dc: &'a DataCenter, cfg: SupervisorConfig) -> Self {
        assert!(cfg.epoch_s > 0.0 && cfg.horizon_s > 0.0);
        Supervisor { dc, cfg, chip: None }
    }

    /// Attach a chip-level thermal model: the supervisor then watches
    /// each live die's peak temperature against the model's TSPD/DTM
    /// threshold and gains a **migration rung** between throttle and
    /// shed — P-state permutations within a node that spread heat across
    /// the die at zero reward cost (node power totals are invariant).
    pub fn with_chip(mut self, chip: &'a ChipModel) -> Self {
        self.chip = Some(chip);
        self
    }

    /// Run the plan against a fault script over the configured horizon.
    /// Never panics: every ending is a typed [`Outcome`].
    pub fn run(&self, plan: &ThreeStageSolution, script: &FaultScript) -> SupervisorReport {
        let _span = thermaware_obs::span("supervisor.run");
        let mut live = self.begin(plan, script);
        while live.step() {}
        live.conclude()
    }

    /// Start a resumable run: the returned [`LiveRun`] executes one epoch
    /// per [`LiveRun::step`] call and can snapshot its complete state at
    /// any epoch boundary with [`LiveRun::to_state`].
    pub fn begin(&self, plan: &ThreeStageSolution, script: &FaultScript) -> LiveRun<'a> {
        let dc = self.dc;
        let cfg = self.cfg;
        // The replanning model: arrival rates carry the surge factor and
        // shed types are zeroed, so Stage 3 plans for the demand the
        // supervisor believes in. Derived state — reconstructed, never
        // persisted (see [`LiveRun::from_state`]).
        let work_dc = dc.clone();
        let world = World {
            pstates: plan.pstates.clone(),
            outlets: plan.stage1.crac_out_c.clone(),
            stage3: plan.stage3.clone(),
            stage3_basis: plan.stage3_basis.clone(),
            failed: vec![false; dc.n_crac()],
            dead: vec![false; dc.n_nodes()],
            bias_c: 0.0,
            surge: 1.0,
            planned_surge: 1.0,
            fault_surge: 1.0,
            shed: Vec::new(),
            stale: false,
            meltdown: false,
        };
        let sim = EpochSim::new(dc, &world.pstates, &world.stage3);
        let n_epochs = (cfg.horizon_s / cfg.epoch_s).ceil().max(1.0) as usize;
        LiveRun {
            dc,
            cfg,
            chip: self.chip,
            script: script.clone(),
            work_dc,
            world,
            log: EventLog::default(),
            sim,
            epoch: 0,
            n_epochs,
            next_event: 0,
            acted: false,
            backoff_skip: 0,
            backoff_next: 1,
        }
    }

    /// Apply one scripted fault to the world (and the simulation).
    fn inject(
        &self,
        world: &mut World,
        work_dc: &mut DataCenter,
        sim: &mut EpochSim<'_>,
        at_s: f64,
        fault: Fault,
        log: &mut EventLog,
    ) {
        log.record(at_s, EventKind::FaultInjected(fault));
        match fault {
            Fault::CracFailure { unit } => {
                if unit < world.failed.len() {
                    world.failed[unit] = true;
                }
            }
            Fault::CracRecovery { unit } => {
                if unit < world.failed.len() {
                    world.failed[unit] = false;
                }
            }
            Fault::NodeDeath { node } => self.kill_node(world, sim, node, at_s),
            Fault::SensorDrift { bias_c } => {
                if bias_c.is_finite() {
                    world.bias_c = bias_c;
                }
            }
            Fault::ArrivalSurge { factor } => {
                let factor = if factor.is_finite() { factor.max(0.0) } else { 1.0 };
                world.fault_surge = factor;
                // Without a demand curve the multiplier IS the fault
                // factor (the historical behavior, bit for bit); with one
                // the curve level composes in at the epoch boundary.
                let m = match &self.cfg.demand {
                    None => factor,
                    Some(curve) => factor * curve.rate_at(at_s).max(0.0),
                };
                world.surge = m;
                for (i, t) in work_dc.workload.task_types.iter_mut().enumerate() {
                    t.arrival_rate = self.dc.workload.task_types[i].arrival_rate * m;
                }
                for &i in &world.shed {
                    work_dc.workload.task_types[i].arrival_rate = 0.0;
                }
                world.stale = true;
            }
        }
    }

    /// Kill a node: mark it dead, mask its cores, lose its in-flight work.
    fn kill_node(&self, world: &mut World, sim: &mut EpochSim<'_>, node: usize, at_s: f64) {
        if node >= world.dead.len() || world.dead[node] {
            return;
        }
        world.dead[node] = true;
        world.stale = true;
        let cores: Vec<usize> = self.dc.cores_of_node(node).collect();
        sim.kill_cores(&cores, at_s);
    }

    /// Node powers under the current P-states, dead nodes drawing nothing.
    fn node_powers(&self, world: &World) -> Vec<f64> {
        let mut p = self.dc.node_powers_from_pstates(&world.pstates);
        for (j, &d) in world.dead.iter().enumerate() {
            if d {
                p[j] = 0.0;
            }
        }
        p
    }

    /// Observed health at the current world state.
    fn health(&self, world: &World) -> Health {
        let dc = self.dc;
        let powers = self.node_powers(world);
        match dc
            .thermal
            .steady_state_with_failed_cracs(&world.outlets, &powers, &world.failed)
        {
            Ok(state) => {
                let observed = (state.max_node_inlet() + world.bias_c - dc.thermal.node_redline_c)
                    .max(state.max_crac_inlet() - dc.thermal.crac_redline_c);
                let power = powers.iter().sum::<f64>() + dc.thermal.total_crac_power_kw(&state);
                let nc = dc.n_crac();
                let inlets: Vec<f64> = (0..dc.n_nodes()).map(|j| state.t_in[nc + j]).collect();
                Health {
                    redline_c: observed,
                    power_over_kw: power - dc.budget.p_const_kw,
                    power_kw: power,
                    chip_over_c: self.chip_over_c(world, &inlets),
                }
            }
            Err(_) => Health {
                redline_c: f64::INFINITY,
                power_over_kw: f64::INFINITY,
                power_kw: f64::INFINITY,
                chip_over_c: f64::NEG_INFINITY,
            },
        }
    }

    /// Worst live die's peak temperature over the chip DTM threshold, °C
    /// (`-inf` without a chip model). The die ambient is each node's
    /// *observed* inlet (true inlet + sensor bias) — the supervisor acts
    /// on what its sensors tell it, as for room redlines.
    fn chip_over_c(&self, world: &World, inlets_c: &[f64]) -> f64 {
        let Some(chip) = self.chip else {
            return f64::NEG_INFINITY;
        };
        let dc = self.dc;
        let mut worst = f64::NEG_INFINITY;
        for (j, &inlet_c) in inlets_c.iter().enumerate().take(dc.n_nodes()) {
            if world.dead[j] {
                continue;
            }
            let t = dc.node_type_of[j];
            if t >= chip.n_types() {
                continue;
            }
            let grid = chip.grid(t);
            let cores: Vec<usize> = dc.cores_of_node(j).collect();
            if cores.len() != grid.n_cores() {
                continue;
            }
            let table = &dc.node_type(j).core.pstates;
            let powers: Vec<f64> = cores
                .iter()
                .map(|&k| table.power_kw(world.pstates[k]))
                .collect();
            let peak = grid.peak_c(inlet_c + world.bias_c, &powers);
            worst = worst.max(peak - chip.t_dtm_c());
        }
        worst
    }

    /// Per-node observed inlets (°C) at the current world state, or
    /// `None` when the room has no steady state.
    fn observed_inlets(&self, world: &World) -> Option<Vec<f64>> {
        let dc = self.dc;
        let powers = self.node_powers(world);
        let state = dc
            .thermal
            .steady_state_with_failed_cracs(&world.outlets, &powers, &world.failed)
            .ok()?;
        let nc = dc.n_crac();
        Some(
            (0..dc.n_nodes())
                .map(|j| state.t_in[nc + j] + world.bias_c)
                .collect(),
        )
    }

    /// The staged degradation ladder. Returns whether observed health was
    /// restored. Mutates plan/world state and the live simulation.
    fn respond(
        &self,
        world: &mut World,
        work_dc: &mut DataCenter,
        sim: &mut EpochSim<'_>,
        now: f64,
        initial: Health,
        log: &mut EventLog,
    ) -> bool {
        let dc = self.dc;
        let cfg = &self.cfg;
        let mut h = initial;
        let mut attempts = 0u32;
        // Each violation kind is logged once per response (at its first,
        // worst reading) and contiguous throttle batches are merged into
        // one event, so the log stays readable when the ladder needs
        // hundreds of P-state steps.
        let mut seen_redline = false;
        let mut seen_power = false;
        let mut seen_chip = false;
        let mut throttled = 0usize;
        let flush_throttle = |throttled: &mut usize, log: &mut EventLog| {
            if *throttled > 0 {
                log.record(now, EventKind::ActionTaken(Action::Throttle { steps: *throttled }));
                *throttled = 0;
            }
        };
        for _ in 0..MAX_LADDER_ITERS {
            // Physical violations come first: a Stage-3 replan changes
            // rates, not power or heat, so it cannot clear them — and
            // outlet drops / throttling mark the plan stale anyway. The
            // replan happens exactly once per response, at the end, so
            // the scheduler's admission clocks are not reset mid-ladder.
            if h.redline_c > cfg.redline_tol_c {
                if !seen_redline {
                    seen_redline = true;
                    log.record(
                        now,
                        EventKind::ViolationDetected(Violation::Redline {
                            observed_c: h.redline_c,
                        }),
                    );
                }
                // Rung 2: colder outlets, while there is room.
                if self.drop_outlets(world, now, log) {
                    h = self.health(world);
                    continue;
                }
                // Rung 3: shed heat.
                let steps = self.throttle(world, true);
                if steps > 0 {
                    throttled += steps;
                    h = self.health(world);
                    continue;
                }
                flush_throttle(&mut throttled, log);
                return false; // everything dark and still too hot
            }

            if h.power_over_kw > cfg.power_tol_kw {
                if !seen_power {
                    seen_power = true;
                    log.record(
                        now,
                        EventKind::ViolationDetected(Violation::PowerCap {
                            total_kw: h.power_kw,
                            budget_kw: dc.budget.p_const_kw,
                        }),
                    );
                }
                // Rung 3 is the only lever that cuts power.
                let steps = self.throttle(world, false);
                if steps > 0 {
                    throttled += steps;
                    h = self.health(world);
                    continue;
                }
                flush_throttle(&mut throttled, log);
                return false;
            }

            // Chip-level hotspot (requires a chip model): the room is
            // fine but some die's peak exceeds its TSPD/DTM limit. Sits
            // between throttle and shed in severity terms: migration
            // first — spread the node's P-states across the die at
            // **zero** reward cost (node powers invariant, so the room
            // rungs above cannot regress) — then a targeted throttle of
            // the hottest die's shallowest core as the fallback when no
            // permutation is cool enough.
            if h.chip_over_c > cfg.redline_tol_c {
                if !seen_chip {
                    seen_chip = true;
                    let observed = self.chip.map_or(f64::NAN, |c| c.t_dtm_c()) + h.chip_over_c;
                    log.record(
                        now,
                        EventKind::ViolationDetected(Violation::ChipHotspot {
                            observed_c: observed,
                        }),
                    );
                }
                if let (Some(chip), Some(inlets)) = (self.chip, self.observed_inlets(world)) {
                    let plan = crate::degrade::migrate_to_tspd(
                        dc,
                        chip,
                        &inlets,
                        &world.pstates,
                        cfg.throttle_steps,
                        Some(&world.dead),
                    );
                    if plan.swaps > 0 {
                        world.pstates = plan.pstates;
                        world.stale = true;
                        log.record(
                            now,
                            EventKind::ActionTaken(Action::Migrate { swaps: plan.swaps }),
                        );
                        h = self.health(world);
                        continue;
                    }
                }
                if let Some(k) = self.chip_throttle_step(world) {
                    world.pstates[k] += 1;
                    world.stale = true;
                    throttled += 1;
                    h = self.health(world);
                    continue;
                }
                flush_throttle(&mut throttled, log);
                return false; // dies dark (or ambient over DTM) and still too hot
            }

            flush_throttle(&mut throttled, log);

            // Rung 1: the plan is stale — replan rates on what survives.
            if world.stale {
                log.record(now, EventKind::ViolationDetected(Violation::StalePlan));
                match solve_stage3_warm(
                    work_dc,
                    &self.effective_pstates(world),
                    world.stage3_basis.as_ref(),
                ) {
                    Ok((s3, basis)) => {
                        world.stage3 = s3;
                        world.stage3_basis = basis;
                        world.stale = false;
                        attempts = 0;
                        sim.replan(&self.effective_pstates(world), &world.stage3, now);
                        log.record(now, EventKind::ActionTaken(Action::Replan));
                    }
                    Err(err) => {
                        attempts += 1;
                        let infeasible = err.is_infeasible();
                        log.record(
                            now,
                            EventKind::ReplanFailed {
                                attempt: attempts,
                                error: err.to_string(),
                            },
                        );
                        if attempts >= cfg.max_replan_attempts {
                            // Rung 4: shed the lowest-reward live type and
                            // retry on the smaller problem.
                            if !self.shed_one(world, work_dc, now, log) {
                                return false;
                            }
                            attempts = 0;
                        } else if !infeasible {
                            // Pathology, not infeasibility: hammering the
                            // solver will not help — back off to the next
                            // epoch.
                            return false;
                        }
                    }
                }
                h = self.health(world);
                continue;
            }

            log.record(now, EventKind::Recovered { margin_c: h.redline_c });
            return true;
        }
        false
    }

    /// The P-states Stage 3 and the scheduler actually see: dead nodes'
    /// cores forced to their off state.
    fn effective_pstates(&self, world: &World) -> Vec<usize> {
        let mut ps = world.pstates.clone();
        for (node, &d) in world.dead.iter().enumerate() {
            if d {
                let off = self.dc.node_type(node).core.pstates.off_index();
                for k in self.dc.cores_of_node(node) {
                    ps[k] = off;
                }
            }
        }
        ps
    }

    /// Rung 2: drop every unit's set-point by `outlet_drop_c`, clamped to
    /// its minimum. Returns whether anything moved.
    fn drop_outlets(&self, world: &mut World, now: f64, log: &mut EventLog) -> bool {
        let mut moved = 0.0f64;
        for (c, out) in world.outlets.iter_mut().enumerate() {
            let floor = self.dc.cracs[c].min_outlet_c;
            let next = (*out - self.cfg.outlet_drop_c).max(floor);
            moved = moved.max(*out - next);
            *out = next;
        }
        if moved > 1e-9 {
            log.record(now, EventKind::ActionTaken(Action::OutletDrop { by_c: moved }));
            true
        } else {
            false
        }
    }

    /// Rung 3: emergency throttle, up to `throttle_steps` one-state
    /// deepenings per application. Each step is chosen greedily and
    /// *thermally aware*: every live node's shallowest core is a
    /// candidate, scored by how much the steady-state redline violation
    /// falls per MHz of speed given up (so the nodes whose heat
    /// recirculates into the hot spot are throttled first). Under a
    /// power-cap breach the score is instead the power cut per MHz —
    /// the least-efficient steps go first. Marks the plan stale (rates
    /// must be recomputed for the new service speeds). Returns the number
    /// of steps taken (the caller logs them, merged across batches).
    fn throttle(&self, world: &mut World, thermal: bool) -> usize {
        let dc = self.dc;
        let mut steps = 0usize;
        for _ in 0..self.cfg.throttle_steps {
            let powers = self.node_powers(world);
            let base_viol = dc
                .thermal
                .steady_state_with_failed_cracs(&world.outlets, &powers, &world.failed)
                .map(|s| s.redline_violation(dc.thermal.node_redline_c, dc.thermal.crac_redline_c))
                .ok();
            let chosen = match (thermal, base_viol) {
                // Thermal mode: score each candidate by the redline
                // violation shed per MHz lost.
                (true, Some(v0)) => {
                    let mut best: Option<(f64, usize)> = None; // (score, core)
                    for j in (0..dc.n_nodes()).filter(|&j| !world.dead[j]) {
                        let table = &dc.node_type(j).core.pstates;
                        let off = table.off_index();
                        let Some(k) = dc
                            .cores_of_node(j)
                            .filter(|&k| world.pstates[k] < off)
                            .min_by_key(|&k| world.pstates[k])
                        else {
                            continue;
                        };
                        let p = world.pstates[k];
                        let dp_kw = table.power_kw(p) - table.power_kw(p + 1);
                        let ds_mhz = (table.freq_mhz(p) - table.freq_mhz(p + 1)).max(1e-9);
                        let mut pw = powers.clone();
                        pw[j] -= dp_kw;
                        let score = match dc.thermal.steady_state_with_failed_cracs(
                            &world.outlets,
                            &pw,
                            &world.failed,
                        ) {
                            Ok(s) => {
                                (v0 - s.redline_violation(
                                    dc.thermal.node_redline_c,
                                    dc.thermal.crac_redline_c,
                                )) / ds_mhz
                            }
                            Err(_) => f64::NEG_INFINITY,
                        };
                        if best.is_none_or(|(b, _)| score > b) {
                            best = Some((score, k));
                        }
                    }
                    best.map(|(_, k)| k)
                }
                // Power-cap breach (or no steady state to probe): the
                // shared degradation ladder's greedy power-per-MHz step.
                _ => crate::degrade::cheapest_throttle_step(dc, &world.pstates, Some(&world.dead)),
            };
            let Some(k) = chosen else { break };
            world.pstates[k] += 1;
            steps += 1;
        }
        if steps > 0 {
            world.stale = true;
        }
        steps
    }

    /// Targeted throttle for a chip hotspot migration cannot cool:
    /// the shallowest non-off core of the hottest over-DTM die. Returns
    /// `None` when no chip model is attached, the room has no steady
    /// state, no die is over DTM, or the hottest die is already dark.
    fn chip_throttle_step(&self, world: &World) -> Option<usize> {
        let chip = self.chip?;
        let inlets = self.observed_inlets(world)?;
        let dc = self.dc;
        let mut hottest: Option<(f64, usize)> = None; // (peak, node)
        for (j, &inlet_c) in inlets.iter().enumerate().take(dc.n_nodes()) {
            if world.dead[j] {
                continue;
            }
            let t = dc.node_type_of[j];
            if t >= chip.n_types() {
                continue;
            }
            let grid = chip.grid(t);
            let cores: Vec<usize> = dc.cores_of_node(j).collect();
            if cores.len() != grid.n_cores() {
                continue;
            }
            let table = &dc.node_type(j).core.pstates;
            let powers: Vec<f64> = cores
                .iter()
                .map(|&k| table.power_kw(world.pstates[k]))
                .collect();
            let peak = grid.peak_c(inlet_c, &powers);
            if peak > chip.t_dtm_c() && hottest.is_none_or(|(p, _)| peak > p) {
                hottest = Some((peak, j));
            }
        }
        let (_, j) = hottest?;
        let table = &dc.node_type(j).core.pstates;
        let off = table.off_index();
        dc.cores_of_node(j)
            .filter(|&k| world.pstates[k] < off)
            .min_by_key(|&k| world.pstates[k])
    }

    /// Rung 4: shed the lowest-reward task type still live. Returns
    /// whether a type was left to shed.
    fn shed_one(
        &self,
        world: &mut World,
        work_dc: &mut DataCenter,
        now: f64,
        log: &mut EventLog,
    ) -> bool {
        let victim = work_dc
            .workload
            .task_types
            .iter()
            .filter(|t| t.arrival_rate > 0.0)
            .min_by(|a, b| a.reward.total_cmp(&b.reward))
            .map(|t| (t.index, t.reward));
        match victim {
            Some((i, reward)) => {
                work_dc.workload.task_types[i].arrival_rate = 0.0;
                world.shed.push(i);
                world.stale = true;
                log.record(
                    now,
                    EventKind::ActionTaken(Action::ShedTaskType { task_type: i, reward }),
                );
                true
            }
            None => false,
        }
    }

    /// Physics: nodes whose true inlet exceeds redline + trip margin shut
    /// down, one at a time (hottest first), until the floor stabilizes.
    fn apply_trips(
        &self,
        world: &mut World,
        sim: &mut EpochSim<'_>,
        now: f64,
        log: &mut EventLog,
    ) {
        let dc = self.dc;
        let nc = dc.n_crac();
        let trip_at = dc.thermal.node_redline_c + self.cfg.trip_margin_c;
        loop {
            let powers = self.node_powers(world);
            match dc
                .thermal
                .steady_state_with_failed_cracs(&world.outlets, &powers, &world.failed)
            {
                Ok(state) => {
                    let hottest = (0..dc.n_nodes())
                        .filter(|&j| !world.dead[j] && state.t_in[nc + j] > trip_at)
                        .max_by(|&a, &b| state.t_in[nc + a].total_cmp(&state.t_in[nc + b]));
                    let Some(j) = hottest else { return };
                    log.record(
                        now,
                        EventKind::NodeTripped {
                            node: j,
                            inlet_c: state.t_in[nc + j],
                        },
                    );
                    self.kill_node(world, sim, j, now);
                }
                Err(_) => {
                    // No steady state (every CRAC down): the floor is lost.
                    if !world.meltdown {
                        log.record(now, EventKind::NoSteadyState);
                    }
                    world.meltdown = true;
                    let doomed: Vec<usize> =
                        (0..dc.n_nodes()).filter(|&j| !world.dead[j]).collect();
                    for j in doomed {
                        self.kill_node(world, sim, j, now);
                    }
                    return;
                }
            }
        }
    }
}

/// A supervised run in flight, advanced one epoch at a time.
///
/// `LiveRun` is [`Supervisor::run`] unrolled: [`Supervisor::begin`]
/// creates one, [`step`](LiveRun::step) executes the next epoch
/// (faults → supervision → trips → arrivals), and
/// [`conclude`](LiveRun::conclude) performs the final reckoning. The
/// arrival RNG is re-seeded deterministically *per epoch* from
/// `cfg.seed`, so a run restored at any epoch boundary draws exactly
/// the arrivals the uninterrupted run would have drawn — the property
/// the `persist` module's crash recovery is built on.
pub struct LiveRun<'a> {
    dc: &'a DataCenter,
    cfg: SupervisorConfig,
    chip: Option<&'a ChipModel>,
    script: FaultScript,
    work_dc: DataCenter,
    world: World,
    log: EventLog,
    sim: EpochSim<'a>,
    epoch: usize,
    n_epochs: usize,
    next_event: usize,
    acted: bool,
    backoff_skip: u32,
    backoff_next: u32,
}

impl<'a> LiveRun<'a> {
    /// Execute the next epoch. Returns `false` (doing nothing) once the
    /// horizon is complete.
    pub fn step(&mut self) -> bool {
        if self.epoch >= self.n_epochs {
            return false;
        }
        let _span = thermaware_obs::span("supervisor.epoch");
        thermaware_obs::counter_add("runtime.epochs", 1);
        let sup = Supervisor {
            dc: self.dc,
            cfg: self.cfg,
            chip: self.chip,
        };
        let cfg = self.cfg;
        let e = self.epoch;
        let t0 = e as f64 * cfg.epoch_s;
        let t1 = (t0 + cfg.epoch_s).min(cfg.horizon_s);

        // -- 1. Scripted faults due by this boundary ----------------------
        // A fault takes effect at the first epoch boundary at or after
        // its timestamp (the supervisor's world advances in epochs), so
        // the log stays time-ordered.
        while self.next_event < self.script.events().len()
            && self.script.events()[self.next_event].at_s <= t0
        {
            let ev = self.script.events()[self.next_event];
            self.next_event += 1;
            sup.inject(
                &mut self.world,
                &mut self.work_dc,
                &mut self.sim,
                t0,
                ev.fault,
                &mut self.log,
            );
        }

        // -- 1b. Scenario demand: the live multiplier follows the curve --
        // (times any scripted surge fault). Arrivals track it
        // unconditionally — demand is the environment, not a supervisor
        // decision — while replanning stays drift-gated below.
        if let Some(curve) = &cfg.demand {
            let m = self.world.fault_surge * curve.rate_at(t0).max(0.0);
            self.world.surge = m;
            for (i, t) in self.work_dc.workload.task_types.iter_mut().enumerate() {
                t.arrival_rate = self.dc.workload.task_types[i].arrival_rate * m;
            }
            for &i in &self.world.shed {
                self.work_dc.workload.task_types[i].arrival_rate = 0.0;
            }
        }

        // -- 2. Supervision (before the air catches up) -------------------
        if cfg.supervise {
            if self.backoff_skip > 0 {
                self.backoff_skip -= 1;
            } else {
                // Demand drift: the live multiplier moved far enough from
                // the one the active plan was solved at that rate-only
                // replans leave reward on the table (demand up: the
                // P-state floor undershoots) or waste power (demand
                // down). Re-run the full three-stage solve at the live
                // demand; the stale-plan rung then rebuilds Stage-3 rates
                // on the dead-masked cores and pushes them into the
                // scheduler.
                if cfg.demand.is_some() {
                    let drift = (self.world.surge - self.world.planned_surge).abs();
                    if drift > cfg.drift_threshold * self.world.planned_surge.max(1e-9) {
                        self.acted = true;
                        self.log.record(
                            t0,
                            EventKind::ViolationDetected(Violation::DemandDrift {
                                multiplier: self.world.surge,
                                planned: self.world.planned_surge,
                            }),
                        );
                        match solve_three_stage(
                            &self.work_dc,
                            &ThreeStageOptions {
                                psi_percent: cfg.psi_percent,
                                ..ThreeStageOptions::default()
                            },
                        ) {
                            Ok(sol) => {
                                self.world.pstates = sol.pstates;
                                self.world.outlets = sol.stage1.crac_out_c;
                                self.world.stage3_basis = sol.stage3_basis;
                                self.world.planned_surge = self.world.surge;
                                self.world.stale = true;
                                self.log
                                    .record(t0, EventKind::ActionTaken(Action::Stage1Replan));
                            }
                            Err(err) => {
                                self.log.record(
                                    t0,
                                    EventKind::ReplanFailed {
                                        attempt: 1,
                                        error: err.to_string(),
                                    },
                                );
                            }
                        }
                    }
                }
                let h = sup.health(&self.world);
                if !h.ok(&cfg) || self.world.stale {
                    self.acted = true;
                    let recovered = sup.respond(
                        &mut self.world,
                        &mut self.work_dc,
                        &mut self.sim,
                        t0,
                        h,
                        &mut self.log,
                    );
                    if recovered {
                        self.backoff_next = 1;
                    } else {
                        self.backoff_skip = self.backoff_next;
                        self.backoff_next = (self.backoff_next * 2).min(8);
                        self.log.record(
                            t0,
                            EventKind::Backoff {
                                epochs: self.backoff_skip,
                            },
                        );
                    }
                }
            }
        }

        // -- 3. Physics: thermal trips on the *true* state ----------------
        sup.apply_trips(&mut self.world, &mut self.sim, t0, &mut self.log);

        // -- 4. The epoch's arrivals --------------------------------------
        let mut rng = epoch_rng(cfg.seed, e);
        for a in epoch_arrivals(&mut rng, self.dc, self.world.surge, t0, t1) {
            self.sim.dispatch(a.task_type, a.time, a.deadline);
        }
        self.epoch += 1;
        true
    }

    /// Final reckoning on the true steady state; consumes the run.
    pub fn conclude(self) -> SupervisorReport {
        let dc = self.dc;
        let cfg = self.cfg;
        let sup = Supervisor { dc, cfg, chip: self.chip };
        let powers = sup.node_powers(&self.world);
        let (final_violation_c, final_power_kw) = match dc.thermal.steady_state_with_failed_cracs(
            &self.world.outlets,
            &powers,
            &self.world.failed,
        ) {
            Ok(state) => (
                state.redline_violation(dc.thermal.node_redline_c, dc.thermal.crac_redline_c),
                powers.iter().sum::<f64>() + dc.thermal.total_crac_power_kw(&state),
            ),
            Err(_) => (f64::INFINITY, powers.iter().sum::<f64>()),
        };
        let nodes_dead = self.world.dead.iter().filter(|&&d| d).count();
        let healthy = final_violation_c <= cfg.redline_tol_c
            && final_power_kw <= dc.budget.p_const_kw + cfg.power_tol_kw;
        let outcome = if self.world.meltdown || !final_violation_c.is_finite() {
            Outcome::Unrecoverable
        } else if !healthy {
            Outcome::Degraded
        } else if !self.world.shed.is_empty() {
            Outcome::Shed
        } else if self.acted || nodes_dead > 0 {
            Outcome::Recovered
        } else {
            Outcome::Nominal
        };

        SupervisorReport {
            outcome,
            sim: self.sim.finish(cfg.horizon_s),
            log: self.log,
            final_violation_c,
            final_power_kw,
            nodes_dead,
            shed_task_types: self.world.shed,
        }
    }

    /// Reattach a chip-level thermal model (see
    /// [`Supervisor::with_chip`]) — needed after
    /// [`from_state`](LiveRun::from_state), which cannot persist the
    /// borrowed model. A resumed run only replays the original's
    /// migration rungs if the same model is reattached before stepping.
    pub fn with_chip(mut self, chip: &'a ChipModel) -> LiveRun<'a> {
        self.chip = Some(chip);
        self
    }

    /// Epochs fully executed so far.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Total epochs over the configured horizon.
    pub fn n_epochs(&self) -> usize {
        self.n_epochs
    }

    /// Has the horizon been fully executed?
    pub fn is_done(&self) -> bool {
        self.epoch >= self.n_epochs
    }

    /// The typed event history so far.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// The scripted faults the *next* [`step`](LiveRun::step) will inject
    /// — what a write-ahead journal records before the epoch executes.
    pub fn due_faults(&self) -> Vec<crate::fault::FaultEvent> {
        let t0 = self.epoch as f64 * self.cfg.epoch_s;
        self.script.events()[self.next_event..]
            .iter()
            .take_while(|e| e.at_s <= t0)
            .copied()
            .collect()
    }

    /// Current per-core P-states, CRAC outlets, failure masks — exposed
    /// for invariant checks against the physical model after recovery.
    pub fn world_view(&self) -> WorldView<'_> {
        WorldView {
            pstates: &self.world.pstates,
            outlets: &self.world.outlets,
            stage3: &self.world.stage3,
            failed: &self.world.failed,
            dead: &self.world.dead,
            shed: &self.world.shed,
            bias_c: self.world.bias_c,
            surge: self.world.surge,
            stale: self.world.stale,
            meltdown: self.world.meltdown,
            backoff_skip: self.backoff_skip,
        }
    }

    /// Snapshot the complete execution state. Only meaningful at an epoch
    /// boundary — i.e. between [`step`](LiveRun::step) calls.
    pub fn to_state(&self) -> SupervisorState {
        SupervisorState {
            cfg: self.cfg,
            epoch: self.epoch,
            next_event: self.next_event,
            world: self.world.clone(),
            sim: self.sim.to_state(),
            log: self.log.clone(),
            acted: self.acted,
            backoff_skip: self.backoff_skip,
            backoff_next: self.backoff_next,
        }
    }

    /// Restore a run from a [`SupervisorState`] snapshot, against the
    /// same data center and fault script it was taken from. The
    /// replanning model (`work_dc`) is *derived* state — base arrival
    /// rates scaled by the surge factor, shed types zeroed — so it is
    /// rebuilt here bit-identically rather than persisted.
    pub fn from_state(
        dc: &'a DataCenter,
        script: &FaultScript,
        state: SupervisorState,
    ) -> Result<LiveRun<'a>, String> {
        let cfg = state.cfg;
        if !(cfg.epoch_s > 0.0 && cfg.horizon_s > 0.0) {
            return Err("supervisor state: non-positive epoch or horizon length".to_string());
        }
        let n_epochs = (cfg.horizon_s / cfg.epoch_s).ceil().max(1.0) as usize;
        if state.epoch > n_epochs {
            return Err(format!(
                "supervisor state: epoch {} past the horizon ({n_epochs} epochs)",
                state.epoch
            ));
        }
        if state.next_event > script.events().len() {
            return Err(format!(
                "supervisor state: {} fault events consumed but the script has {}",
                state.next_event,
                script.events().len()
            ));
        }
        let w = &state.world;
        if w.pstates.len() != dc.n_cores()
            || w.outlets.len() != dc.n_crac()
            || w.failed.len() != dc.n_crac()
            || w.dead.len() != dc.n_nodes()
        {
            return Err(
                "supervisor state: world dimensions do not match the data center".to_string(),
            );
        }
        if w.shed.iter().any(|&i| i >= dc.workload.task_types.len()) {
            return Err("supervisor state: shed task type out of range".to_string());
        }
        if !w.surge.is_finite() || w.surge < 0.0 {
            return Err("supervisor state: non-finite or negative surge factor".to_string());
        }
        if state.sim.per_type.len() != dc.workload.task_types.len() {
            return Err("supervisor state: per-type stats do not match the workload".to_string());
        }
        let mut work_dc = dc.clone();
        for (i, t) in work_dc.workload.task_types.iter_mut().enumerate() {
            t.arrival_rate = dc.workload.task_types[i].arrival_rate * w.surge;
        }
        for &i in &w.shed {
            work_dc.workload.task_types[i].arrival_rate = 0.0;
        }
        let sim = EpochSim::from_state(dc, state.sim);
        // The chip model is borrowed, not persisted: reattach it after
        // restore with [`LiveRun::with_chip`].
        Ok(LiveRun {
            dc,
            cfg,
            chip: None,
            script: script.clone(),
            work_dc,
            world: state.world,
            log: state.log,
            sim,
            epoch: state.epoch,
            n_epochs,
            next_event: state.next_event,
            acted: state.acted,
            backoff_skip: state.backoff_skip,
            backoff_next: state.backoff_next,
        })
    }
}

/// A read-only view of a [`LiveRun`]'s world, for invariant checks and
/// reporting (e.g. verifying a recovered run against the power cap and
/// redlines without touching the event log).
#[derive(Debug, Clone, Copy)]
pub struct WorldView<'a> {
    /// Current per-core P-states.
    pub pstates: &'a [usize],
    /// Current CRAC outlet set-points, °C.
    pub outlets: &'a [f64],
    /// Current Stage-3 rates.
    pub stage3: &'a Stage3Solution,
    /// Failed CRAC units.
    pub failed: &'a [bool],
    /// Dead nodes.
    pub dead: &'a [bool],
    /// Shed task types.
    pub shed: &'a [usize],
    /// Observed-minus-true inlet sensor bias, °C.
    pub bias_c: f64,
    /// Arrival-rate multiplier.
    pub surge: f64,
    /// The plan no longer matches the floor.
    pub stale: bool,
    /// The room lost its steady state at some point.
    pub meltdown: bool,
    /// Epochs of supervision backoff still pending.
    pub backoff_skip: u32,
}

impl WorldView<'_> {
    /// Is this world undisturbed and *verifiably* healthy? No failures,
    /// sheds, stale plan, backoff, sensor bias (a biased floor's health
    /// is believed, not known), or demand surge (the plan targets rates
    /// the original workload cannot be verified against) — the condition
    /// under which a recovered run is expected to satisfy every physical
    /// constraint.
    pub fn believes_healthy(&self) -> bool {
        !self.stale
            && !self.meltdown
            && self.backoff_skip == 0
            && self.shed.is_empty()
            && self.bias_c == 0.0 // lint: allow(float-eq): bias_c is only ever assigned literals; exact no-fault test
            && self.surge == 1.0 // lint: allow(float-eq): surge is only ever assigned literals; exact no-fault test
            && !self.failed.iter().any(|&f| f)
            && !self.dead.iter().any(|&d| d)
    }
}

/// The complete, serializable execution state of a [`LiveRun`] at an
/// epoch boundary — everything beyond the immutable data center and
/// fault script, which travel separately (see the `persist` module).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupervisorState {
    /// Configuration of the run (including the arrival seed).
    pub cfg: SupervisorConfig,
    /// Epochs fully executed.
    pub epoch: usize,
    /// Fault-script events already injected.
    pub next_event: usize,
    world: World,
    sim: EpochSimState,
    log: EventLog,
    acted: bool,
    backoff_skip: u32,
    backoff_next: u32,
}

impl SupervisorState {
    /// The typed event history captured in this state.
    pub fn log(&self) -> &EventLog {
        &self.log
    }
}

/// The arrival RNG for epoch `e`: re-seeded independently per epoch (a
/// golden-ratio increment decorrelates consecutive epochs), so resuming
/// at any boundary reproduces the exact arrival stream of an
/// uninterrupted run without persisting RNG internals.
fn epoch_rng(seed: u64, e: usize) -> StdRng {
    StdRng::seed_from_u64(seed.wrapping_add(((e as u64) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// The epoch's Poisson arrivals at `surge`-scaled rates. Exponential
/// interarrivals are memoryless, so restarting each type's clock at the
/// epoch boundary is statistically identical to one continuous process —
/// and it keeps the stream identical across supervised and unsupervised
/// runs of the same seed (supervision never touches the RNG).
fn epoch_arrivals(
    rng: &mut StdRng,
    dc: &DataCenter,
    surge: f64,
    t0: f64,
    t1: f64,
) -> Vec<TaskArrival> {
    let mut arrivals = Vec::new();
    for t in &dc.workload.task_types {
        let rate = t.arrival_rate * surge;
        if rate <= 0.0 {
            continue;
        }
        let mut clock = t0;
        loop {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            clock += -u.ln() / rate;
            if clock >= t1 {
                break;
            }
            arrivals.push(TaskArrival {
                time: clock,
                task_type: t.index,
                deadline: clock + t.deadline_slack,
            });
        }
    }
    arrivals.sort_by(|a, b| a.time.total_cmp(&b.time));
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;
    use thermaware_core::{solve_three_stage, ThreeStageOptions};
    use thermaware_datacenter::ScenarioParams;

    fn setup() -> (DataCenter, ThreeStageSolution) {
        let dc = ScenarioParams {
            n_nodes: 8,
            n_crac: 2,
            ..ScenarioParams::small_test()
        }
        .build(1)
        .expect("scenario");
        let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("plan");
        (dc, plan)
    }

    fn cfg(horizon_s: f64) -> SupervisorConfig {
        SupervisorConfig {
            horizon_s,
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn nominal_run_is_nominal() {
        let (dc, plan) = setup();
        let sup = Supervisor::new(&dc, cfg(10.0));
        let r = sup.run(&plan, &FaultScript::new());
        assert_eq!(r.outcome, Outcome::Nominal);
        assert!(r.final_violation_c <= 0.0, "{}", r.final_violation_c);
        assert!(r.sim.reward_rate > 0.0);
        assert_eq!(r.log.trips(), 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let (dc, plan) = setup();
        let script = FaultScript::new().node_death(3.0, 2).arrival_surge(5.0, 1.5);
        let sup = Supervisor::new(&dc, cfg(10.0));
        let a = sup.run(&plan, &script);
        let b = sup.run(&plan, &script);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.sim.reward_collected, b.sim.reward_collected);
        assert_eq!(a.log.events().len(), b.log.events().len());
    }

    #[test]
    fn node_death_recovers_with_a_replan() {
        let (dc, plan) = setup();
        let script = FaultScript::new().node_death(3.0, 0);
        let sup = Supervisor::new(&dc, cfg(12.0));
        let r = sup.run(&plan, &script);
        assert_eq!(r.nodes_dead, 1);
        assert!(r.log.replans() >= 1, "no replan after node death");
        assert_eq!(r.outcome, Outcome::Recovered);
        assert!(r.sim.reward_rate > 0.0);
    }

    #[test]
    fn all_cracs_down_is_unrecoverable_not_a_panic() {
        let (dc, plan) = setup();
        let script = FaultScript::new().crac_failure(2.0, 0).crac_failure(2.0, 1);
        let sup = Supervisor::new(&dc, cfg(8.0));
        let r = sup.run(&plan, &script);
        assert_eq!(r.outcome, Outcome::Unrecoverable);
        assert_eq!(r.nodes_dead, dc.n_nodes());
    }

    #[test]
    fn unsupervised_ignores_violations() {
        let (dc, plan) = setup();
        let script = FaultScript::new().node_death(3.0, 0);
        let sup = Supervisor::new(
            &dc,
            SupervisorConfig {
                supervise: false,
                ..cfg(10.0)
            },
        );
        let r = sup.run(&plan, &script);
        assert_eq!(r.log.replans(), 0);
        // Outcome still typed: the stale plan happens to stay healthy
        // thermally (less heat), so this ends Recovered-or-Degraded, not
        // Nominal (a node is down).
        assert_ne!(r.outcome, Outcome::Nominal);
    }

    #[test]
    fn arrival_stream_is_seed_deterministic_and_surge_scales_it() {
        let (dc, _) = setup();
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = epoch_arrivals(&mut r1, &dc, 1.0, 0.0, 5.0);
        let b = epoch_arrivals(&mut r2, &dc, 1.0, 0.0, 5.0);
        assert_eq!(a.len(), b.len());
        let mut r3 = StdRng::seed_from_u64(7);
        let c = epoch_arrivals(&mut r3, &dc, 3.0, 0.0, 5.0);
        assert!(c.len() > a.len(), "surge did not increase arrivals");
        for w in a.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }
}
