//! Durable checkpoint/restore for supervised runs: a write-ahead event
//! journal plus crash-consistent state snapshots.
//!
//! A checkpointed run lives in one directory:
//!
//! * `run.json` — written once at start: the [`ScenarioSnapshot`], the
//!   [`SupervisorConfig`], the initial plan, and the fault script.
//!   Immutable for the life of the run.
//! * `journal.jsonl` — the write-ahead journal. Before an epoch executes
//!   a *begin* record (epoch number + the scripted faults about to be
//!   injected) is appended and fsynced; after it executes a *commit*
//!   record (epoch number, CRC of the post-epoch state, the events the
//!   epoch appended to the [`EventLog`]) follows. Each line carries its
//!   own CRC-32, so a torn tail is detectable byte-for-byte.
//! * `snap-<epoch>.json` — full [`SupervisorState`] snapshots taken every
//!   `snapshot_interval` epochs, written with
//!   [`thermaware_datacenter::atomic_write`] (temp file + fsync + atomic
//!   rename) and pruned to the newest `retain` generations.
//!
//! Because every epoch is deterministic given the state at its boundary
//! (the arrival RNG is re-seeded per epoch), recovery is *replay*, not
//! rollback: [`resume`] loads the newest uncorrupted snapshot, truncates
//! any torn journal tail, re-executes the committed epochs after the
//! snapshot — checking the re-computed state CRC against each commit
//! record — and hands back a [`RecoveredRun`] that continues bit-for-bit
//! identically to a run that was never interrupted. Recovered state that
//! claims to be healthy is additionally verified against the physical
//! model's power-cap and redline invariants via
//! [`thermaware_core::verify_assignment`].

use crate::event::Event;
use crate::fault::FaultEvent;
use crate::supervisor::{LiveRun, Supervisor, SupervisorConfig, SupervisorReport, SupervisorState};
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use thermaware_core::{verify_assignment, ThreeStageSolution};
use thermaware_datacenter::{atomic_write, DataCenter, ScenarioSnapshot};

/// Current on-disk format version. Version 1 snapshots (no `state_crc`
/// field) are still readable; versions above this are rejected with
/// [`PersistError::UnsupportedVersion`].
pub const FORMAT_VERSION: u64 = 2;

const RUN_FILE: &str = "run.json";
const JOURNAL_FILE: &str = "journal.jsonl";
const SNAP_PREFIX: &str = "snap-";
const SNAP_SUFFIX: &str = ".json";

/// CRC-32 (IEEE, reflected, polynomial `0xEDB88320`), computed bitwise —
/// no table, plenty fast for checkpoint-sized payloads.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Why persistence or recovery failed. Every variant is a typed ending —
/// corrupt or hostile checkpoint directories never panic the recoverer.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(io::Error),
    /// A file exists but cannot be trusted (bad CRC, bad JSON, replay
    /// divergence).
    Corrupt {
        /// Offending file.
        path: PathBuf,
        /// What was wrong with it.
        reason: String,
    },
    /// The checkpoint was written by a newer format than this build reads.
    UnsupportedVersion {
        /// Offending file.
        path: PathBuf,
        /// Version found.
        version: u64,
    },
    /// The directory holds no usable checkpoint.
    NoCheckpoint {
        /// Directory searched.
        dir: PathBuf,
    },
    /// The recovered state is internally consistent but does not fit the
    /// scenario it claims to belong to.
    State {
        /// What did not fit.
        reason: String,
    },
    /// A recovered state that believes itself healthy fails the physical
    /// power-cap/redline invariants.
    InvariantViolation {
        /// The violated invariant.
        reason: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Corrupt { path, reason } => {
                write!(f, "corrupt file {}: {reason}", path.display())
            }
            PersistError::UnsupportedVersion { path, version } => write!(
                f,
                "{}: format version {version} is newer than supported ({FORMAT_VERSION})",
                path.display()
            ),
            PersistError::NoCheckpoint { dir } => {
                write!(f, "no usable checkpoint in {}", dir.display())
            }
            PersistError::State { reason } => write!(f, "recovered state mismatch: {reason}"),
            PersistError::InvariantViolation { reason } => {
                write!(f, "recovered state violates invariants: {reason}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Checkpointing policy for a supervised run.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Checkpoint directory (created if missing).
    pub dir: PathBuf,
    /// Take a full snapshot every this many epochs (the journal records
    /// every epoch regardless). Clamped to ≥ 1.
    pub snapshot_interval: usize,
    /// Snapshot generations to retain (older ones are pruned). Clamped
    /// to ≥ 1.
    pub retain: usize,
    /// `fsync` journal appends and snapshots. Turn off only to measure
    /// the pure serialization overhead — without it a crash can lose
    /// acknowledged epochs.
    pub durable: bool,
    /// `fsync` the journal only every this many appends (clamped to
    /// ≥ 1; 1 = every append, the strict write-ahead discipline).
    /// Batching trades the *power-loss* durability window for an
    /// order-of-magnitude append-latency win under high-frequency
    /// checkpointing; a process crash (SIGKILL) loses nothing either
    /// way, because written-but-unsynced pages survive in the OS cache.
    pub flush_every: usize,
}

impl CheckpointConfig {
    /// Defaults: snapshot every 8 epochs, keep 3 generations, durable,
    /// fsync every append.
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointConfig {
        CheckpointConfig {
            dir: dir.into(),
            snapshot_interval: 8,
            retain: 3,
            durable: true,
            flush_every: 1,
        }
    }
}

// ---- Framed journal primitives ---------------------------------------------
//
// Shared by the supervisor checkpoint trail and the service daemon's
// admission journal: every line is `XXXXXXXX <json>\n` with a CRC-32
// over the JSON bytes, so a torn or bit-flipped tail is detectable
// byte-for-byte and recovery can truncate to the last good record.

/// Frame one JSON payload as a CRC'd journal line (newline included).
pub fn frame_journal_line(json: &str) -> String {
    format!("{:08x} {json}\n", crc32(json.as_bytes()))
}

/// Parse one framed line (`XXXXXXXX <json>`, no newline) into `T`, or
/// `None` on bad framing, CRC mismatch, or a payload `T` rejects.
pub fn parse_framed_line<T: Deserialize>(line: &[u8]) -> Option<T> {
    if line.len() < 10 || line[8] != b' ' {
        return None;
    }
    let crc_hex = std::str::from_utf8(&line[..8]).ok()?;
    let want = u32::from_str_radix(crc_hex, 16).ok()?;
    let json = &line[9..];
    if crc32(json) != want {
        return None;
    }
    let text = std::str::from_utf8(json).ok()?;
    serde_json::from_str::<T>(text).ok()
}

/// Read a framed journal's valid prefix: every complete, CRC-clean line
/// whose payload parses as `T`. Returns the records, the byte length of
/// the valid prefix, and the file's total length. Missing file = empty
/// journal.
pub fn read_framed_journal<T: Deserialize>(path: &Path) -> Result<(Vec<T>, u64, u64), PersistError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0, 0)),
        Err(e) => return Err(e.into()),
    };
    let mut records = Vec::new();
    let mut valid = 0usize;
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
            break; // no terminator: torn final line
        };
        let line = &bytes[pos..pos + nl];
        let Some(rec) = parse_framed_line::<T>(line) else {
            break; // bad framing, CRC, or JSON: stop at the last good record
        };
        records.push(rec);
        pos += nl + 1;
        valid = pos;
    }
    Ok((records, valid as u64, bytes.len() as u64))
}

/// Truncate a journal to its valid prefix (as measured by
/// [`read_framed_journal`]) and fsync the truncation.
pub fn truncate_journal(path: &Path, valid_len: u64) -> Result<(), PersistError> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(valid_len)?;
    f.sync_all()?;
    Ok(())
}

/// An append-only CRC-framed journal with batched fsyncs.
///
/// Each [`append`](JournalWriter::append) writes one framed line;
/// `flush_every` controls how many appends may accumulate before an
/// fsync (1 = sync every append). [`sync`](JournalWriter::sync) forces
/// the barrier early — callers that acknowledge work to a client must
/// call it before the ack, which is what makes batching safe: the
/// durability window only covers *unacknowledged* writes.
pub struct JournalWriter {
    file: fs::File,
    durable: bool,
    flush_every: usize,
    pending: usize,
}

impl JournalWriter {
    /// Start a fresh journal at `path` (truncating any existing file).
    pub fn create(path: &Path, durable: bool, flush_every: usize) -> io::Result<JournalWriter> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(JournalWriter::with_file(file, durable, flush_every))
    }

    /// Reattach to an existing journal at `path` for append.
    pub fn open_append(path: &Path, durable: bool, flush_every: usize) -> io::Result<JournalWriter> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JournalWriter::with_file(file, durable, flush_every))
    }

    fn with_file(file: fs::File, durable: bool, flush_every: usize) -> JournalWriter {
        JournalWriter {
            file,
            durable,
            flush_every: flush_every.max(1),
            pending: 0,
        }
    }

    /// Append one record as a framed line; fsync if the batch is full.
    pub fn append<T: Serialize>(&mut self, rec: &T) -> Result<(), PersistError> {
        let json = serde_json::to_string(rec)
            .map_err(|e| PersistError::State { reason: e.to_string() })?;
        let line = frame_journal_line(&json);
        let start = thermaware_obs::enabled().then(std::time::Instant::now);
        self.file.write_all(line.as_bytes())?;
        self.pending += 1;
        if self.durable && self.pending >= self.flush_every {
            self.sync()?;
        }
        if let Some(t) = start {
            thermaware_obs::observe("persist.journal_append_us", t.elapsed().as_micros() as f64);
        }
        Ok(())
    }

    /// Force the fsync barrier now (no-op when nothing is pending or the
    /// journal is non-durable).
    pub fn sync(&mut self) -> Result<(), PersistError> {
        if !self.durable || self.pending == 0 {
            return Ok(());
        }
        let start = thermaware_obs::enabled().then(std::time::Instant::now);
        self.file.sync_all()?;
        self.pending = 0;
        if let Some(t) = start {
            thermaware_obs::counter_add("persist.fsyncs", 1);
            thermaware_obs::observe("persist.fsync_us", t.elapsed().as_micros() as f64);
        }
        Ok(())
    }

    /// Appends not yet covered by an fsync barrier.
    pub fn pending(&self) -> usize {
        self.pending
    }
}

/// The immutable description of a checkpointed run, written once to
/// `run.json`: everything needed to rebuild the data center and re-attach
/// recovered state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunHeader {
    /// The full scenario (floor, coefficients, workload, budget).
    pub scenario: ScenarioSnapshot,
    /// Supervisor configuration, arrival seed included.
    pub cfg: SupervisorConfig,
    /// The initial three-stage plan.
    pub plan: ThreeStageSolution,
    /// The fault script driving the run.
    pub script: crate::fault::FaultScript,
}

/// One write-ahead journal record.
#[derive(Debug, Clone, PartialEq)]
enum JournalRecord {
    /// Appended (and fsynced) *before* epoch `epoch` executes.
    Begin {
        epoch: usize,
        faults: Vec<FaultEvent>,
    },
    /// Appended after epoch `epoch` executed: the CRC-32 of the
    /// post-epoch [`SupervisorState`] JSON and the events the epoch
    /// appended to the log.
    Commit {
        epoch: usize,
        state_crc: u32,
        events: Vec<Event>,
    },
}

impl Serialize for JournalRecord {
    fn to_value(&self) -> Value {
        match self {
            JournalRecord::Begin { epoch, faults } => Value::Object(vec![
                ("rec".to_string(), "begin".to_value()),
                ("epoch".to_string(), epoch.to_value()),
                ("faults".to_string(), faults.to_value()),
            ]),
            JournalRecord::Commit {
                epoch,
                state_crc,
                events,
            } => Value::Object(vec![
                ("rec".to_string(), "commit".to_value()),
                ("epoch".to_string(), epoch.to_value()),
                ("state_crc".to_string(), state_crc.to_value()),
                ("events".to_string(), events.to_value()),
            ]),
        }
    }
}

impl Deserialize for JournalRecord {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("journal record: expected object"))?;
        let rec: String = serde::field(entries, "rec")?;
        match rec.as_str() {
            "begin" => Ok(JournalRecord::Begin {
                epoch: serde::field(entries, "epoch")?,
                faults: serde::field(entries, "faults")?,
            }),
            "commit" => Ok(JournalRecord::Commit {
                epoch: serde::field(entries, "epoch")?,
                state_crc: serde::field(entries, "state_crc")?,
                events: serde::field(entries, "events")?,
            }),
            other => Err(serde::Error::custom(format!(
                "journal record: unknown rec '{other}'"
            ))),
        }
    }
}

/// Writes the journal and snapshots for one run. Create with
/// [`Checkpointer::create`] (fresh run) or [`Checkpointer::reopen`]
/// (continue an existing directory after [`resume`]).
pub struct Checkpointer {
    cfg: CheckpointConfig,
    journal: JournalWriter,
}

impl Checkpointer {
    /// Initialize a fresh checkpoint directory: write `run.json`, start
    /// an empty journal, and leave any stale snapshots to be overwritten.
    pub fn create(
        cfg: CheckpointConfig,
        dc: &DataCenter,
        sup_cfg: &SupervisorConfig,
        plan: &ThreeStageSolution,
        script: &crate::fault::FaultScript,
    ) -> Result<Checkpointer, PersistError> {
        fs::create_dir_all(&cfg.dir)?;
        // Clear snapshots from any previous run in this directory so
        // recovery cannot mix generations.
        for path in snapshot_paths(&cfg.dir)? {
            fs::remove_file(path.1)?;
        }
        let header = RunHeader {
            scenario: ScenarioSnapshot::capture(dc),
            cfg: *sup_cfg,
            plan: plan.clone(),
            script: script.clone(),
        };
        let envelope = Value::Object(vec![
            ("version".to_string(), FORMAT_VERSION.to_value()),
            ("header".to_string(), header.to_value()),
        ]);
        let json = serde_json::to_string(&envelope)
            .map_err(|e| PersistError::State { reason: e.to_string() })?;
        atomic_write(&cfg.dir.join(RUN_FILE), json.as_bytes(), cfg.durable)?;
        let journal = JournalWriter::create(&cfg.dir.join(JOURNAL_FILE), cfg.durable, cfg.flush_every)?;
        Ok(Checkpointer { cfg, journal })
    }

    /// Reattach to an existing checkpoint directory (after [`resume`]):
    /// the journal is opened for append, `run.json` is left untouched.
    pub fn reopen(cfg: CheckpointConfig) -> Result<Checkpointer, PersistError> {
        let journal =
            JournalWriter::open_append(&cfg.dir.join(JOURNAL_FILE), cfg.durable, cfg.flush_every)?;
        Ok(Checkpointer { cfg, journal })
    }

    /// Write a full snapshot of `state` (already serialized as
    /// `state_json`) for epoch `epoch`, then prune old generations.
    fn write_snapshot(
        &mut self,
        epoch: usize,
        state_json: &str,
        state_crc: u32,
    ) -> Result<(), PersistError> {
        let envelope = Value::Object(vec![
            ("version".to_string(), FORMAT_VERSION.to_value()),
            ("epoch".to_string(), epoch.to_value()),
            ("state_crc".to_string(), state_crc.to_value()),
            ("state".to_string(), state_json.to_value()),
        ]);
        let json = serde_json::to_string(&envelope)
            .map_err(|e| PersistError::State { reason: e.to_string() })?;
        let name = format!("{SNAP_PREFIX}{epoch:08}{SNAP_SUFFIX}");
        let start = thermaware_obs::enabled().then(std::time::Instant::now);
        atomic_write(&self.cfg.dir.join(name), json.as_bytes(), self.cfg.durable)?;
        if let Some(t) = start {
            thermaware_obs::counter_add("persist.snapshots", 1);
            thermaware_obs::observe("persist.snapshot_write_us", t.elapsed().as_micros() as f64);
        }
        // Retention: newest `retain` generations survive.
        let mut snaps = snapshot_paths(&self.cfg.dir)?;
        let retain = self.cfg.retain.max(1);
        if snaps.len() > retain {
            snaps.sort_by_key(|(e, _)| *e);
            for (_, path) in snaps.iter().take(snaps.len() - retain) {
                fs::remove_file(path)?;
            }
        }
        Ok(())
    }

    /// Snapshot a run at its current epoch boundary.
    pub fn snapshot(&mut self, live: &LiveRun<'_>) -> Result<(), PersistError> {
        let state = live.to_state();
        let json = serde_json::to_string(&state)
            .map_err(|e| PersistError::State { reason: e.to_string() })?;
        self.write_snapshot(live.epoch(), &json, crc32(json.as_bytes()))
    }

    /// Execute one epoch under write-ahead journaling: *begin* record
    /// (fsynced) → [`LiveRun::step`] → *commit* record → snapshot when
    /// the interval (or the horizon) is reached. Returns `false` once the
    /// run is done.
    pub fn run_epoch(&mut self, live: &mut LiveRun<'_>) -> Result<bool, PersistError> {
        if live.is_done() {
            return Ok(false);
        }
        let epoch = live.epoch();
        self.journal.append(&JournalRecord::Begin {
            epoch,
            faults: live.due_faults(),
        })?;
        let log_before = live.log().events().len();
        live.step();
        let state = live.to_state();
        let json = serde_json::to_string(&state)
            .map_err(|e| PersistError::State { reason: e.to_string() })?;
        let state_crc = crc32(json.as_bytes());
        self.journal.append(&JournalRecord::Commit {
            epoch,
            state_crc,
            events: live.log().events_since(log_before).to_vec(),
        })?;
        let interval = self.cfg.snapshot_interval.max(1);
        if live.epoch().is_multiple_of(interval) || live.is_done() {
            // The snapshot must never outrun the journal: drain any
            // batched appends before the (fsynced) snapshot rename.
            self.journal.sync()?;
            self.write_snapshot(live.epoch(), &json, state_crc)?;
        }
        Ok(true)
    }
}

/// Run a supervised plan to completion under durable checkpointing.
/// Equivalent to [`Supervisor::run`] plus a recoverable trail in
/// `ckpt.dir`.
pub fn run_checkpointed(
    dc: &DataCenter,
    cfg: SupervisorConfig,
    plan: &ThreeStageSolution,
    script: &crate::fault::FaultScript,
    ckpt: &CheckpointConfig,
) -> Result<SupervisorReport, PersistError> {
    run_checkpointed_until(dc, cfg, plan, script, ckpt, usize::MAX)
        .map(|r| r.unwrap_or_else(|| unreachable!("usize::MAX epochs always completes")))
}

/// Like [`run_checkpointed`], but stop (as if the process died) after at
/// most `stop_after` epochs. Returns `Ok(None)` when stopped early —
/// nothing is flushed beyond what the write-ahead protocol already made
/// durable, which is exactly what a crash leaves behind.
pub fn run_checkpointed_until(
    dc: &DataCenter,
    cfg: SupervisorConfig,
    plan: &ThreeStageSolution,
    script: &crate::fault::FaultScript,
    ckpt: &CheckpointConfig,
    stop_after: usize,
) -> Result<Option<SupervisorReport>, PersistError> {
    let sup = Supervisor::new(dc, cfg);
    let mut live = sup.begin(plan, script);
    let mut cp = Checkpointer::create(ckpt.clone(), dc, &cfg, plan, script)?;
    // Epoch-0 snapshot: the directory is recoverable from the first
    // instant, before any epoch has run.
    cp.snapshot(&live)?;
    let mut executed = 0usize;
    while !live.is_done() {
        if executed >= stop_after {
            return Ok(None);
        }
        cp.run_epoch(&mut live)?;
        executed += 1;
    }
    Ok(Some(live.conclude()))
}

/// What [`resume`] found and did.
#[derive(Debug, Clone)]
pub struct RecoveryInfo {
    /// Epoch of the snapshot recovery started from.
    pub snapshot_epoch: usize,
    /// Corrupt snapshot generations that had to be skipped.
    pub snapshots_skipped: usize,
    /// Committed epochs re-executed from the journal.
    pub replayed_epochs: usize,
    /// Bytes of torn/corrupt journal tail truncated away.
    pub truncated_bytes: u64,
    /// Epoch the run resumes at.
    pub resume_epoch: usize,
    /// Did the recovered assignment satisfy the physical power-cap and
    /// redline invariants? (Checked strictly — i.e. an error instead of
    /// `false` — only when the state believes itself healthy.)
    pub feasible: bool,
    /// Worst redline violation of the recovered assignment, °C (≤ 0 is
    /// safe).
    pub worst_redline_violation_c: f64,
    /// Power headroom of the recovered assignment, kW (≥ 0 is safe).
    pub power_headroom_kw: f64,
}

/// A run brought back from disk: the rebuilt data center, the original
/// header, and the replayed state. Call [`RecoveredRun::live`] to
/// continue it.
#[derive(Debug)]
pub struct RecoveredRun {
    /// The data center, rebuilt from the scenario snapshot.
    pub dc: DataCenter,
    /// The immutable run description (`run.json`).
    pub header: RunHeader,
    /// Execution state at the recovered epoch boundary.
    pub state: SupervisorState,
    /// What recovery found and did.
    pub info: RecoveryInfo,
}

impl RecoveredRun {
    /// Reattach the recovered state to the data center as a [`LiveRun`].
    pub fn live(&self) -> Result<LiveRun<'_>, PersistError> {
        LiveRun::from_state(&self.dc, &self.header.script, self.state.clone())
            .map_err(|reason| PersistError::State { reason })
    }

    /// Run the recovered state to completion without further
    /// checkpointing and return the report.
    pub fn finish(&self) -> Result<SupervisorReport, PersistError> {
        let mut live = self.live()?;
        while live.step() {}
        Ok(live.conclude())
    }

    /// Continue the recovered run to completion *with* checkpointing:
    /// the journal in `ckpt.dir` is appended to, snapshots resume on the
    /// configured interval.
    pub fn finish_checkpointed(
        &self,
        ckpt: &CheckpointConfig,
    ) -> Result<SupervisorReport, PersistError> {
        let mut live = self.live()?;
        let mut cp = Checkpointer::reopen(ckpt.clone())?;
        while cp.run_epoch(&mut live)? {}
        Ok(live.conclude())
    }
}

/// Recover a checkpointed run from `dir`.
///
/// 1. Load and version-gate `run.json`; rebuild the [`DataCenter`] from
///    its scenario snapshot (fully re-validated — a corrupted scenario is
///    a typed error, not a later panic).
/// 2. Load the newest snapshot whose CRC verifies, skipping corrupt
///    generations.
/// 3. Read the journal's valid prefix; a torn or corrupt tail (partial
///    line, bad CRC, bad JSON) is truncated off the file.
/// 4. Re-execute every epoch the journal committed after the snapshot,
///    checking the recomputed state CRC against each commit record.
/// 5. Verify the recovered assignment against the physical model: when
///    the state believes itself healthy an infeasible assignment is a
///    [`PersistError::InvariantViolation`]; degraded states record the
///    check in [`RecoveryInfo`] instead.
pub fn resume(dir: &Path) -> Result<RecoveredRun, PersistError> {
    // -- 1. Header ---------------------------------------------------------
    let run_path = dir.join(RUN_FILE);
    let text = match fs::read_to_string(&run_path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Err(PersistError::NoCheckpoint { dir: dir.to_path_buf() })
        }
        Err(e) => return Err(e.into()),
    };
    let v: Value = serde_json::from_str(&text).map_err(|e| PersistError::Corrupt {
        path: run_path.clone(),
        reason: e.to_string(),
    })?;
    let version = version_of(&v, &run_path)?;
    if version > FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion { path: run_path, version });
    }
    let header: RunHeader = v
        .get("header")
        .ok_or_else(|| PersistError::Corrupt {
            path: run_path.clone(),
            reason: "missing 'header'".to_string(),
        })
        .and_then(|h| {
            RunHeader::from_value(h).map_err(|e| PersistError::Corrupt {
                path: run_path.clone(),
                reason: e.to_string(),
            })
        })?;
    let dc = header
        .scenario
        .clone()
        .restore()
        .map_err(|e| PersistError::Corrupt {
            path: run_path.clone(),
            reason: format!("scenario does not restore: {e}"),
        })?;

    // -- 2. Newest valid snapshot -----------------------------------------
    let mut snaps = snapshot_paths(dir)?;
    snaps.sort_by_key(|(e, _)| *e);
    let mut snapshots_skipped = 0usize;
    let mut recovered: Option<(SupervisorState, usize)> = None;
    for (epoch, path) in snaps.iter().rev() {
        match load_snapshot(path) {
            Ok((state, snap_epoch)) if snap_epoch == *epoch => {
                recovered = Some((state, snap_epoch));
                break;
            }
            Ok((_, snap_epoch)) => {
                // File name and payload disagree: treat as corrupt.
                let _ = snap_epoch;
                snapshots_skipped += 1;
            }
            Err(PersistError::UnsupportedVersion { path, version }) => {
                return Err(PersistError::UnsupportedVersion { path, version })
            }
            Err(_) => snapshots_skipped += 1,
        }
    }
    let Some((state, snapshot_epoch)) = recovered else {
        return Err(PersistError::NoCheckpoint { dir: dir.to_path_buf() });
    };

    // -- 3. Journal valid prefix (truncate the torn tail) ------------------
    let journal_path = dir.join(JOURNAL_FILE);
    let (records, valid_len, file_len) = read_framed_journal::<JournalRecord>(&journal_path)?;
    let truncated_bytes = file_len - valid_len;
    if truncated_bytes > 0 {
        truncate_journal(&journal_path, valid_len)?;
    }

    // -- 4. Deterministic replay of committed epochs -----------------------
    let mut live =
        LiveRun::from_state(&dc, &header.script, state).map_err(|reason| PersistError::State {
            reason: format!("snapshot at epoch {snapshot_epoch}: {reason}"),
        })?;
    let mut replayed_epochs = 0usize;
    for rec in &records {
        let JournalRecord::Commit { epoch, state_crc, .. } = rec else {
            continue; // a begin without a commit is a crash mid-epoch
        };
        if *epoch < live.epoch() {
            continue; // already covered by the snapshot
        }
        if *epoch > live.epoch() {
            return Err(PersistError::Corrupt {
                path: journal_path.clone(),
                reason: format!(
                    "journal gap: commit for epoch {epoch} but replay is at {}",
                    live.epoch()
                ),
            });
        }
        live.step();
        let json = serde_json::to_string(&live.to_state())
            .map_err(|e| PersistError::State { reason: e.to_string() })?;
        if crc32(json.as_bytes()) != *state_crc {
            return Err(PersistError::Corrupt {
                path: journal_path.clone(),
                reason: format!("replay of epoch {epoch} diverged from the committed state CRC"),
            });
        }
        replayed_epochs += 1;
    }

    // -- 5. Physical invariant check ---------------------------------------
    let view = live.world_view();
    let mut pstates = view.pstates.to_vec();
    for (node, &dead) in view.dead.iter().enumerate() {
        if dead {
            let off = dc.node_type(node).core.pstates.off_index();
            for k in dc.cores_of_node(node) {
                pstates[k] = off;
            }
        }
    }
    // A stale plan can carry rates for cores that have since been
    // throttled to their off state; verifying those against the current
    // P-states would be meaningless (and trips a debug assertion in
    // `verify_assignment`). Rates are checked only when they are
    // consistent with the assignment being verified.
    let rates_consistent = (0..dc.n_cores()).all(|k| {
        let nt = dc.core_type(k);
        (0..dc.n_task_types())
            .all(|i| view.stage3.tc(i, k) <= 0.0 || dc.workload.ecs.ecs(i, nt, pstates[k]) > 0.0)
    });
    let rates = if rates_consistent {
        Some(view.stage3)
    } else {
        None
    };
    let report = verify_assignment(&dc, view.outlets, &pstates, rates);
    let feasible = report.is_feasible();
    if !feasible && view.believes_healthy() {
        return Err(PersistError::InvariantViolation {
            reason: format!(
                "state claims health but verification found redline {:+.3} °C, headroom {:+.3} kW",
                report.worst_redline_violation_c, report.power_headroom_kw
            ),
        });
    }
    let info = RecoveryInfo {
        snapshot_epoch,
        snapshots_skipped,
        replayed_epochs,
        truncated_bytes,
        resume_epoch: live.epoch(),
        feasible,
        worst_redline_violation_c: report.worst_redline_violation_c,
        power_headroom_kw: report.power_headroom_kw,
    };
    let state = live.to_state();
    Ok(RecoveredRun {
        dc,
        header,
        state,
        info,
    })
}

/// `(epoch, path)` of every `snap-*.json` in `dir`.
fn snapshot_paths(dir: &Path) -> Result<Vec<(usize, PathBuf)>, PersistError> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(middle) = name
            .strip_prefix(SNAP_PREFIX)
            .and_then(|s| s.strip_suffix(SNAP_SUFFIX))
        else {
            continue;
        };
        let Ok(epoch) = middle.parse::<usize>() else {
            continue;
        };
        out.push((epoch, entry.path()));
    }
    Ok(out)
}

fn version_of(v: &Value, path: &Path) -> Result<u64, PersistError> {
    v.get("version")
        .and_then(|x| x.as_f64())
        .filter(|x| x.is_finite() && *x >= 0.0 && x.fract() == 0.0) // lint: allow(float-eq): integrality check on a parsed JSON number; exactness is the point
        .map(|x| x as u64)
        .ok_or_else(|| PersistError::Corrupt {
            path: path.to_path_buf(),
            reason: "missing or non-integral 'version'".to_string(),
        })
}

/// Parse one snapshot file: version gate, CRC check (format ≥ 2), state
/// decode. Returns the state and the epoch the envelope claims.
fn load_snapshot(path: &Path) -> Result<(SupervisorState, usize), PersistError> {
    let corrupt = |reason: String| PersistError::Corrupt {
        path: path.to_path_buf(),
        reason,
    };
    let text = fs::read_to_string(path)?;
    let v: Value = serde_json::from_str(&text).map_err(|e| corrupt(e.to_string()))?;
    let version = version_of(&v, path)?;
    if version > FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            path: path.to_path_buf(),
            version,
        });
    }
    let epoch = v
        .get("epoch")
        .and_then(|x| x.as_f64())
        .filter(|x| x.is_finite() && *x >= 0.0 && x.fract() == 0.0) // lint: allow(float-eq): integrality check on a parsed JSON number; exactness is the point
        .map(|x| x as usize)
        .ok_or_else(|| corrupt("missing or non-integral 'epoch'".to_string()))?;
    let state_json = v
        .get("state")
        .and_then(|x| x.as_str())
        .ok_or_else(|| corrupt("missing 'state'".to_string()))?;
    if version >= 2 {
        let want = v
            .get("state_crc")
            .and_then(|x| x.as_f64())
            .filter(|x| x.is_finite() && *x >= 0.0 && x.fract() == 0.0) // lint: allow(float-eq): integrality check on a parsed JSON number; exactness is the point
            .map(|x| x as u32)
            .ok_or_else(|| corrupt("missing 'state_crc'".to_string()))?;
        let got = crc32(state_json.as_bytes());
        if got != want {
            return Err(corrupt(format!(
                "state CRC mismatch: stored {want:08x}, computed {got:08x}"
            )));
        }
    }
    let state: SupervisorState =
        serde_json::from_str(state_json).map_err(|e| corrupt(e.to_string()))?;
    if state.epoch != epoch {
        return Err(corrupt(format!(
            "envelope epoch {epoch} disagrees with state epoch {}",
            state.epoch
        )));
    }
    Ok((state, epoch))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn journal_line_round_trips_and_rejects_flips() {
        let rec = JournalRecord::Begin {
            epoch: 3,
            faults: Vec::new(),
        };
        let json = serde_json::to_string(&rec).expect("json");
        let mut line = frame_journal_line(&json);
        assert_eq!(line.pop(), Some('\n'));
        let parsed: JournalRecord = parse_framed_line(line.as_bytes()).expect("parse");
        assert_eq!(parsed, rec);
        // Flip one payload byte: the CRC must catch it.
        let mut bad = line.into_bytes();
        let last = bad.len() - 2;
        bad[last] ^= 0x01;
        assert!(parse_framed_line::<JournalRecord>(&bad).is_none());
    }

    /// A batched writer must leave exactly the same bytes on disk as the
    /// sync-every-append writer — batching only moves the fsync barrier.
    #[test]
    fn batched_journal_writes_identical_bytes() {
        let dir = std::env::temp_dir().join("thermaware-persist-flushbatch");
        fs::create_dir_all(&dir).expect("mkdir");
        let strict_path = dir.join("strict.jsonl");
        let batched_path = dir.join("batched.jsonl");
        let recs: Vec<JournalRecord> = (0..10)
            .map(|i| JournalRecord::Begin { epoch: i, faults: Vec::new() })
            .collect();
        let mut strict = JournalWriter::create(&strict_path, true, 1).expect("create");
        let mut batched = JournalWriter::create(&batched_path, true, 4).expect("create");
        for rec in &recs {
            strict.append(rec).expect("append");
            batched.append(rec).expect("append");
        }
        assert!(batched.pending() > 0, "batching should defer some fsyncs");
        batched.sync().expect("sync");
        assert_eq!(batched.pending(), 0);
        let a = fs::read(&strict_path).expect("read");
        let b = fs::read(&batched_path).expect("read");
        assert_eq!(a, b);
        let (parsed, valid, total) =
            read_framed_journal::<JournalRecord>(&batched_path).expect("read journal");
        assert_eq!(parsed, recs);
        assert_eq!(valid, total);
        let _ = fs::remove_file(&strict_path);
        let _ = fs::remove_file(&batched_path);
    }

    #[test]
    fn version_gate_rejects_future_formats() {
        let dir = std::env::temp_dir().join("thermaware-persist-vergate");
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("snap-00000001.json");
        fs::write(&path, br#"{"version":99,"epoch":1,"state_crc":0,"state":"{}"}"#)
            .expect("write");
        match load_snapshot(&path) {
            Err(PersistError::UnsupportedVersion { version, .. }) => assert_eq!(version, 99),
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        let _ = fs::remove_file(&path);
    }
}
