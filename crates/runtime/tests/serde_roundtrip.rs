//! JSON round-trip properties for every type the checkpoint layer
//! persists: the plan, the fault script, and the full mid-flight
//! supervisor state. Equality must be exact (`PartialEq` on the decoded
//! value), not approximate — bit-identical resume depends on it.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;
use thermaware_core::{solve_three_stage, ThreeStageOptions, ThreeStageSolution};
use thermaware_datacenter::{DataCenter, ScenarioParams};
use thermaware_runtime::{FaultScript, Supervisor, SupervisorConfig, SupervisorState};

const HORIZON_S: f64 = 8.0;

fn scenario() -> &'static (DataCenter, ThreeStageSolution) {
    static SCENARIO: OnceLock<(DataCenter, ThreeStageSolution)> = OnceLock::new();
    SCENARIO.get_or_init(|| {
        let dc = ScenarioParams {
            n_nodes: 8,
            n_crac: 2,
            ..ScenarioParams::small_test()
        }
        .build(1)
        .expect("scenario");
        let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("plan");
        (dc, plan)
    })
}

#[test]
fn plan_round_trips_exactly() {
    let (_, plan) = scenario();
    let json = serde_json::to_string(plan).expect("encode plan");
    let back: ThreeStageSolution = serde_json::from_str(&json).expect("decode plan");
    assert_eq!(&back, plan);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fault_script_round_trips_exactly(
        script_seed in 0u64..1_000_000,
        n_events in 0usize..12,
    ) {
        let (dc, _) = scenario();
        let mut rng = StdRng::seed_from_u64(script_seed);
        let script =
            FaultScript::random(&mut rng, n_events, HORIZON_S, dc.n_crac(), dc.n_nodes());
        let json = serde_json::to_string(&script).expect("encode script");
        let back: FaultScript = serde_json::from_str(&json).expect("decode script");
        prop_assert_eq!(&back, &script);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Mid-flight supervisor state — event log, live simulation, world,
    /// backoff counters — survives JSON exactly, and a run reattached
    /// from the decoded state finishes identically to the original.
    #[test]
    fn supervisor_state_round_trips_and_resumes_exactly(
        script_seed in 0u64..1_000_000,
        n_events in 0usize..6,
        arrival_seed in 0u64..1_000,
        pause_epoch in 0usize..8,
    ) {
        let (dc, plan) = scenario();
        let mut rng = StdRng::seed_from_u64(script_seed);
        let script =
            FaultScript::random(&mut rng, n_events, HORIZON_S, dc.n_crac(), dc.n_nodes());
        let cfg = SupervisorConfig {
            horizon_s: HORIZON_S,
            seed: arrival_seed,
            ..SupervisorConfig::default()
        };
        let sup = Supervisor::new(dc, cfg);

        let baseline = sup.run(plan, &script);

        let mut live = sup.begin(plan, &script);
        for _ in 0..pause_epoch {
            live.step();
        }
        let state = live.to_state();
        let json = serde_json::to_string(&state).expect("encode state");
        let back: SupervisorState = serde_json::from_str(&json).expect("decode state");
        prop_assert_eq!(&back, &state);

        // Re-encoding the decoded state is byte-stable (the CRC the
        // journal stores is well-defined).
        let json2 = serde_json::to_string(&back).expect("re-encode state");
        prop_assert_eq!(&json2, &json);

        let mut resumed = thermaware_runtime::LiveRun::from_state(dc, &script, back)
            .expect("reattach state");
        while resumed.step() {}
        let report = resumed.conclude();
        prop_assert_eq!(report.outcome, baseline.outcome);
        prop_assert_eq!(report.sim.reward_collected, baseline.sim.reward_collected);
        prop_assert_eq!(&report.log, &baseline.log);
    }
}
