//! Properties of the chip-level migration rung.
//!
//! Migration is the degradation rung between throttle and shed: it
//! permutes P-states *within* each node, so node power totals — and with
//! them every room-level redline and the Eq.-18 power cap — are exactly
//! invariant, and no reward is shed. These tests pin that contract:
//!
//! 1. For any assignment and any inlet profile, `migrate_to_tspd` never
//!    raises the fleet peak and never moves a watt between nodes.
//! 2. Under seeded chaos with a hot chip attached, the supervisor logs a
//!    `ChipHotspot` violation and answers it with `Migrate` (or the
//!    targeted chip throttle) before ever reaching for load shedding,
//!    and still ends in a typed outcome.
//! 3. A chip model that never trips leaves a run bit-identical to
//!    running with no chip model at all.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;
use thermaware_core::{solve_three_stage, ThreeStageOptions, ThreeStageSolution};
use thermaware_datacenter::{DataCenter, ScenarioParams};
use thermaware_runtime::{
    migrate_to_tspd, Action, EventKind, FaultScript, Supervisor, SupervisorConfig, Violation,
};
use thermaware_thermal::{ChipModel, ChipParams};

const HORIZON_S: f64 = 10.0;

/// One solved scenario shared across cases (building and planning is the
/// expensive part; the properties are about the migration rung).
fn scenario() -> &'static (DataCenter, ThreeStageSolution) {
    static SCENARIO: OnceLock<(DataCenter, ThreeStageSolution)> = OnceLock::new();
    SCENARIO.get_or_init(|| {
        let dc = ScenarioParams {
            n_nodes: 8,
            n_crac: 2,
            ..ScenarioParams::small_test()
        }
        .build(1)
        .expect("scenario");
        let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("plan");
        (dc, plan)
    })
}

fn chip_for(dc: &DataCenter, t_dtm_c: f64) -> ChipModel {
    let cores: Vec<usize> = dc.node_types.iter().map(|t| t.cores_per_node).collect();
    ChipModel::build(&cores, &ChipParams { t_dtm_c, ..ChipParams::default() })
        .expect("chip model builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// TSPD/redline safety: migration never raises the fleet-wide die
    /// peak, and node power totals are invariant up to summation rounding
    /// (the per-core draws are a permutation; only the order of the sum
    /// changes) — so a plan that was room-feasible before the rung is
    /// room-feasible after it.
    #[test]
    fn migration_never_heats_and_never_moves_power(
        seed in 0u64..1_000_000,
        inlet_lo in 15.0f64..35.0,
        t_dtm in 20.0f64..120.0,
    ) {
        let (dc, plan) = scenario();
        let chip = chip_for(dc, t_dtm);
        let mut rng = StdRng::seed_from_u64(seed);

        let mut pstates = vec![0usize; plan.pstates.len()];
        for j in 0..dc.n_nodes() {
            let off = dc.node_type(j).core.pstates.off_index();
            for k in dc.cores_of_node(j) {
                pstates[k] = rng.gen_range(0..=off);
            }
        }
        let inlets: Vec<f64> =
            (0..dc.n_nodes()).map(|_| inlet_lo + rng.gen_range(0.0..10.0)).collect();

        let out = migrate_to_tspd(dc, &chip, &inlets, &pstates, 10_000, None);

        prop_assert!(
            out.peak_after_c <= out.peak_before_c + 1e-9,
            "peak rose: {} -> {}", out.peak_before_c, out.peak_after_c
        );
        if out.fits {
            prop_assert!(out.peak_after_c <= chip.t_dtm_c() + 1e-9);
        }
        let before = dc.node_powers_from_pstates(&pstates);
        let after = dc.node_powers_from_pstates(&out.pstates);
        for (j, (b, a)) in before.iter().zip(&after).enumerate() {
            prop_assert!(
                (b - a).abs() <= 1e-12 * (1.0 + b.abs()),
                "node {} power moved: {} -> {}", j, b, a
            );
        }
        for j in 0..dc.n_nodes() {
            let mut x: Vec<usize> = dc.cores_of_node(j).map(|k| pstates[k]).collect();
            let mut y: Vec<usize> = dc.cores_of_node(j).map(|k| out.pstates[k]).collect();
            x.sort_unstable();
            y.sort_unstable();
            prop_assert_eq!(x, y, "node {} P-state multiset changed", j);
        }
    }

    /// Seeded chaos with a hot chip attached: every run terminates in a
    /// typed outcome, and whenever a hotspot is detected the ladder
    /// answers it — `Migrate` or a targeted `Throttle` — before any
    /// shedding happens in the same run.
    #[test]
    fn chip_rung_fires_before_shedding_under_chaos(
        script_seed in 0u64..1_000_000,
        n_events in 0usize..5,
        t_dtm in 35.0f64..55.0,
    ) {
        let (dc, plan) = scenario();
        let chip = chip_for(dc, t_dtm);
        let mut rng = StdRng::seed_from_u64(script_seed);
        let script =
            FaultScript::random(&mut rng, n_events, HORIZON_S, dc.n_crac(), dc.n_nodes());
        let cfg = SupervisorConfig { horizon_s: HORIZON_S, ..SupervisorConfig::default() };
        let report = Supervisor::new(dc, cfg).with_chip(&chip).run(plan, &script);

        // Reaching here at all means no panic; the books must balance.
        prop_assert!(report.sim.reward_collected.is_finite());
        prop_assert!(report.sim.reward_collected >= 0.0);

        let events = report.log.events();
        let first_hotspot = events.iter().position(|e| {
            matches!(e.kind, EventKind::ViolationDetected(Violation::ChipHotspot { .. }))
        });
        let first_response = events.iter().position(|e| {
            matches!(
                e.kind,
                EventKind::ActionTaken(Action::Migrate { .. } | Action::Throttle { .. })
                    | EventKind::Backoff { .. }
            )
        });
        if let Some(h) = first_hotspot {
            let r = first_response.expect("a detected hotspot must be answered");
            prop_assert!(r > h, "response at {} must follow detection at {}", r, h);
            // The migration rung sits *above* shed on the ladder: no task
            // type may be shed before the first hotspot was answered.
            if let Some(s) = events.iter().position(|e| {
                matches!(e.kind, EventKind::ActionTaken(Action::ShedTaskType { .. }))
            }) {
                prop_assert!(s > r, "shed at {} before chip response at {}", s, r);
            }
        }
        // Every Migrate action reports real work.
        for e in events {
            if let EventKind::ActionTaken(Action::Migrate { swaps }) = &e.kind {
                prop_assert!(*swaps > 0, "a zero-swap migration must not be logged");
            }
        }
    }
}

/// A chip that never trips (DTM far above any reachable die temperature)
/// must leave the supervised run bit-identical to running with no chip
/// model attached — the rung is pay-for-what-you-use.
#[test]
fn never_tripping_chip_is_bit_identical_to_no_chip() {
    let (dc, plan) = scenario();
    let script = FaultScript::new().node_death(2.0, 0).arrival_surge(4.0, 1.4);
    let cfg = SupervisorConfig { horizon_s: 8.0, ..SupervisorConfig::default() };

    let base = Supervisor::new(dc, cfg).run(plan, &script);
    let chip = chip_for(dc, 1_000.0);
    let with = Supervisor::new(dc, cfg).with_chip(&chip).run(plan, &script);

    assert_eq!(base.outcome, with.outcome);
    assert_eq!(
        base.sim.reward_collected.to_bits(),
        with.sim.reward_collected.to_bits(),
        "reward must be bit-identical: {} vs {}",
        base.sim.reward_collected,
        with.sim.reward_collected
    );
    assert_eq!(base.log.events().len(), with.log.events().len());
    for (b, w) in base.log.events().iter().zip(with.log.events()) {
        assert_eq!(b, w);
    }
}

/// A hot chip plus a CRAC failure drives the inlet (die ambient) up until
/// the chip rung must fire: the log shows the hotspot and a migration or
/// targeted throttle answering it.
#[test]
fn crac_failure_trips_the_chip_rung() {
    let (dc, plan) = scenario();
    let chip = chip_for(dc, 40.0);
    let script = FaultScript::new().crac_failure(1.0, 0);
    let cfg = SupervisorConfig { horizon_s: HORIZON_S, ..SupervisorConfig::default() };
    let report = Supervisor::new(dc, cfg).with_chip(&chip).run(plan, &script);

    let events = report.log.events();
    let hotspot = events.iter().position(|e| {
        matches!(e.kind, EventKind::ViolationDetected(Violation::ChipHotspot { .. }))
    });
    let h = hotspot.expect("a 40 degree DTM under a CRAC failure must trip");
    assert!(
        events[h..].iter().any(|e| matches!(
            e.kind,
            EventKind::ActionTaken(Action::Migrate { .. } | Action::Throttle { .. })
        )),
        "the hotspot must be answered by migration or targeted throttle:\n{}",
        report.log
    );
}
