//! Crash-consistency properties of the checkpoint/restore layer:
//!
//! * **Kill-and-resume determinism** — a run killed at any epoch and
//!   recovered from disk finishes with exactly the event log, reward,
//!   and outcome of a run that was never interrupted.
//! * **Torn-write tolerance** — truncating the journal at *every byte
//!   offset* of its tail never panics the recoverer and never loses a
//!   committed-and-covered epoch beyond the torn record itself.
//! * **Snapshot fallback** — a corrupted newest snapshot generation is
//!   skipped; recovery falls back to an older one and replays forward.
//! * **Format versioning** — version-1 snapshots (no CRC) still load;
//!   future versions are rejected with a typed error.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use thermaware_core::{solve_three_stage, ThreeStageOptions, ThreeStageSolution};
use thermaware_datacenter::{DataCenter, ScenarioParams};
use thermaware_runtime::{
    resume, run_checkpointed, CheckpointConfig, FaultScript, PersistError, Supervisor,
    SupervisorConfig,
};
use thermaware_runtime::persist::run_checkpointed_until;

const HORIZON_S: f64 = 8.0;

fn scenario() -> &'static (DataCenter, ThreeStageSolution) {
    static SCENARIO: OnceLock<(DataCenter, ThreeStageSolution)> = OnceLock::new();
    SCENARIO.get_or_init(|| {
        let dc = ScenarioParams {
            n_nodes: 8,
            n_crac: 2,
            ..ScenarioParams::small_test()
        }
        .build(1)
        .expect("scenario");
        let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("plan");
        (dc, plan)
    })
}

fn cfg(seed: u64) -> SupervisorConfig {
    SupervisorConfig {
        horizon_s: HORIZON_S,
        seed,
        ..SupervisorConfig::default()
    }
}

/// A fresh, empty checkpoint directory under the target temp dir.
fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("thermaware-crash-{name}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn script_for(dc: &DataCenter, script_seed: u64, n_events: usize) -> FaultScript {
    let mut rng = StdRng::seed_from_u64(script_seed);
    FaultScript::random(&mut rng, n_events, HORIZON_S, dc.n_crac(), dc.n_nodes())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Kill at a random epoch, resume from disk, finish: the final event
    /// log, reward, and outcome must be bit-identical to an
    /// uninterrupted run of the same plan, script, and seed.
    #[test]
    fn killed_and_resumed_run_matches_uninterrupted(
        script_seed in 0u64..1_000_000,
        n_events in 0usize..6,
        arrival_seed in 0u64..1_000,
        kill_epoch in 0usize..8,
        interval in 1usize..4,
    ) {
        let (dc, plan) = scenario();
        let script = script_for(dc, script_seed, n_events);
        let sup_cfg = cfg(arrival_seed);
        let baseline = Supervisor::new(dc, sup_cfg).run(plan, &script);

        let dir = temp_dir(&format!(
            "kill-{script_seed}-{n_events}-{arrival_seed}-{kill_epoch}-{interval}"
        ));
        let ckpt = CheckpointConfig {
            snapshot_interval: interval,
            ..CheckpointConfig::new(&dir)
        };
        let stopped = run_checkpointed_until(dc, sup_cfg, plan, &script, &ckpt, kill_epoch)
            .expect("checkpointed run");
        prop_assert!(stopped.is_none(), "kill_epoch below the horizon must stop early");

        let rec = resume(&dir).expect("resume");
        prop_assert!(rec.info.resume_epoch <= kill_epoch);
        let report = rec.finish().expect("finish");

        prop_assert_eq!(report.outcome, baseline.outcome);
        prop_assert_eq!(report.sim.reward_collected, baseline.sim.reward_collected);
        prop_assert_eq!(report.sim.reward_rate, baseline.sim.reward_rate);
        prop_assert_eq!(report.final_violation_c, baseline.final_violation_c);
        prop_assert_eq!(report.final_power_kw, baseline.final_power_kw);
        prop_assert_eq!(report.nodes_dead, baseline.nodes_dead);
        prop_assert_eq!(&report.shed_task_types, &baseline.shed_task_types);
        prop_assert_eq!(&report.log, &baseline.log);

        let _ = fs::remove_dir_all(&dir);
    }
}

/// Checkpointed-to-completion runs also reproduce the plain run exactly
/// (the checkpointer only observes, never perturbs).
#[test]
fn checkpointed_run_equals_plain_run() {
    let (dc, plan) = scenario();
    let script = FaultScript::new().node_death(3.0, 0).arrival_surge(5.0, 1.5);
    let sup_cfg = cfg(7);
    let plain = Supervisor::new(dc, sup_cfg).run(plan, &script);

    let dir = temp_dir("full");
    let ckpt = CheckpointConfig::new(&dir);
    let checked = run_checkpointed(dc, sup_cfg, plan, &script, &ckpt).expect("run");
    assert_eq!(checked.outcome, plain.outcome);
    assert_eq!(checked.sim.reward_collected, plain.sim.reward_collected);
    assert_eq!(checked.log, plain.log);
    let _ = fs::remove_dir_all(&dir);
}

/// Truncate the journal at every byte offset within its final record
/// (and the record boundary itself): recovery must never panic, must
/// repair the file, and must land on an epoch no later than the last
/// fully committed one.
#[test]
fn torn_journal_tail_recovers_at_every_byte_offset() {
    let (dc, plan) = scenario();
    let script = FaultScript::new().node_death(2.0, 1).sensor_drift(4.0, 2.0);
    let sup_cfg = cfg(3);
    let dir = temp_dir("torn");
    let ckpt = CheckpointConfig {
        // One early snapshot only: recovery must lean on the journal.
        snapshot_interval: 100,
        ..CheckpointConfig::new(&dir)
    };
    let stopped =
        run_checkpointed_until(dc, sup_cfg, plan, &script, &ckpt, 6).expect("checkpointed run");
    assert!(stopped.is_none());

    let journal_path = dir.join("journal.jsonl");
    let full = fs::read(&journal_path).expect("read journal");
    let full_resume = resume(&dir).expect("resume intact");
    assert_eq!(full_resume.info.resume_epoch, 6);
    let expected_full = full_resume.finish().expect("finish intact");

    // Byte offsets spanning the last record, the one before it, and the
    // very start of the file (0 = empty journal, snapshot-only recovery).
    let last_line_start = full[..full.len() - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |p| p + 1);
    let mut offsets: Vec<usize> = (last_line_start..=full.len()).collect();
    offsets.push(0);
    offsets.push(last_line_start / 2);

    for &cut in &offsets {
        fs::write(&journal_path, &full[..cut]).expect("truncate journal");
        let rec = resume(&dir).unwrap_or_else(|e| panic!("resume at cut {cut}: {e}"));
        assert!(
            rec.info.resume_epoch <= 6,
            "cut {cut}: resumed past the stop epoch"
        );
        // The torn tail must be physically gone: resuming again sees a
        // clean journal and reports zero truncation.
        let again = resume(&dir).expect("second resume");
        assert_eq!(again.info.truncated_bytes, 0, "cut {cut}: tail not repaired");
        assert_eq!(again.info.resume_epoch, rec.info.resume_epoch);
        // And the recovered run still finishes with a typed outcome,
        // identical to the intact run (the arrivals are epoch-seeded, so
        // losing journal records only moves the resume point, not the
        // trajectory).
        let report = rec.finish().expect("finish after tear");
        assert_eq!(report.outcome, expected_full.outcome, "cut {cut}");
        assert_eq!(
            report.sim.reward_collected, expected_full.sim.reward_collected,
            "cut {cut}"
        );
        assert_eq!(report.log, expected_full.log, "cut {cut}");
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Corrupting the newest snapshot must fall back to an older generation
/// and replay the journal across the gap.
#[test]
fn corrupt_snapshot_falls_back_to_older_generation() {
    let (dc, plan) = scenario();
    let script = FaultScript::new().crac_failure(1.0, 0).crac_recovery(3.0, 0);
    let sup_cfg = cfg(11);
    let dir = temp_dir("snapfall");
    let ckpt = CheckpointConfig {
        snapshot_interval: 2,
        retain: 3,
        ..CheckpointConfig::new(&dir)
    };
    let stopped =
        run_checkpointed_until(dc, sup_cfg, plan, &script, &ckpt, 6).expect("checkpointed run");
    assert!(stopped.is_none());
    let expected = resume(&dir).expect("resume intact").finish().expect("finish");

    // Flip one byte inside the newest snapshot's payload.
    let newest = newest_snapshot(&dir);
    let mut bytes = fs::read(&newest).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] = bytes[mid].wrapping_add(1);
    fs::write(&newest, &bytes).expect("corrupt snapshot");

    let rec = resume(&dir).expect("resume with corrupt newest snapshot");
    assert!(rec.info.snapshots_skipped >= 1, "corruption went unnoticed");
    assert!(rec.info.snapshot_epoch < 6);
    assert_eq!(rec.info.resume_epoch, 6, "journal replay must close the gap");
    let report = rec.finish().expect("finish");
    assert_eq!(report.outcome, expected.outcome);
    assert_eq!(report.sim.reward_collected, expected.sim.reward_collected);
    assert_eq!(report.log, expected.log);
    let _ = fs::remove_dir_all(&dir);
}

/// Deleting every snapshot leaves nothing to recover from — a typed
/// `NoCheckpoint`, not a panic.
#[test]
fn no_snapshots_is_a_typed_error() {
    let (dc, plan) = scenario();
    let dir = temp_dir("nosnap");
    let ckpt = CheckpointConfig::new(&dir);
    let stopped = run_checkpointed_until(dc, cfg(1), plan, &FaultScript::new(), &ckpt, 3)
        .expect("checkpointed run");
    assert!(stopped.is_none());
    for entry in fs::read_dir(&dir).expect("read dir") {
        let path = entry.expect("entry").path();
        if path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("snap-"))
        {
            fs::remove_file(path).expect("remove snapshot");
        }
    }
    match resume(&dir) {
        Err(PersistError::NoCheckpoint { .. }) => {}
        other => panic!("expected NoCheckpoint, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

/// A version-1 snapshot (no `state_crc`) written by the previous format
/// still recovers; a future version is rejected.
#[test]
fn v1_snapshot_loads_and_future_version_is_rejected() {
    let (dc, plan) = scenario();
    let dir = temp_dir("v1");
    let ckpt = CheckpointConfig {
        snapshot_interval: 2,
        ..CheckpointConfig::new(&dir)
    };
    let stopped = run_checkpointed_until(dc, cfg(5), plan, &FaultScript::new(), &ckpt, 4)
        .expect("checkpointed run");
    assert!(stopped.is_none());
    let expected = resume(&dir).expect("resume v2").finish().expect("finish");

    // Rewrite the newest snapshot in the v1 format: same state payload,
    // no CRC field.
    let newest = newest_snapshot(&dir);
    let text = fs::read_to_string(&newest).expect("read snapshot");
    let v: serde_json::Value = serde_json::from_str(&text).expect("parse snapshot");
    let epoch = v.get("epoch").and_then(|x| x.as_f64()).expect("epoch");
    let state = v.get("state").and_then(|x| x.as_str()).expect("state");
    let v1 = serde_json::Value::Object(vec![
        ("version".to_string(), serde_json::Value::Number(1.0)),
        ("epoch".to_string(), serde_json::Value::Number(epoch)),
        ("state".to_string(), serde_json::Value::String(state.to_string())),
    ]);
    fs::write(&newest, serde_json::to_string(&v1).expect("encode v1")).expect("write v1");

    let rec = resume(&dir).expect("resume with v1 snapshot");
    let report = rec.finish().expect("finish");
    assert_eq!(report.sim.reward_collected, expected.sim.reward_collected);
    assert_eq!(report.log, expected.log);

    // A snapshot claiming a future format must be refused, not guessed at.
    let future = serde_json::Value::Object(vec![
        ("version".to_string(), serde_json::Value::Number(99.0)),
        ("epoch".to_string(), serde_json::Value::Number(epoch)),
        ("state_crc".to_string(), serde_json::Value::Number(0.0)),
        ("state".to_string(), serde_json::Value::String(state.to_string())),
    ]);
    fs::write(&newest, serde_json::to_string(&future).expect("encode")).expect("write future");
    match resume(&dir) {
        Err(PersistError::UnsupportedVersion { version, .. }) => assert_eq!(version, 99),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

fn newest_snapshot(dir: &Path) -> PathBuf {
    let mut snaps: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("snap-") && n.ends_with(".json"))
        })
        .collect();
    snaps.sort();
    snaps.pop().expect("at least one snapshot")
}

/// A meltdown floor (single CRAC fails, no steady state) logs events
/// carrying `+inf` observations. Those must journal and snapshot
/// cleanly: a clean kill mid-meltdown leaves **zero** torn bytes, and
/// the resumed run still matches the uninterrupted one exactly.
#[test]
fn meltdown_events_journal_cleanly_and_resume() {
    let dc = ScenarioParams {
        n_nodes: 6,
        n_crac: 1,
        ..ScenarioParams::small_test()
    }
    .build(3)
    .expect("scenario");
    let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("plan");
    let script = FaultScript::new().crac_failure(2.0, 0);
    let baseline = Supervisor::new(&dc, cfg(3)).run(&plan, &script);
    assert!(
        baseline.log.events().iter().any(|e| {
            serde_json::to_string(&e.kind)
                .map(|j| j.contains("\"inf\""))
                .unwrap_or(false)
        }),
        "scenario must actually produce a non-finite observation"
    );

    let dir = temp_dir("meltdown");
    let ckpt = CheckpointConfig {
        snapshot_interval: 2,
        ..CheckpointConfig::new(&dir)
    };
    // Kill well after the meltdown events have been journaled.
    let stopped =
        run_checkpointed_until(&dc, cfg(3), &plan, &script, &ckpt, 6).expect("checkpointed run");
    assert!(stopped.is_none(), "killed mid-horizon");

    let rec = resume(&dir).expect("resume through meltdown events");
    assert_eq!(
        rec.info.truncated_bytes, 0,
        "a cleanly killed journal has no torn tail to repair"
    );
    assert_eq!(rec.info.resume_epoch, 6, "every committed epoch recovered");
    let report = rec.finish().expect("finish recovered run");
    assert_eq!(report.outcome, baseline.outcome);
    assert_eq!(report.sim.reward_collected, baseline.sim.reward_collected);
    assert_eq!(report.log, baseline.log);
    let _ = fs::remove_dir_all(&dir);
}
