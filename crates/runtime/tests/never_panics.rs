//! Robustness property: the supervisor must always terminate with a
//! typed outcome under *any* fault script — recovered, degraded, shed,
//! unrecoverable — and never panic, on both the supervised and the
//! unsupervised (stale-plan) path.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;
use thermaware_core::{solve_three_stage, ThreeStageOptions, ThreeStageSolution};
use thermaware_datacenter::{DataCenter, ScenarioParams};
use thermaware_runtime::{FaultScript, Outcome, Supervisor, SupervisorConfig};

const HORIZON_S: f64 = 8.0;

/// One solved scenario shared across cases (building and planning is the
/// expensive part; the property is about the supervisor).
fn scenario() -> &'static (DataCenter, ThreeStageSolution) {
    static SCENARIO: OnceLock<(DataCenter, ThreeStageSolution)> = OnceLock::new();
    SCENARIO.get_or_init(|| {
        let dc = ScenarioParams {
            n_nodes: 8,
            n_crac: 2,
            ..ScenarioParams::small_test()
        }
        .build(1)
        .expect("scenario");
        let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("plan");
        (dc, plan)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_fault_script_ends_in_a_typed_outcome(
        script_seed in 0u64..1_000_000,
        n_events in 0usize..7,
        arrival_seed in 0u64..1_000,
        supervise in any::<bool>(),
    ) {
        let (dc, plan) = scenario();
        let mut rng = StdRng::seed_from_u64(script_seed);
        let script =
            FaultScript::random(&mut rng, n_events, HORIZON_S, dc.n_crac(), dc.n_nodes());
        let cfg = SupervisorConfig {
            horizon_s: HORIZON_S,
            supervise,
            seed: arrival_seed,
            ..SupervisorConfig::default()
        };
        let report = Supervisor::new(dc, cfg).run(plan, &script);

        // Terminated with a typed outcome (reaching here at all means no
        // panic); the outcome must be internally consistent.
        match report.outcome {
            Outcome::Nominal | Outcome::Recovered | Outcome::Shed => {
                prop_assert!(report.final_violation_c <= 1e-6,
                    "healthy outcome with violation {}", report.final_violation_c);
            }
            Outcome::Degraded => {
                prop_assert!(report.final_violation_c.is_finite());
            }
            Outcome::Unrecoverable => {}
        }
        if !matches!(report.outcome, Outcome::Shed) {
            prop_assert!(report.shed_task_types.is_empty());
        }

        // The books must balance.
        prop_assert!(report.sim.reward_collected.is_finite());
        prop_assert!(report.sim.reward_collected >= 0.0);
        for t in &report.sim.per_type {
            prop_assert!(t.completed + t.dropped + t.late + t.lost <= t.arrived);
        }
        prop_assert!(report.nodes_dead <= dc.n_nodes());

        // The log is typed and time-ordered within the horizon.
        for w in report.log.events().windows(2) {
            prop_assert!(w[0].at_s <= w[1].at_s + 1e-9);
        }
        for e in report.log.events() {
            prop_assert!((0.0..=HORIZON_S + 1e-9).contains(&e.at_s));
        }
        if !supervise {
            prop_assert_eq!(report.log.replans(), 0);
        }
    }
}
