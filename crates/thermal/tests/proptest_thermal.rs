//! Property tests for the thermal substrate: conservation laws and model
//! consistency must hold for *any* generated layout, flow mix, and power
//! vector — not just the unit-test examples.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use thermaware_thermal::{interference, Layout, ThermalModel, RHO_CP};

/// Layout sizes that keep the debug-profile suite fast while spanning
/// 1-and 2-CRAC shapes and partial racks.
fn layout_params() -> impl Strategy<Value = (usize, usize)> {
    prop_oneof![
        (Just(1usize), 8usize..20),
        (Just(2usize), 12usize..30),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn energy_balance_holds_for_any_powers(
        (n_crac, n_nodes) in layout_params(),
        seed in 0u64..5000,
        power_scale in 0.05f64..1.5,
        outlet in 12.0f64..22.0,
    ) {
        let layout = Layout::hot_cold_aisle(n_crac, n_nodes);
        let flows = interference::uniform_flows(&layout, 0.07, None);
        let mut rng = StdRng::seed_from_u64(seed);
        // Some size/label combinations are legitimately infeasible per
        // Table II (documented in the interference module); skip those.
        let Ok(ci) = interference::generate_ipf(&layout, &flows, &mut rng) else {
            return Ok(());
        };
        let model = ThermalModel::new(&layout, &flows, &ci, 25.0, 40.0).unwrap();

        let powers: Vec<f64> = (0..n_nodes)
            .map(|i| power_scale * (0.2 + 0.05 * (i % 5) as f64))
            .collect();
        let state = model.steady_state(&vec![outlet; n_crac], &powers);

        // First law: heat crossing the CRAC coils equals total node power.
        let total_power: f64 = powers.iter().sum();
        let heat_removed: f64 = (0..n_crac)
            .map(|c| RHO_CP * flows[c] * (state.t_in[c] - state.t_out[c]))
            .sum();
        prop_assert!(
            (total_power - heat_removed).abs() < 1e-6 * total_power.max(1.0),
            "power {total_power} vs heat {heat_removed}"
        );

        // No temperature anywhere below the coldest supply (nothing cools
        // below the CRAC outlets).
        for &t in state.t_in.iter().chain(&state.t_out) {
            prop_assert!(t >= outlet - 1e-9, "temperature {t} below supply {outlet}");
        }
    }

    #[test]
    fn affine_coefficients_match_exact_solve(
        (n_crac, n_nodes) in layout_params(),
        seed in 0u64..5000,
        outlet in 12.0f64..22.0,
    ) {
        let layout = Layout::hot_cold_aisle(n_crac, n_nodes);
        let flows = interference::uniform_flows(&layout, 0.07, None);
        let mut rng = StdRng::seed_from_u64(seed);
        let Ok(ci) = interference::generate_ipf(&layout, &flows, &mut rng) else {
            return Ok(());
        };
        let model = ThermalModel::new(&layout, &flows, &ci, 25.0, 40.0).unwrap();
        let outlets = vec![outlet; n_crac];
        let coeff = model.coefficients(&outlets);
        let powers: Vec<f64> = (0..n_nodes).map(|i| 0.1 + 0.03 * (i % 7) as f64).collect();
        let state = model.steady_state(&outlets, &powers);
        for u in 0..n_nodes {
            let affine = coeff.base_node[u]
                + (0..n_nodes).map(|j| coeff.g_node[(u, j)] * powers[j]).sum::<f64>();
            prop_assert!((affine - state.t_in[n_crac + u]).abs() < 1e-8);
        }
        for c in 0..n_crac {
            let affine = coeff.base_crac[c]
                + (0..n_nodes).map(|j| coeff.g_crac[(c, j)] * powers[j]).sum::<f64>();
            prop_assert!((affine - state.t_in[c]).abs() < 1e-8);
        }
    }

    #[test]
    fn superposition_of_power_vectors(
        (n_crac, n_nodes) in layout_params(),
        seed in 0u64..5000,
    ) {
        // The steady state is affine in powers at fixed outlets:
        // T(p1 + p2) - T(0) == (T(p1) - T(0)) + (T(p2) - T(0)).
        let layout = Layout::hot_cold_aisle(n_crac, n_nodes);
        let flows = interference::uniform_flows(&layout, 0.07, None);
        let mut rng = StdRng::seed_from_u64(seed);
        let Ok(ci) = interference::generate_ipf(&layout, &flows, &mut rng) else {
            return Ok(());
        };
        let model = ThermalModel::new(&layout, &flows, &ci, 25.0, 40.0).unwrap();
        let outlets = vec![16.0; n_crac];

        let p1: Vec<f64> = (0..n_nodes).map(|i| 0.1 * ((i % 3) as f64 + 1.0)).collect();
        let p2: Vec<f64> = (0..n_nodes).map(|i| 0.07 * ((i % 4) as f64)).collect();
        let sum: Vec<f64> = p1.iter().zip(&p2).map(|(a, b)| a + b).collect();

        let t0 = model.steady_state(&outlets, &vec![0.0; n_nodes]);
        let t1 = model.steady_state(&outlets, &p1);
        let t2 = model.steady_state(&outlets, &p2);
        let ts = model.steady_state(&outlets, &sum);
        for u in 0..n_crac + n_nodes {
            let lhs = ts.t_in[u] - t0.t_in[u];
            let rhs = (t1.t_in[u] - t0.t_in[u]) + (t2.t_in[u] - t0.t_in[u]);
            prop_assert!((lhs - rhs).abs() < 1e-8, "unit {u}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn generated_interference_always_validates(
        (n_crac, n_nodes) in layout_params(),
        seed in 0u64..20_000,
        hetero in any::<bool>(),
    ) {
        let layout = Layout::hot_cold_aisle(n_crac, n_nodes);
        let node_flows: Vec<f64> = (0..n_nodes)
            .map(|i| if hetero && i % 2 == 1 { 0.0828 } else { 0.07 })
            .collect();
        let flows = interference::flows_from_node_flows(&layout, &node_flows);
        let mut rng = StdRng::seed_from_u64(seed);
        // Some draws are legitimately infeasible (documented); generation
        // must either fail loudly or validate — never return garbage.
        if let Ok(ci) = interference::generate_ipf(&layout, &flows, &mut rng) {
            prop_assert!(ci.validate(&layout, &flows).is_ok());
        }
    }
}
