//! Property tests for the degraded-floor thermal solve
//! (`steady_state_with_failed_cracs`).
//!
//! Two invariants hold for *any* floor, power vector, set-point vector,
//! and failure set that leaves at least one unit working:
//!
//! 1. **Energy conservation with pass-through units.** A failed CRAC
//!    keeps moving air but stops cooling (outlet = inlet), so its coil
//!    removes nothing and the working coils together must carry exactly
//!    the total node power.
//! 2. **Monotonicity in the failure set.** Failing one more unit can
//!    only heat the floor: every node inlet is non-decreasing when the
//!    failure set grows.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use thermaware_thermal::{interference, Layout, ThermalModel, RHO_CP};

fn model(n_crac: usize, n_nodes: usize, seed: u64) -> (Vec<f64>, ThermalModel) {
    let layout = Layout::hot_cold_aisle(n_crac, n_nodes);
    let flows = interference::uniform_flows(&layout, 0.07, None);
    let mut rng = StdRng::seed_from_u64(seed);
    let ci = interference::generate_ipf(&layout, &flows, &mut rng).expect("interference");
    let m = ThermalModel::new(&layout, &flows, &ci, 25.0, 40.0).expect("model");
    (flows, m)
}

/// A floor, a workload, set-points, and a failure mask with at least one
/// working unit.
#[allow(clippy::type_complexity)]
fn inputs() -> impl Strategy<Value = (usize, usize, u64, Vec<f64>, Vec<f64>, Vec<bool>, usize)> {
    (2usize..5, 4usize..13, 0u64..1000).prop_flat_map(|(nc, nn, seed)| {
        (
            Just(nc),
            Just(nn),
            Just(seed),
            prop::collection::vec(0.05f64..1.0, nn),
            prop::collection::vec(12.0f64..20.0, nc),
            prop::collection::vec(any::<bool>(), nc),
            0usize..nc,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Total node power equals the heat removed across the *working*
    /// coils; failed coils remove nothing.
    #[test]
    fn working_coils_carry_exactly_the_node_power(
        (nc, nn, seed, powers, outlets, mut failed, _c) in inputs(),
    ) {
        if failed.iter().all(|&f| f) {
            failed[0] = false; // keep a steady state solvable
        }
        let (flows, m) = model(nc, nn, seed);
        let state = m
            .steady_state_with_failed_cracs(&outlets, &powers, &failed)
            .expect("one unit works");

        let total: f64 = powers.iter().sum();
        let mut removed_working = 0.0;
        for i in 0..nc {
            let removed = RHO_CP * flows[i] * (state.t_in[i] - state.t_out[i]);
            if failed[i] {
                prop_assert!(removed.abs() < 1e-9 * total.max(1.0),
                    "failed coil {i} removed {removed} kW");
            } else {
                removed_working += removed;
            }
        }
        prop_assert!((removed_working - total).abs() < 1e-6 * total.max(1.0),
            "working coils removed {removed_working} of {total} kW");
    }

    /// Growing the failure set never cools any node: with unit `c`
    /// additionally failed, every node inlet is at least what it was.
    #[test]
    fn node_inlets_non_decreasing_in_failures(
        (nc, nn, seed, powers, outlets, mut failed, c) in inputs(),
    ) {
        // Baseline: unit `c` works. Degraded: unit `c` failed too. Keep
        // one unit working in *both* so each has a steady state.
        failed[c] = false;
        let mut more = failed.clone();
        more[c] = true;
        if more.iter().all(|&f| f) {
            let keep = (c + 1) % nc;
            failed[keep] = false;
            more[keep] = false;
        }
        let (_, m) = model(nc, nn, seed);
        let base = m
            .steady_state_with_failed_cracs(&outlets, &powers, &failed)
            .expect("baseline has a working unit");
        let degraded = m
            .steady_state_with_failed_cracs(&outlets, &powers, &more)
            .expect("degraded floor has a working unit");
        for j in 0..nn {
            prop_assert!(
                degraded.t_in[nc + j] >= base.t_in[nc + j] - 1e-9,
                "node {j} cooled down when CRAC {c} failed: {} -> {}",
                base.t_in[nc + j],
                degraded.t_in[nc + j]
            );
        }
    }
}
