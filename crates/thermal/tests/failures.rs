//! CRAC failure analysis tests: a failed unit keeps moving air but stops
//! cooling, so its outlet floats to its inlet and the rest of the floor
//! absorbs the heat.

use rand::rngs::StdRng;
use rand::SeedableRng;
use thermaware_thermal::{interference, Layout, ThermalModel, RHO_CP};

fn model(n_crac: usize, n_nodes: usize, seed: u64) -> (Vec<f64>, ThermalModel) {
    let layout = Layout::hot_cold_aisle(n_crac, n_nodes);
    let flows = interference::uniform_flows(&layout, 0.07, None);
    let mut rng = StdRng::seed_from_u64(seed);
    let ci = interference::generate_ipf(&layout, &flows, &mut rng).unwrap();
    let m = ThermalModel::new(&layout, &flows, &ci, 25.0, 40.0).unwrap();
    (flows, m)
}

#[test]
fn no_failures_matches_plain_solve() {
    let (_, m) = model(2, 20, 1);
    let powers = vec![0.5; 20];
    let outlets = [15.0, 17.0];
    let plain = m.steady_state(&outlets, &powers);
    let with = m
        .steady_state_with_failed_cracs(&outlets, &powers, &[false, false])
        .unwrap();
    for (a, b) in plain.t_in.iter().zip(&with.t_in) {
        assert!((a - b).abs() < 1e-12);
    }
}

#[test]
fn failed_unit_outlet_equals_inlet() {
    let (_, m) = model(2, 20, 2);
    let powers = vec![0.5; 20];
    let state = m
        .steady_state_with_failed_cracs(&[15.0, 15.0], &powers, &[true, false])
        .unwrap();
    // Unit 0 failed: pass-through.
    assert!((state.t_out[0] - state.t_in[0]).abs() < 1e-9);
    // Unit 1 works: outlet as assigned.
    assert!((state.t_out[1] - 15.0).abs() < 1e-12);
}

#[test]
fn failure_heats_the_floor() {
    let (_, m) = model(2, 20, 3);
    let powers = vec![0.5; 20];
    let healthy = m.steady_state(&[15.0, 15.0], &powers);
    let degraded = m
        .steady_state_with_failed_cracs(&[15.0, 15.0], &powers, &[true, false])
        .unwrap();
    assert!(
        degraded.max_node_inlet() > healthy.max_node_inlet() + 0.5,
        "failure barely changed inlets: {} vs {}",
        degraded.max_node_inlet(),
        healthy.max_node_inlet()
    );
}

#[test]
fn surviving_crac_removes_all_the_heat() {
    // Conservation with one coil off: the working unit's coil must now
    // carry the entire node power.
    let (flows, m) = model(2, 20, 4);
    let powers: Vec<f64> = (0..20).map(|i| 0.3 + 0.02 * i as f64).collect();
    let total: f64 = powers.iter().sum();
    let state = m
        .steady_state_with_failed_cracs(&[14.0, 14.0], &powers, &[true, false])
        .unwrap();
    let removed_working = RHO_CP * flows[1] * (state.t_in[1] - state.t_out[1]);
    let removed_failed = RHO_CP * flows[0] * (state.t_in[0] - state.t_out[0]);
    assert!(removed_failed.abs() < 1e-9, "failed coil removed {removed_failed}");
    assert!(
        (removed_working - total).abs() < 1e-6 * total,
        "working coil removed {removed_working} of {total}"
    );
}

#[test]
fn all_failed_is_an_error() {
    let (_, m) = model(2, 20, 5);
    let powers = vec![0.5; 20];
    assert!(m
        .steady_state_with_failed_cracs(&[15.0, 15.0], &powers, &[true, true])
        .is_err());
}

#[test]
fn shedding_power_restores_redlines() {
    // After a failure pushes inlets over redline, cutting node power far
    // enough must bring them back — the premise of the failure-response
    // experiment.
    let (_, m) = model(2, 20, 6);
    let hot = vec![0.8; 20];
    let degraded = m
        .steady_state_with_failed_cracs(&[13.0, 13.0], &hot, &[true, false])
        .unwrap();
    if degraded.redline_violation(25.0, 40.0) > 0.0 {
        let cool = vec![0.1; 20];
        let shed = m
            .steady_state_with_failed_cracs(&[13.0, 13.0], &cool, &[true, false])
            .unwrap();
        assert!(
            shed.max_node_inlet() < degraded.max_node_inlet(),
            "shedding power must cool the floor"
        );
    }
}
