//! The hot-aisle/cold-aisle floor plan of Figure 1 and the node labels of
//! Table II.
//!
//! CRAC units sit along one wall; rack columns run perpendicular to it in
//! pairs, each pair exhausting into the hot aisle between them. CRAC unit
//! `i` faces hot aisle `i`, so exhaust from that aisle reaches CRAC `i`
//! with the largest share (Appendix B's `M` matrix).
//!
//! Within a rack, vertical position determines how much of a node's
//! exhaust escapes to the CRACs (exit coefficient, EC) versus recirculating
//! into other nodes, and how much of its intake is recirculated air
//! (recirculation coefficient, RC). Table II gives the ranges per label;
//! label `A` is at the bottom of the rack (low EC — its exhaust mostly
//! recirculates — and low RC) and `E` at the top (high EC, high RC),
//! following the CFD study of Tang et al. \[29\].

use serde::{Deserialize, Serialize};

/// Vertical-position label of a node within its rack (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// Bottom of the rack.
    A,
    /// Second from bottom.
    B,
    /// Middle.
    C,
    /// Second from top.
    D,
    /// Top of the rack.
    E,
}

impl Label {
    /// All labels bottom-to-top.
    pub const ALL: [Label; 5] = [Label::A, Label::B, Label::C, Label::D, Label::E];

    /// Exit-coefficient range `(min, max)` from Table II — the fraction of
    /// this node's exhaust that reaches CRAC units.
    pub fn ec_range(self) -> (f64, f64) {
        match self {
            Label::A => (0.30, 0.40),
            Label::B => (0.30, 0.40),
            Label::C => (0.40, 0.50),
            Label::D => (0.70, 0.80),
            Label::E => (0.80, 0.90),
        }
    }

    /// Recirculation-coefficient range `(min, max)` from Table II — the
    /// fraction of this node's *intake* that is other nodes' exhaust.
    pub fn rc_range(self) -> (f64, f64) {
        match self {
            Label::A => (0.00, 0.10),
            Label::B => (0.00, 0.20),
            Label::C => (0.10, 0.30),
            Label::D => (0.30, 0.70),
            Label::E => (0.40, 0.80),
        }
    }

    /// Label for vertical position `pos` (0 = bottom) in a rack of
    /// `rack_height` nodes. Heights other than 5 interpolate the ladder.
    pub fn for_position(pos: usize, rack_height: usize) -> Label {
        assert!(pos < rack_height, "position {pos} outside rack of {rack_height}");
        if rack_height == 1 {
            return Label::C;
        }
        let idx = (pos * (Label::ALL.len() - 1) + (rack_height - 1) / 2) / (rack_height - 1);
        Label::ALL[idx.min(Label::ALL.len() - 1)]
    }

    /// Label for position `pos` in a **partially filled** rack holding
    /// `occupancy` nodes.
    ///
    /// The sets are chosen so each partial rack's recirculation
    /// *production* range `Σ (1 − EC)` overlaps its *absorption* range
    /// `Σ RC` under Table II — plain ladder interpolation does not
    /// guarantee that (a lone `C` node produces 0.5–0.6 of its flow as
    /// recirculation but may absorb at most 0.3), and an unbalanced rack
    /// makes the whole floor's coefficients unsatisfiable.
    pub fn for_partial_rack(pos: usize, occupancy: usize) -> Label {
        assert!(pos < occupancy, "position {pos} outside occupancy {occupancy}");
        match occupancy {
            1 => [Label::D][pos],
            2 => [Label::A, Label::E][pos],
            3 => [Label::A, Label::D, Label::E][pos],
            4 => [Label::A, Label::B, Label::D, Label::E][pos],
            5 => Label::ALL[pos],
            // Taller partial racks: interpolate like a full rack of that
            // occupancy (balance improves with size).
            _ => Label::for_position(pos, occupancy),
        }
    }
}

/// Where one compute node sits on the floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodePlacement {
    /// Rack-column index, 0-based, left to right (Figure 1 has
    /// `2 · NCRAC` of them).
    pub rack_col: usize,
    /// Rack index within the column (racks stack depth-wise).
    pub rack_index: usize,
    /// Vertical position within the rack, 0 = bottom.
    pub pos_in_rack: usize,
    /// Table-II label derived from `pos_in_rack`.
    pub label: Label,
    /// Hot aisle (0-based) this node exhausts into; hot aisle `i` faces
    /// CRAC unit `i`.
    pub hot_aisle: usize,
}

/// A concrete floor plan: CRAC units plus node placements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layout {
    /// Number of CRAC units (= number of hot aisles).
    pub n_crac: usize,
    /// Per-node placements; the node order here fixes node indexing
    /// everywhere downstream.
    pub nodes: Vec<NodePlacement>,
    /// Nodes per rack (Tang et al. \[29\] use 5, matching the five labels).
    pub rack_height: usize,
}

impl Layout {
    /// Build the Figure-1 arrangement: `2 · n_crac` rack columns in facing
    /// pairs, racks of five nodes, `n_nodes` nodes distributed as evenly
    /// as possible column by column.
    ///
    /// # Panics
    /// Panics if `n_crac == 0` or `n_nodes == 0`.
    pub fn hot_cold_aisle(n_crac: usize, n_nodes: usize) -> Layout {
        Self::with_rack_height(n_crac, n_nodes, 5)
    }

    /// Like [`Layout::hot_cold_aisle`] with a custom rack height.
    pub fn with_rack_height(n_crac: usize, n_nodes: usize, rack_height: usize) -> Layout {
        assert!(n_crac > 0, "need at least one CRAC unit");
        assert!(n_nodes > 0, "need at least one node");
        assert!(rack_height > 0);
        let n_cols = 2 * n_crac;
        let mut nodes = Vec::with_capacity(n_nodes);
        // Fill column-major: node i goes to column i % n_cols, then stacks
        // bottom-up into racks of `rack_height`.
        let mut col_counts = vec![0usize; n_cols];
        for i in 0..n_nodes {
            let col = i % n_cols;
            let within = col_counts[col];
            col_counts[col] += 1;
            let rack_index = within / rack_height;
            let pos = within % rack_height;
            nodes.push(NodePlacement {
                rack_col: col,
                rack_index,
                pos_in_rack: pos,
                label: Label::for_position(pos, rack_height),
                // Columns (2k, 2k+1) share hot aisle k.
                hot_aisle: col / 2,
            });
        }
        // Partially filled racks (the top rack of a column when n_nodes is
        // not a multiple of the rack capacity) get balance-aware label
        // sets — see [`Label::for_partial_rack`] for why straight ladder
        // interpolation breaks Table II's feasibility.
        // BTreeMap, not HashMap: layout construction is on the replay
        // path, and std's RandomState makes HashMap iteration order a
        // per-process coin flip (the `determinism` lint bans it here).
        let mut occupancy: std::collections::BTreeMap<(usize, usize), usize> =
            std::collections::BTreeMap::new();
        for p in &nodes {
            *occupancy.entry((p.rack_col, p.rack_index)).or_default() += 1;
        }
        for p in &mut nodes {
            let occ = occupancy[&(p.rack_col, p.rack_index)];
            if occ < rack_height {
                p.label = Label::for_partial_rack(p.pos_in_rack, occ);
            }
        }
        Layout {
            n_crac,
            nodes,
            rack_height,
        }
    }

    /// Number of compute nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total unit count (CRACs + nodes) — the dimension of the
    /// cross-interference matrix.
    pub fn n_units(&self) -> usize {
        self.n_crac + self.nodes.len()
    }

    /// The Appendix-B `M(aisle, crac)` matrix: the share of a hot aisle's
    /// CRAC-bound exhaust that reaches each CRAC unit.
    ///
    /// CRAC `i` faces hot aisle `i` and receives the dominant share; the
    /// remainder spreads to the other CRACs with geometrically decaying
    /// weight in aisle distance (rows normalized to 1). With one CRAC the
    /// matrix is all ones.
    pub fn m_matrix(&self) -> Vec<Vec<f64>> {
        let n = self.n_crac;
        (0..n)
            .map(|aisle| {
                let mut row: Vec<f64> = (0..n)
                    .map(|crac| {
                        let d = aisle.abs_diff(crac);
                        // 0.6 to the facing CRAC of a 3-CRAC room; decay
                        // 4x per aisle of distance.
                        0.25_f64.powi(d as i32)
                    })
                    .collect();
                let s: f64 = row.iter().sum();
                for v in &mut row {
                    *v /= s;
                }
                row
            })
            .collect()
    }

    /// Nodes in the same rack as node `i` (excluding `i`), by node index.
    pub fn rack_mates(&self, i: usize) -> Vec<usize> {
        let p = self.nodes[i];
        self.nodes
            .iter()
            .enumerate()
            .filter(|&(j, q)| {
                j != i && q.rack_col == p.rack_col && q.rack_index == p.rack_index
            })
            .map(|(j, _)| j)
            .collect()
    }

    /// Nodes that share node `i`'s hot aisle (excluding `i`).
    pub fn aisle_mates(&self, i: usize) -> Vec<usize> {
        let p = self.nodes[i];
        self.nodes
            .iter()
            .enumerate()
            .filter(|&(j, q)| j != i && q.hot_aisle == p.hot_aisle)
            .map(|(j, _)| j)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_ranges() {
        assert_eq!(Label::A.ec_range(), (0.30, 0.40));
        assert_eq!(Label::B.ec_range(), (0.30, 0.40));
        assert_eq!(Label::C.ec_range(), (0.40, 0.50));
        assert_eq!(Label::D.ec_range(), (0.70, 0.80));
        assert_eq!(Label::E.ec_range(), (0.80, 0.90));
        assert_eq!(Label::A.rc_range(), (0.00, 0.10));
        assert_eq!(Label::E.rc_range(), (0.40, 0.80));
    }

    #[test]
    fn label_positions_in_standard_rack() {
        let labels: Vec<Label> = (0..5).map(|p| Label::for_position(p, 5)).collect();
        assert_eq!(labels, Label::ALL);
    }

    #[test]
    fn label_positions_interpolate_for_other_heights() {
        assert_eq!(Label::for_position(0, 1), Label::C);
        assert_eq!(Label::for_position(0, 2), Label::A);
        assert_eq!(Label::for_position(1, 2), Label::E);
        // A 10-high rack still starts at A and ends at E.
        assert_eq!(Label::for_position(0, 10), Label::A);
        assert_eq!(Label::for_position(9, 10), Label::E);
    }

    #[test]
    fn paper_scale_layout() {
        let l = Layout::hot_cold_aisle(3, 150);
        assert_eq!(l.n_nodes(), 150);
        assert_eq!(l.n_units(), 153);
        // 6 rack columns, 25 nodes each.
        for col in 0..6 {
            let count = l.nodes.iter().filter(|p| p.rack_col == col).count();
            assert_eq!(count, 25);
        }
        // Hot aisles pair up columns.
        for p in &l.nodes {
            assert_eq!(p.hot_aisle, p.rack_col / 2);
            assert!(p.hot_aisle < 3);
        }
        // Every label occurs (25 per column = 5 full racks).
        for lab in Label::ALL {
            assert!(l.nodes.iter().any(|p| p.label == lab));
        }
    }

    #[test]
    fn m_matrix_rows_normalized_and_diagonal_dominant() {
        let l = Layout::hot_cold_aisle(3, 30);
        let m = l.m_matrix();
        for (i, row) in m.iter().enumerate() {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            for (j, &v) in row.iter().enumerate() {
                if i != j {
                    assert!(row[i] > v, "M[{i}][{i}] must dominate M[{i}][{j}]");
                }
            }
        }
    }

    #[test]
    fn single_crac_m_matrix_is_one() {
        let l = Layout::hot_cold_aisle(1, 10);
        let m = l.m_matrix();
        assert_eq!(m.len(), 1);
        assert!((m[0][0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rack_and_aisle_mates() {
        let l = Layout::hot_cold_aisle(1, 10);
        // Columns 0 and 1 alternate; node 0 and node 2 share column 0,
        // rack 0.
        let mates = l.rack_mates(0);
        assert!(mates.contains(&2));
        assert!(!mates.contains(&1));
        // All ten nodes share the single hot aisle.
        assert_eq!(l.aisle_mates(0).len(), 9);
    }
}
