//! Cross-interference coefficient generation (paper Section VI.E and
//! Appendix B).
//!
//! `α[i][j]` is the fraction of unit `i`'s outlet air that enters unit
//! `j`'s inlet (units = CRACs then nodes, CRACs first, as in Appendix B).
//! Physically consistent coefficients satisfy, in the semantics of Tang et
//! al. \[29\] (Appendix B's constraints 1–2, with the typeset index swap
//! corrected — see DESIGN.md):
//!
//! 1. `Σ_j α[i][j] = 1` — all of unit `i`'s outlet air goes somewhere;
//! 2. `Σ_i α[i][j] · F_i = F_j` — inlet flow balance at every unit `j`;
//! 3. per-node **exit coefficients** (share of exhaust reaching CRACs)
//!    within the Table-II range of the node's label, split across CRACs by
//!    the layout's `M` matrix;
//! 4. per-node **recirculation coefficients** (share of *intake* that is
//!    other nodes' exhaust, flow-weighted) within the Table-II range.
//!
//! Two generators are provided:
//!
//! * [`generate_lp`] — the paper's Appendix-B **LP feasibility problem**,
//!   solved with `thermaware-lp`. Exact, used for small/medium layouts and
//!   as the reference in tests.
//! * [`generate_ipf`] — **iterative proportional fitting** (Sinkhorn
//!   balancing) on a layout-structured support, with an exit-coefficient
//!   repair loop. Milliseconds at the paper's 153-unit scale, used by the
//!   Figure-6 replication (the paper itself notes per-node CFD was
//!   prohibitive and substitutes a generator; see DESIGN.md).
//!
//! A note on feasibility: constraints 1–4 are *globally* coupled — the
//! total exhaust that misses the CRACs, `Σ F_i (1 − EC_i)`, must equal the
//! total recirculated intake `Σ RC_j F_j`. With Table II's ranges and the
//! five labels equally represented, the overlap is narrow (ECs must sit
//! near the top of their ranges). Both generators handle this by
//! projecting EC draws onto the compatible interval before allocating RCs.

use crate::layout::Layout;
use rand::Rng;
use thermaware_linalg::Matrix;
use thermaware_lp::{Problem, RowOp, Sense, VarId};

/// A validated set of cross-interference coefficients.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CrossInterference {
    /// Number of CRAC units (first `n_crac` rows/cols of `alpha`).
    pub n_crac: usize,
    /// `alpha[(i, j)]`: fraction of unit `i`'s outlet air entering unit
    /// `j`'s inlet. Square, `n_units x n_units`.
    alpha: Matrix,
}

/// Numerical tolerance for conservation checks.
const BALANCE_TOL: f64 = 1e-6;
/// Slack allowed on Table-II range checks (generators aim well inside).
const RANGE_SLACK: f64 = 1e-6;

impl CrossInterference {
    /// Wrap a raw coefficient matrix. Use [`CrossInterference::validate`]
    /// to check it against a layout and flow vector.
    pub fn from_matrix(n_crac: usize, alpha: Matrix) -> Self {
        assert!(alpha.is_square(), "alpha must be square");
        assert!(n_crac < alpha.rows(), "more CRACs than units");
        CrossInterference { n_crac, alpha }
    }

    /// Fraction of unit `i`'s outlet air that enters unit `j`'s inlet.
    #[inline]
    pub fn alpha(&self, i: usize, j: usize) -> f64 {
        self.alpha[(i, j)]
    }

    /// Total number of units (CRACs + nodes).
    pub fn n_units(&self) -> usize {
        self.alpha.rows()
    }

    /// Number of compute nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_units() - self.n_crac
    }

    /// Exit coefficient of node `node`: the share of its exhaust that
    /// reaches CRAC units.
    pub fn exit_coefficient(&self, node: usize) -> f64 {
        let i = self.n_crac + node;
        (0..self.n_crac).map(|j| self.alpha[(i, j)]).sum()
    }

    /// Recirculation coefficient of node `node`: the flow-weighted share
    /// of its *intake* that is other nodes' exhaust.
    pub fn recirculation_coefficient(&self, node: usize, flows: &[f64]) -> f64 {
        let j = self.n_crac + node;
        let from_nodes: f64 = (self.n_crac..self.n_units())
            .map(|i| self.alpha[(i, j)] * flows[i])
            .sum();
        from_nodes / flows[j]
    }

    /// The heat-flow mixing matrix of Eq. 5: `Tin = A · Tout`, with
    /// `A[j][i] = α[i][j] · F_i / F_j`. Rows of `A` sum to 1 whenever the
    /// flow-balance constraint holds.
    pub fn a_matrix(&self, flows: &[f64]) -> Matrix {
        let n = self.n_units();
        assert_eq!(flows.len(), n, "flow vector length mismatch");
        Matrix::from_fn(n, n, |j, i| self.alpha[(i, j)] * flows[i] / flows[j])
    }

    /// Check all Appendix-B constraints against a layout and flows.
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self, layout: &Layout, flows: &[f64]) -> Result<(), String> {
        let n = self.n_units();
        if layout.n_units() != n || flows.len() != n {
            return Err(format!(
                "dimension mismatch: {} units vs layout {} / flows {}",
                n,
                layout.n_units(),
                flows.len()
            ));
        }
        for i in 0..n {
            for j in 0..n {
                let a = self.alpha[(i, j)];
                if !(-1e-12..=1.0 + 1e-9).contains(&a) {
                    return Err(format!("alpha[{i}][{j}] = {a} outside [0, 1]"));
                }
            }
        }
        // Constraint 1: row sums.
        for i in 0..n {
            let s: f64 = (0..n).map(|j| self.alpha[(i, j)]).sum();
            if (s - 1.0).abs() > BALANCE_TOL {
                return Err(format!("row {i} sums to {s}, expected 1"));
            }
        }
        // Constraint 2: flow balance at inlets.
        for j in 0..n {
            let inflow: f64 = (0..n).map(|i| self.alpha[(i, j)] * flows[i]).sum();
            if (inflow - flows[j]).abs() > BALANCE_TOL * flows[j].max(1.0) {
                return Err(format!(
                    "inlet flow at unit {j}: {inflow} vs required {}",
                    flows[j]
                ));
            }
        }
        // Constraints 3-5: EC and RC ranges per node label.
        for (node, placement) in layout.nodes.iter().enumerate() {
            let (ec_min, ec_max) = placement.label.ec_range();
            let ec = self.exit_coefficient(node);
            if ec < ec_min - RANGE_SLACK || ec > ec_max + RANGE_SLACK {
                return Err(format!(
                    "node {node} ({:?}): EC {ec:.4} outside [{ec_min}, {ec_max}]",
                    placement.label
                ));
            }
            let (rc_min, rc_max) = placement.label.rc_range();
            let rc = self.recirculation_coefficient(node, flows);
            if rc < rc_min - RANGE_SLACK || rc > rc_max + RANGE_SLACK {
                return Err(format!(
                    "node {node} ({:?}): RC {rc:.4} outside [{rc_min}, {rc_max}]",
                    placement.label
                ));
            }
        }
        Ok(())
    }
}

/// Flow vector for a layout: CRAC flows first, then the given per-node
/// flows. CRAC flows are set so their sum equals the node total
/// (Section VI.G), split evenly.
pub fn flows_from_node_flows(layout: &Layout, node_flows: &[f64]) -> Vec<f64> {
    flows_with_margin(layout, node_flows, 1.0)
}

/// Like [`flows_from_node_flows`] with the CRAC flows oversized by
/// `margin` (≥ 1). The paper's Section-VI.G sizing (`margin = 1`) leaves
/// the floor with **no** N−1 cooling capability — any single CRAC
/// failure overheats it even at idle; resilience experiments use
/// margins above 1. The extra CRAC flow circulates as additional
/// cold-air bypass, so conservation still closes.
pub fn flows_with_margin(layout: &Layout, node_flows: &[f64], margin: f64) -> Vec<f64> {
    assert_eq!(node_flows.len(), layout.n_nodes());
    assert!(margin >= 1.0, "CRAC flow margin below 1 cannot close conservation");
    let total: f64 = node_flows.iter().sum();
    let per_crac = margin * total / layout.n_crac as f64;
    let mut flows = vec![per_crac; layout.n_crac];
    flows.extend_from_slice(node_flows);
    flows
}

/// Uniform node flows of `node_flow` m³/s each; `crac_flow` overrides the
/// default even split when given.
pub fn uniform_flows(layout: &Layout, node_flow: f64, crac_flow: Option<f64>) -> Vec<f64> {
    let mut flows = flows_from_node_flows(layout, &vec![node_flow; layout.n_nodes()]);
    if let Some(f) = crac_flow {
        for v in flows.iter_mut().take(layout.n_crac) {
            *v = f;
        }
    }
    flows
}

/// Draw per-node exit coefficients inside their label ranges, then project
/// the draw so the induced recirculation is attainable by RCs within
/// *their* ranges (the global coupling described in the module docs).
///
/// Consistency is enforced over the whole floor: node-to-node
/// recirculation connects every pair of nodes (same-aisle strongly,
/// cross-aisle weakly via [`recirc_weight`]'s leak), so the balance
/// `Σ F_i (1 − ec_i) = Σ rc_j F_j` is a single global constraint.
fn draw_consistent_ec_rc<R: Rng>(
    layout: &Layout,
    flows: &[f64],
    rng: &mut R,
) -> Result<(Vec<f64>, Vec<f64>), String> {
    let nc = layout.n_crac;
    let n_nodes = layout.n_nodes();
    let node_flow = |i: usize| flows[nc + i];

    // Initial EC draw, uniform within each label's range.
    let mut ec: Vec<f64> = layout
        .nodes
        .iter()
        .map(|p| {
            let (lo, hi) = p.label.ec_range();
            rng.gen_range(lo..=hi)
        })
        .collect();
    let mut rc: Vec<f64> = layout
        .nodes
        .iter()
        .map(|p| {
            let (lo, hi) = p.label.rc_range();
            0.5 * (lo + hi)
        })
        .collect();

    // Attainable recirculation totals given the RC ranges.
    let rc_total_min: f64 = (0..n_nodes)
        .map(|j| layout.nodes[j].label.rc_range().0 * node_flow(j))
        .sum();
    let rc_total_max: f64 = (0..n_nodes)
        .map(|j| layout.nodes[j].label.rc_range().1 * node_flow(j))
        .sum();
    let recirc =
        |ec: &[f64]| -> f64 { (0..n_nodes).map(|i| (1.0 - ec[i]) * node_flow(i)).sum() };

    // Project ECs: blend toward the range end that moves the recirculation
    // total into [rc_total_min, rc_total_max]. Blending by a single scalar
    // keeps every EC inside its own range (the ranges are intervals and
    // the blend is convex). A tiny interior margin keeps the subsequent
    // water-filling away from hard edges, shrunk to zero when the ranges
    // leave no slack at all.
    let margin = 0.02 * (rc_total_max - rc_total_min).max(0.0);
    let r0 = recirc(&ec);
    if r0 > rc_total_max - margin {
        // Too much recirculation: push ECs up.
        let r_hi: f64 = (0..n_nodes)
            .map(|i| (1.0 - layout.nodes[i].label.ec_range().1) * node_flow(i))
            .sum();
        let target = (rc_total_max - margin).max(r_hi);
        let t = if (r0 - r_hi).abs() < 1e-15 {
            0.0
        } else {
            ((r0 - target) / (r0 - r_hi)).clamp(0.0, 1.0)
        };
        for (i, e) in ec.iter_mut().enumerate() {
            let hi = layout.nodes[i].label.ec_range().1;
            *e += t * (hi - *e);
        }
    } else if r0 < rc_total_min + margin {
        let r_lo: f64 = (0..n_nodes)
            .map(|i| (1.0 - layout.nodes[i].label.ec_range().0) * node_flow(i))
            .sum();
        let target = (rc_total_min + margin).min(r_lo);
        let t = if (r_lo - r0).abs() < 1e-15 {
            0.0
        } else {
            ((target - r0) / (r_lo - r0)).clamp(0.0, 1.0)
        };
        for (i, e) in ec.iter_mut().enumerate() {
            let lo = layout.nodes[i].label.ec_range().0;
            *e += t * (lo - *e);
        }
    }
    let r = recirc(&ec);
    // Even the extreme projection may not balance: with heterogeneous
    // flows, an unlucky placement (high-flow nodes on low-RC positions)
    // makes Table II's ranges unsatisfiable outright. Report it — the
    // scenario generator rejection-samples the node-type assignment.
    if r > rc_total_max * (1.0 + 1e-9) || r < rc_total_min * (1.0 - 1e-9) {
        return Err(format!(
            "Table-II EC/RC ranges infeasible for this layout and flow mix: \
             required recirculation {r:.4} outside attainable [{rc_total_min:.4}, \
             {rc_total_max:.4}]"
        ));
    }

    // Water-fill RC targets: move everyone toward the needed direction
    // proportionally to remaining headroom until the flow-weighted total
    // matches `r`.
    for _ in 0..48 {
        let total: f64 = (0..n_nodes).map(|j| rc[j] * node_flow(j)).sum();
        let err = r - total;
        if err.abs() < 1e-12 * r.max(1.0) {
            break;
        }
        let headroom: f64 = (0..n_nodes)
            .map(|j| {
                let (lo, hi) = layout.nodes[j].label.rc_range();
                let h = if err > 0.0 { hi - rc[j] } else { rc[j] - lo };
                h * node_flow(j)
            })
            .sum();
        if headroom <= 1e-15 {
            break;
        }
        let t = (err.abs() / headroom).min(1.0);
        for (j, v) in rc.iter_mut().enumerate() {
            let (lo, hi) = layout.nodes[j].label.rc_range();
            if err > 0.0 {
                *v += t * (hi - *v);
            } else {
                *v -= t * (*v - lo);
            }
        }
    }
    Ok((ec, rc))
}

/// Proximity weight for node-to-node recirculation: exhaust preferentially
/// re-enters nearby, higher-mounted nodes in the same hot aisle, with a
/// weak leak across aisles (the paper's "complex air flow patterns" are
/// not aisle-confined, and the leak lets aisles with unbalanced label
/// mixes exchange recirculated air at all).
fn recirc_weight(layout: &Layout, i: usize, j: usize) -> f64 {
    let a = layout.nodes[i];
    let b = layout.nodes[j];
    if i == j {
        return 0.0;
    }
    let aisle_leak = if a.hot_aisle == b.hot_aisle {
        1.0
    } else {
        0.05 / (1.0 + a.hot_aisle.abs_diff(b.hot_aisle) as f64)
    };
    let col_dist = if a.rack_col == b.rack_col { 0.0 } else { 1.0 };
    let rack_dist = a.rack_index.abs_diff(b.rack_index) as f64;
    let vert = b.pos_in_rack as f64 + 1.0; // hot air rises
    aisle_leak * vert / (1.0 + col_dist + 2.0 * rack_dist)
}

/// CRAC-to-node supply weight: the nearest CRAC supplies the most cold
/// air, decaying 4x per aisle of distance.
fn supply_weight(layout: &Layout, crac: usize, node: usize) -> f64 {
    let d = layout.nodes[node].hot_aisle.abs_diff(crac);
    0.25_f64.powi(d as i32)
}

/// Generate coefficients by **iterative proportional fitting**.
///
/// Builds a support-structured flow matrix encoding the drawn EC/RC
/// targets, then alternates row/column scaling (Sinkhorn) to enforce the
/// conservation constraints exactly, re-pinning each node row's
/// CRAC-vs-node split between sweeps so exit coefficients survive the
/// balancing. Validates before returning.
pub fn generate_ipf<R: Rng>(
    layout: &Layout,
    flows: &[f64],
    rng: &mut R,
) -> Result<CrossInterference, String> {
    let nc = layout.n_crac;
    let n = layout.n_units();
    assert_eq!(flows.len(), n);
    let (ec, rc) = draw_consistent_ec_rc(layout, flows, rng)?;

    // ---- Initial flow matrix W[i][j] (flow units) ------------------------
    let mut w = Matrix::zeros(n, n);
    let m = layout.m_matrix();
    // Node rows.
    for i in 0..layout.n_nodes() {
        let gi = nc + i;
        let fi = flows[gi];
        // CRAC-bound exhaust, split by M.
        for j in 0..nc {
            w[(gi, j)] = fi * ec[i] * m[layout.nodes[i].hot_aisle][j];
        }
        // Node-bound exhaust, split by proximity x destination appetite.
        let budget = fi * (1.0 - ec[i]);
        let weights: Vec<f64> = (0..layout.n_nodes())
            .map(|j| recirc_weight(layout, i, j) * rc[j] * flows[nc + j])
            .collect();
        let wsum: f64 = weights.iter().sum();
        if wsum > 0.0 {
            for (j, &wj) in weights.iter().enumerate() {
                w[(gi, nc + j)] = budget * wj / wsum;
            }
        }
    }
    // CRAC rows: cold supply to nodes plus the bypass flow back into CRACs
    // (required for global balance: CRAC output equals node intake from
    // CRACs plus bypass).
    for c in 0..nc {
        let fc = flows[c];
        let supply_total: f64 = (0..layout.n_nodes())
            .map(|j| (1.0 - rc[j]) * flows[nc + j])
            .sum();
        let total: f64 = flows.iter().take(nc).sum();
        // Whatever CRAC output the nodes do not ingest returns as bypass;
        // with the paper's margin-1 sizing this equals Σ rc_j·F_j, and
        // with oversized CRAC flows it grows by the surplus.
        let bypass_total: f64 = total - supply_total;
        // This CRAC's share of supply/bypass, proportional to its flow.
        let share = fc / total;
        let sw: Vec<f64> = (0..layout.n_nodes())
            .map(|j| supply_weight(layout, c, j) * (1.0 - rc[j]) * flows[nc + j])
            .collect();
        let sw_sum: f64 = sw.iter().sum();
        for (j, &wj) in sw.iter().enumerate() {
            if sw_sum > 0.0 {
                w[(c, nc + j)] = share * supply_total * wj / sw_sum;
            }
        }
        for c2 in 0..nc {
            let d = c.abs_diff(c2);
            w[(c, c2)] = share * bypass_total * 0.25_f64.powi(d as i32);
        }
        // Normalize CRAC-to-CRAC block so the row totals share*total.
        let cc_sum: f64 = (0..nc).map(|c2| w[(c, c2)]).sum();
        if cc_sum > 0.0 {
            let scale = share * bypass_total / cc_sum;
            for c2 in 0..nc {
                w[(c, c2)] *= scale;
            }
        }
    }

    // ---- Sinkhorn sweeps with EC and RC re-pinning -----------------------
    for sweep in 0..2000 {
        // Column scaling: inlet flow balance. Node columns pin the
        // CRAC-source vs node-source split to rc_j (plain scaling would
        // let the row sweeps erode the recirculation coefficients the same
        // way they erode exit coefficients).
        for j in 0..layout.n_nodes() {
            let gj = nc + j;
            let fj = flows[gj];
            let crac_sum: f64 = (0..nc).map(|i| w[(i, gj)]).sum();
            let node_sum: f64 = (nc..n).map(|i| w[(i, gj)]).sum();
            if crac_sum > 0.0 {
                let s = fj * (1.0 - rc[j]) / crac_sum;
                for i in 0..nc {
                    w[(i, gj)] *= s;
                }
            }
            if node_sum > 0.0 {
                let s = fj * rc[j] / node_sum;
                for i in nc..n {
                    w[(i, gj)] *= s;
                }
            }
        }
        for j in 0..nc {
            let col_sum: f64 = (0..n).map(|i| w[(i, j)]).sum();
            if col_sum > 0.0 {
                let s = flows[j] / col_sum;
                for i in 0..n {
                    w[(i, j)] *= s;
                }
            }
        }
        // Row scaling with split pinning: node rows restore their CRAC and
        // node sub-blocks to ec_i and 1-ec_i of F_i separately (plain row
        // scaling would let column sweeps erode the exit coefficients).
        for i in 0..layout.n_nodes() {
            let gi = nc + i;
            let crac_sum: f64 = (0..nc).map(|j| w[(gi, j)]).sum();
            let node_sum: f64 = (nc..n).map(|j| w[(gi, j)]).sum();
            let fi = flows[gi];
            if crac_sum > 0.0 {
                let s = fi * ec[i] / crac_sum;
                for j in 0..nc {
                    w[(gi, j)] *= s;
                }
            }
            if node_sum > 0.0 {
                let s = fi * (1.0 - ec[i]) / node_sum;
                for j in nc..n {
                    w[(gi, j)] *= s;
                }
            }
        }
        for c in 0..nc {
            let row_sum: f64 = (0..n).map(|j| w[(c, j)]).sum();
            if row_sum > 0.0 {
                let s = flows[c] / row_sum;
                for j in 0..n {
                    w[(c, j)] *= s;
                }
            }
        }
        // Convergence: worst column imbalance.
        if sweep % 8 == 7 {
            let worst = (0..n)
                .map(|j| {
                    let col_sum: f64 = (0..n).map(|i| w[(i, j)]).sum();
                    ((col_sum - flows[j]) / flows[j]).abs()
                })
                .fold(0.0_f64, f64::max);
            if worst < 1e-10 {
                break;
            }
        }
    }
    // The loop ends on a row pass, so row sums are exact; the residual
    // column imbalance is bounded by the convergence check and verified by
    // `validate`.
    let alpha = Matrix::from_fn(n, n, |i, j| w[(i, j)] / flows[i]);
    let ci = CrossInterference::from_matrix(nc, alpha);
    ci.validate(layout, flows).map(|()| ci)
}

/// Generate coefficients by solving the **Appendix-B LP feasibility
/// problem** with `thermaware-lp`.
///
/// Variables are the `α[i][j]` over a layout-structured support (node
/// exhaust reaches the CRACs and same-aisle nodes; CRAC supply reaches
/// every node; CRAC-to-CRAC bypass closes the global balance). Constraints
/// are exactly Appendix B's: row sums of 1, inlet flow balance, per-entry
/// `EC·M` bounds for node→CRAC coefficients, and RC ranges. A small random
/// objective picks a generic vertex of the feasible polytope.
pub fn generate_lp<R: Rng>(
    layout: &Layout,
    flows: &[f64],
    rng: &mut R,
) -> Result<CrossInterference, String> {
    let nc = layout.n_crac;
    let n = layout.n_units();
    assert_eq!(flows.len(), n);
    let m = layout.m_matrix();

    let mut p = Problem::new(Sense::Maximize);
    // Support map: var ids for the allowed (i, j) pairs.
    let mut var: Vec<Vec<Option<VarId>>> = vec![vec![None; n]; n];
    // Node -> CRAC entries, bounded per Appendix B constraints 3-4.
    for i in 0..layout.n_nodes() {
        let gi = nc + i;
        let (ec_min, ec_max) = layout.nodes[i].label.ec_range();
        let ha = layout.nodes[i].hot_aisle;
        for j in 0..nc {
            let lo = ec_min * m[ha][j];
            let hi = ec_max * m[ha][j];
            var[gi][j] = Some(p.add_var(
                &format!("a_n{i}_c{j}"),
                lo,
                hi,
                rng.gen_range(-1.0..1.0),
            ));
        }
        // Node -> node entries restricted to the same hot aisle.
        for j in 0..layout.n_nodes() {
            if recirc_weight(layout, i, j) > 0.0 {
                var[gi][nc + j] = Some(p.add_var(
                    &format!("a_n{i}_n{j}"),
                    0.0,
                    1.0,
                    rng.gen_range(-1.0..1.0),
                ));
            }
        }
    }
    // CRAC rows: supply to every node plus bypass to every CRAC.
    for c in 0..nc {
        for j in 0..layout.n_nodes() {
            var[c][nc + j] = Some(p.add_var(
                &format!("a_c{c}_n{j}"),
                0.0,
                1.0,
                rng.gen_range(-1.0..1.0),
            ));
        }
        for c2 in 0..nc {
            var[c][c2] = Some(p.add_var(
                &format!("a_c{c}_c{c2}"),
                0.0,
                1.0,
                rng.gen_range(-1.0..1.0),
            ));
        }
    }

    // Constraint 1: rows sum to 1.
    for i in 0..n {
        let terms: Vec<_> = (0..n)
            .filter_map(|j| var[i][j].map(|v| (v, 1.0)))
            .collect();
        p.add_row(&format!("rowsum{i}"), &terms, RowOp::Eq, 1.0);
    }
    // Constraint 2: inlet flow balance.
    for j in 0..n {
        let terms: Vec<_> = (0..n)
            .filter_map(|i| var[i][j].map(|v| (v, flows[i])))
            .collect();
        p.add_row(&format!("flow{j}"), &terms, RowOp::Eq, flows[j]);
    }
    // Constraint 5: RC ranges (flow-weighted share of node intake).
    for j in 0..layout.n_nodes() {
        let gj = nc + j;
        let (rc_min, rc_max) = layout.nodes[j].label.rc_range();
        let terms: Vec<_> = (0..layout.n_nodes())
            .filter_map(|i| var[nc + i][gj].map(|v| (v, flows[nc + i])))
            .collect();
        p.add_row(
            &format!("rc_lo{j}"),
            &terms,
            RowOp::Ge,
            rc_min * flows[gj],
        );
        p.add_row(
            &format!("rc_hi{j}"),
            &terms,
            RowOp::Le,
            rc_max * flows[gj],
        );
    }

    let sol = p.solve().map_err(|e| format!("Appendix-B LP: {e}"))?;
    let mut alpha = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if let Some(v) = var[i][j] {
                alpha[(i, j)] = sol.value(v).max(0.0);
            }
        }
    }
    let ci = CrossInterference::from_matrix(nc, alpha);
    ci.validate(layout, flows).map(|()| ci)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ipf_small_layout_validates() {
        let layout = Layout::hot_cold_aisle(2, 20);
        let flows = uniform_flows(&layout, 0.07, None);
        let mut rng = StdRng::seed_from_u64(42);
        let ci = generate_ipf(&layout, &flows, &mut rng).expect("ipf generation");
        assert_eq!(ci.n_units(), 22);
        // validate() already ran, but double-check a couple of invariants
        // through the public accessors.
        for node in 0..20 {
            let ec = ci.exit_coefficient(node);
            assert!((0.0..=1.0).contains(&ec));
        }
    }

    #[test]
    fn ipf_paper_scale_validates() {
        let layout = Layout::hot_cold_aisle(3, 150);
        let flows = uniform_flows(&layout, 0.07, None);
        let mut rng = StdRng::seed_from_u64(7);
        let ci = generate_ipf(&layout, &flows, &mut rng).expect("ipf generation at 150 nodes");
        assert_eq!(ci.n_units(), 153);
    }

    #[test]
    fn ipf_heterogeneous_flows_validate() {
        let layout = Layout::hot_cold_aisle(2, 30);
        let node_flows: Vec<f64> = (0..30)
            .map(|i| if i % 2 == 0 { 0.07 } else { 0.0828 })
            .collect();
        let flows = flows_from_node_flows(&layout, &node_flows);
        let mut rng = StdRng::seed_from_u64(123);
        generate_ipf(&layout, &flows, &mut rng).expect("heterogeneous flows");
    }

    #[test]
    fn lp_small_layout_validates() {
        let layout = Layout::hot_cold_aisle(2, 20);
        let flows = uniform_flows(&layout, 0.07, None);
        let mut rng = StdRng::seed_from_u64(9);
        let ci = generate_lp(&layout, &flows, &mut rng).expect("lp generation");
        assert_eq!(ci.n_units(), 22);
    }

    #[test]
    fn a_matrix_rows_sum_to_one() {
        let layout = Layout::hot_cold_aisle(2, 20);
        let flows = uniform_flows(&layout, 0.07, None);
        let mut rng = StdRng::seed_from_u64(1);
        let ci = generate_ipf(&layout, &flows, &mut rng).unwrap();
        let a = ci.a_matrix(&flows);
        for i in 0..a.rows() {
            let s: f64 = a.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {i} sums to {s}");
        }
    }

    #[test]
    fn generators_agree_on_constraint_set() {
        // Both generators must satisfy the same validator on the same
        // inputs (they produce different matrices, of course).
        let layout = Layout::hot_cold_aisle(1, 10);
        let flows = uniform_flows(&layout, 0.07, None);
        let mut rng = StdRng::seed_from_u64(33);
        let a = generate_ipf(&layout, &flows, &mut rng).expect("ipf");
        let b = generate_lp(&layout, &flows, &mut rng).expect("lp");
        assert!(a.validate(&layout, &flows).is_ok());
        assert!(b.validate(&layout, &flows).is_ok());
    }

    #[test]
    fn validate_rejects_bad_row_sums() {
        let layout = Layout::hot_cold_aisle(1, 4);
        let flows = uniform_flows(&layout, 0.07, None);
        let alpha = Matrix::zeros(5, 5);
        let ci = CrossInterference::from_matrix(1, alpha);
        assert!(ci.validate(&layout, &flows).is_err());
    }

    #[test]
    fn different_seeds_give_different_matrices() {
        let layout = Layout::hot_cold_aisle(2, 20);
        let flows = uniform_flows(&layout, 0.07, None);
        let a = generate_ipf(&layout, &flows, &mut StdRng::seed_from_u64(1)).unwrap();
        let b = generate_ipf(&layout, &flows, &mut StdRng::seed_from_u64(2)).unwrap();
        let mut differ = false;
        for i in 0..a.n_units() {
            for j in 0..a.n_units() {
                if (a.alpha(i, j) - b.alpha(i, j)).abs() > 1e-9 {
                    differ = true;
                }
            }
        }
        assert!(differ, "seeds must produce distinct coefficient matrices");
    }
}
