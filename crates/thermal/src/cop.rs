//! CRAC unit efficiency and power (paper Eqs. 2–3 and 8).

use crate::RHO_CP;
use serde::{Deserialize, Serialize};

/// Coefficient of Performance of a CRAC unit as a function of its outlet
/// (supply) temperature `tau` in °C — the curve measured at the HP Labs
/// Utility Data Center (Eq. 8, via Moore et al. \[22\]):
///
/// ```text
/// CoP(τ) = 0.0068 τ² + 0.0008 τ + 0.458
/// ```
///
/// Warmer supply air is cheaper to produce: CoP grows quadratically with
/// the outlet temperature, which is exactly the tradeoff the Stage-1 CRAC
/// temperature search exploits.
pub fn cop(tau_c: f64) -> f64 {
    0.0068 * tau_c * tau_c + 0.0008 * tau_c + 0.458
}

/// Power drawn by a CRAC unit (Eq. 3): heat removed (Eq. 2) divided by
/// CoP, and zero when the inlet is no warmer than the assigned outlet
/// (nothing to remove).
///
/// `flow_m3s` is the unit's air flow rate, temperatures in °C, result in
/// kW.
pub fn crac_power_kw(flow_m3s: f64, t_in: f64, t_out: f64) -> f64 {
    if t_in <= t_out {
        return 0.0;
    }
    let heat_kw = RHO_CP * flow_m3s * (t_in - t_out);
    heat_kw / cop(t_out)
}

/// A CRAC unit: its air flow and the admissible outlet-temperature range
/// searched by Stage 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CracUnit {
    /// Air flow rate in m³/s (`FCRAC` in Eqs. 2–3).
    pub flow_m3s: f64,
    /// Lowest outlet temperature the unit can be assigned, °C.
    pub min_outlet_c: f64,
    /// Highest outlet temperature the unit can be assigned, °C.
    pub max_outlet_c: f64,
}

impl CracUnit {
    /// A unit with the workspace's default searchable outlet range
    /// (10…25 °C; see DESIGN.md §5).
    pub fn with_flow(flow_m3s: f64) -> CracUnit {
        CracUnit {
            flow_m3s,
            min_outlet_c: 10.0,
            max_outlet_c: 25.0,
        }
    }

    /// Power at the given inlet/outlet temperatures (Eq. 3).
    pub fn power_kw(&self, t_in: f64, t_out: f64) -> f64 {
        crac_power_kw(self.flow_m3s, t_in, t_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cop_matches_equation_8() {
        // Spot values computed by hand from Eq. 8.
        assert!((cop(0.0) - 0.458).abs() < 1e-12);
        assert!((cop(15.0) - (0.0068 * 225.0 + 0.012 + 0.458)).abs() < 1e-12);
        assert!((cop(25.0) - (0.0068 * 625.0 + 0.02 + 0.458)).abs() < 1e-12);
    }

    #[test]
    fn cop_increases_with_outlet_temperature() {
        let mut prev = cop(5.0);
        for t in 6..=40 {
            let c = cop(t as f64);
            assert!(c > prev);
            prev = c;
        }
    }

    #[test]
    fn crac_power_zero_when_no_heat() {
        assert_eq!(crac_power_kw(10.0, 15.0, 15.0), 0.0);
        assert_eq!(crac_power_kw(10.0, 14.0, 15.0), 0.0);
    }

    #[test]
    fn crac_power_matches_equation_3() {
        // flow 2 m³/s, inlet 35, outlet 15: heat = 1.205 * 2 * 20 kW.
        let heat = RHO_CP * 2.0 * 20.0;
        let expected = heat / cop(15.0);
        assert!((crac_power_kw(2.0, 35.0, 15.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn warmer_outlet_is_cheaper_for_same_inlet() {
        // Raising the outlet temperature cuts both the heat removed and
        // boosts CoP, so power strictly drops.
        let p_cold = crac_power_kw(2.0, 35.0, 12.0);
        let p_warm = crac_power_kw(2.0, 35.0, 20.0);
        assert!(p_warm < p_cold);
    }

    #[test]
    fn unit_wrapper_delegates() {
        let u = CracUnit::with_flow(3.0);
        assert_eq!(u.power_kw(30.0, 15.0), crac_power_kw(3.0, 30.0, 15.0));
        assert!(u.min_outlet_c < u.max_outlet_c);
    }
}
