//! Thermal modeling of a hot-aisle/cold-aisle data center (paper Sections
//! III.E, IV, VI.E–G, and Appendix B).
//!
//! The crate implements the **Abstract Heat Flow Model** of Tang et
//! al. \[29\] as used by the paper: the inlet temperature of every CRAC unit
//! and compute node is a linear mixture of all outlet temperatures,
//! `Tin = A · Tout` (Eq. 5), where `A` is derived from cross-interference
//! coefficients `α[i][j]` — the fraction of unit `i`'s outlet air that
//! recirculates into unit `j`'s inlet.
//!
//! Pieces:
//!
//! * [`layout`] — the Figure-1 hot-aisle/cold-aisle floor plan, rack
//!   positions, the A–E node labels of Table II with their EC/RC ranges,
//!   and the `M(aisle, crac)` exhaust-split matrix.
//! * [`interference`] — generation of physically consistent `α`
//!   matrices: the Appendix-B **LP feasibility** formulation (exact, used
//!   at small scale) and a fast **iterative proportional fitting**
//!   generator (used for 150-node scenarios, where the paper itself
//!   replaced per-node CFD runs because they were prohibitive).
//! * [`model`] — steady-state temperature solve and, crucially for the
//!   Stage-1/baseline LPs, the *linear coefficients* mapping node powers to
//!   inlet temperatures at fixed CRAC outlet temperatures.
//! * [`cop`](mod@crate::cop) — the HP Utility Data Center CoP curve (Eq. 8) and CRAC power
//!   (Eqs. 2–3).
//! * [`transient`] — a lumped-capacitance transient extension for
//!   validating that redlines hold along temperature trajectories, not
//!   just at steady state.
//! * [`calibration`] — sensor-based least-squares recovery of the mixing
//!   matrix, closing the "estimated using sensor measurements" loop the
//!   paper delegates to \[29\].
//!
//! # Example
//!
//! ```
//! use thermaware_thermal::{layout::Layout, interference, model::ThermalModel};
//! use rand::SeedableRng;
//!
//! let layout = Layout::hot_cold_aisle(2, 20);
//! let flows = interference::uniform_flows(&layout, 0.07, None);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let alpha = interference::generate_ipf(&layout, &flows, &mut rng).unwrap();
//! let model = ThermalModel::new(&layout, &flows, &alpha, 25.0, 40.0).unwrap();
//! // 20 nodes at 0.5 kW each, CRACs blowing 18 °C:
//! let state = model.steady_state(&[18.0, 18.0], &vec![0.5; 20]);
//! assert!(state.max_node_inlet() > 18.0); // recirculation warms inlets
//! ```

pub mod calibration;
pub mod chip;
pub mod cop;
pub mod interference;
pub mod layout;
pub mod model;
pub mod transient;

pub use chip::{ChipGrid, ChipModel, ChipParams};
pub use cop::{cop, crac_power_kw, CracUnit};
pub use interference::CrossInterference;
pub use layout::{Label, Layout, NodePlacement};
pub use model::{ThermalCoefficients, ThermalModel, ThermalState};

/// Air density in kg/m³ (paper Appendix A).
pub const AIR_DENSITY: f64 = 1.205;
/// Specific heat capacity of air in kJ/(kg·K) (paper Appendix A; combined
/// with kW power and m³/s flows this yields °C temperature rises).
pub const AIR_CP: f64 = 1.0;
/// `ρ · Cp`, the factor appearing in Eqs. 2–4.
pub const RHO_CP: f64 = AIR_DENSITY * AIR_CP;
