//! Sensor-based estimation of the heat-flow matrix (paper Section IV:
//! *"The values in matrix A can be estimated using sensor measurements
//! \[29\]"*).
//!
//! A production deployment cannot read `A` off a blueprint — it probes
//! the room: run the floor at several power/outlet operating points,
//! record every inlet and outlet temperature, and fit
//! `Tin ≈ A · Tout` row by row. Because each inlet mixes *all* outlets
//! linearly, each row of `A` is an ordinary least-squares problem; with
//! at least as many (sufficiently diverse) operating points as units and
//! low sensor noise, the recovery is exact.
//!
//! This module provides the estimator plus a probe-plan helper that
//! generates diverse operating points, so the pipeline
//! *simulate sensors → estimate A → rebuild a [`ThermalModel`]* can be
//! tested end to end — closing the loop the paper delegates to \[29\].

use crate::model::ThermalModel;
use thermaware_linalg::{Lu, Matrix};

/// One probe observation: every unit's inlet and outlet temperature.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Inlet temperatures `[CRACs | nodes]`, °C.
    pub t_in: Vec<f64>,
    /// Outlet temperatures `[CRACs | nodes]`, °C.
    pub t_out: Vec<f64>,
}

/// Estimate the mixing matrix `A` from observations.
///
/// Solves the row-wise least-squares `min ‖X aᵢ − yᵢ‖²` with `X` the
/// stacked outlet vectors and `yᵢ` the inlet-`i` readings, via the normal
/// equations (the per-row system is `n_units × n_units`, well within the
/// dense solver's comfort zone). A tiny Tikhonov term keeps the normal
/// matrix invertible when probes are almost collinear.
///
/// Errors when fewer observations than units are supplied (the system
/// would be underdetermined no matter how diverse the probes are).
pub fn estimate_a_matrix(observations: &[Observation]) -> Result<Matrix, String> {
    let s = observations.len();
    if s == 0 {
        return Err("no observations".to_owned());
    }
    let n = observations[0].t_out.len();
    if s < n {
        return Err(format!("need at least {n} observations, got {s}"));
    }
    for (i, o) in observations.iter().enumerate() {
        if o.t_in.len() != n || o.t_out.len() != n {
            return Err(format!("observation {i} has inconsistent dimensions"));
        }
    }

    // Normal matrix G = X^T X (+ ridge) and per-row right-hand sides.
    let mut g = Matrix::zeros(n, n);
    for o in observations {
        for j in 0..n {
            for k in 0..n {
                g[(j, k)] += o.t_out[j] * o.t_out[k];
            }
        }
    }
    let ridge = 1e-12 * g.max_abs().max(1.0);
    for j in 0..n {
        g[(j, j)] += ridge;
    }
    let lu = Lu::factor(&g).map_err(|e| format!("normal matrix singular: {e}"))?;

    let mut a = Matrix::zeros(n, n);
    let mut rhs = vec![0.0; n];
    for i in 0..n {
        for v in rhs.iter_mut() {
            *v = 0.0;
        }
        for o in observations {
            for (j, r) in rhs.iter_mut().enumerate() {
                *r += o.t_out[j] * o.t_in[i];
            }
        }
        let row = lu.solve(&rhs).map_err(|e| format!("row {i}: {e}"))?;
        for (j, &v) in row.iter().enumerate() {
            a[(i, j)] = v;
        }
    }
    Ok(a)
}

/// Generate a diverse probe plan against a ground-truth model: vary which
/// nodes draw power and what the CRAC outlets blow, record the resulting
/// steady states, and optionally corrupt the readings with deterministic
/// pseudo-noise of amplitude `noise_c` (°C).
pub fn probe(
    model: &ThermalModel,
    n_observations: usize,
    max_node_power_kw: f64,
    noise_c: f64,
) -> Vec<Observation> {
    let nc = model.n_crac();
    let nn = model.n_nodes();
    (0..n_observations)
        .map(|s| {
            // Structured diversity: each probe powers a different subset
            // pattern and spreads the outlets.
            let powers: Vec<f64> = (0..nn)
                .map(|j| {
                    let on = (j + s) % 3 != 0;
                    let scale = 0.3 + 0.7 * (((j * 7 + s * 13) % 10) as f64 / 10.0);
                    if on {
                        max_node_power_kw * scale
                    } else {
                        0.1 * max_node_power_kw
                    }
                })
                .collect();
            let outlets: Vec<f64> = (0..nc)
                .map(|c| 12.0 + ((s + c * 3) % 10) as f64)
                .collect();
            let state = model.steady_state(&outlets, &powers);
            // Deterministic "sensor noise": a cheap hash-driven dither so
            // tests stay reproducible without threading an RNG through.
            let dither = |u: usize| -> f64 {
                if noise_c == 0.0 { // lint: allow(float-eq): noise_c is a literal-set parameter, never computed
                    return 0.0;
                }
                let h = (u.wrapping_mul(2654435761) ^ s.wrapping_mul(40503)) % 1000;
                noise_c * (h as f64 / 500.0 - 1.0)
            };
            Observation {
                t_in: state.t_in.iter().enumerate().map(|(u, &t)| t + dither(u)).collect(),
                t_out: state
                    .t_out
                    .iter()
                    .enumerate()
                    .map(|(u, &t)| t + dither(u + 7777))
                    .collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::{generate_ipf, uniform_flows};
    use crate::layout::Layout;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ground_truth() -> (Layout, Vec<f64>, ThermalModel) {
        let layout = Layout::hot_cold_aisle(2, 20);
        let flows = uniform_flows(&layout, 0.07, None);
        let mut rng = StdRng::seed_from_u64(21);
        let ci = generate_ipf(&layout, &flows, &mut rng).unwrap();
        let model = ThermalModel::new(&layout, &flows, &ci, 25.0, 40.0).unwrap();
        (layout, flows, model)
    }

    #[test]
    fn noiseless_probes_recover_a_exactly() {
        let (_, _, model) = ground_truth();
        let obs = probe(&model, 40, 0.8, 0.0);
        let a_hat = estimate_a_matrix(&obs).expect("estimation");
        let err = a_hat.sub(model.a_matrix()).unwrap().max_abs();
        assert!(err < 1e-5, "recovery error {err}");
    }

    #[test]
    fn recovered_rows_sum_to_one() {
        let (_, _, model) = ground_truth();
        let obs = probe(&model, 40, 0.8, 0.0);
        let a_hat = estimate_a_matrix(&obs).unwrap();
        for i in 0..a_hat.rows() {
            let s: f64 = a_hat.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {i} sums to {s}");
        }
    }

    #[test]
    fn noisy_probes_recover_a_approximately() {
        let (_, _, model) = ground_truth();
        // 0.05 °C sensor noise, plenty of probes.
        let obs = probe(&model, 120, 0.8, 0.05);
        let a_hat = estimate_a_matrix(&obs).expect("estimation");
        let err = a_hat.sub(model.a_matrix()).unwrap().max_abs();
        assert!(err < 0.08, "noisy recovery error {err}");
        // Predictions from the estimated matrix stay close: compare the
        // implied inlets on a held-out operating point.
        let held_out = model.steady_state(&[15.0, 19.0], &[0.55; 20]);
        let predicted = a_hat.mat_vec(&held_out.t_out);
        for (p, t) in predicted.iter().zip(&held_out.t_in) {
            assert!((p - t).abs() < 0.3, "predicted {p} vs true {t}");
        }
    }

    #[test]
    fn too_few_observations_error() {
        let (_, _, model) = ground_truth();
        let obs = probe(&model, 5, 0.8, 0.0);
        assert!(estimate_a_matrix(&obs).is_err());
        assert!(estimate_a_matrix(&[]).is_err());
    }
}
