//! Chip-level thermal interference: a per-node core-grid conductance
//! model with a precomputed inverse and TSPD power budgets.
//!
//! The room model (`model`) stops at node inlets; this module goes one
//! level down. Each node's cores sit on a near-square grid on one die,
//! and the steady-state core temperatures follow the conductance system
//!
//! ```text
//! B · T = P + T_amb · G        =>        T = B⁻¹ · (P + T_amb · G)
//! ```
//!
//! where `P` is the per-core power (watts), `G[i]` is core `i`'s
//! conductance to ambient (the node inlet air), and `B` is the
//! conductance matrix. The grid geometry, the edge-cooling factor, and
//! the distance-decayed neighbor coupling follow the reference
//! implementation in SNIPPETS.md snippets 2–3 (Hmadih, thermal-aware
//! task migration in many-core systems); one deliberate deviation is
//! documented on [`ChipGrid::build`]: `B` is assembled as a graph
//! Laplacian plus the ambient diagonal (an M-matrix), so `B⁻¹` is
//! entrywise non-negative and more power anywhere can only raise
//! temperatures. The snippet's raw positive off-diagonals would make a
//! neighbor's power *cool* core `i`, inverting the logic migration
//! relies on.
//!
//! `B⁻¹` is computed once per node type with [`crate::...`] — well,
//! with `thermaware_linalg`'s LU — and reused for every temperature
//! query; the supervisor's migration rung evaluates hundreds of
//! candidate swaps per response, all O(cores²) mat-vecs.

use thermaware_linalg::{LinalgError, Lu, Matrix};

/// Chip-model tuning knobs. All conductances in W/°C, powers in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipParams {
    /// Die thermal-trip redline (DTM threshold), °C.
    pub t_dtm_c: f64,
    /// Core-to-ambient conductance scale (the snippet's `0.08`, rescaled
    /// for this workload's per-core watts). Edge cores cool better via
    /// the snippet's edge factor.
    pub ambient_w_per_c: f64,
    /// Peak core-to-core coupling at distance 1 (the snippet's `0.7`).
    pub neighbor_w_per_c: f64,
    /// Exponential distance decay of the coupling (the snippet's `1.2`).
    pub decay: f64,
}

impl Default for ChipParams {
    /// Defaults sized for this repo's P-state tables (per-core draws of
    /// a few to ~15 W): a lone busy core rises ~25–45 °C above its
    /// inlet, a fully hot chip runs close to the 85 °C DTM redline.
    fn default() -> ChipParams {
        ChipParams {
            t_dtm_c: 85.0,
            ambient_w_per_c: 0.45,
            neighbor_w_per_c: 0.25,
            decay: 1.2,
        }
    }
}

/// One node type's die: grid geometry, ambient conductances, and the
/// precomputed `B⁻¹`.
#[derive(Debug, Clone)]
pub struct ChipGrid {
    n: usize,
    w: usize,
    h: usize,
    g: Vec<f64>,
    b_inv: Matrix,
    t_dtm_c: f64,
}

impl ChipGrid {
    /// Build the conductance system for an `n_cores`-core die and
    /// factor it.
    ///
    /// Geometry and coefficients per SNIPPETS.md snippet 3: cores on a
    /// near-square row-major grid, ambient conductance
    /// `G[i] = g0 · (0.3 + 0.7·(dx_edge + dy_edge)/(w+h))`, neighbor
    /// coupling `c_ij = c0 · exp(-dist/decay)`. Deviation: `B` is
    /// assembled as `B[i][i] = G[i] + Σ_j c_ij`, `B[i][j] = -c_ij`
    /// (Laplacian + ambient diagonal), so `B · 1 = G` and a powered-off
    /// chip sits exactly at ambient.
    pub fn build(n_cores: usize, params: &ChipParams) -> Result<ChipGrid, LinalgError> {
        let n = n_cores.max(1);
        let w = (n as f64).sqrt().ceil() as usize;
        let h = n.div_ceil(w);
        let xy = |i: usize| ((i % w) as f64, (i / w) as f64);

        let mut g = vec![0.0; n];
        let mut b = Matrix::zeros(n, n);
        for i in 0..n {
            let (xi, yi) = xy(i);
            let dx = xi.min(w as f64 - xi - 1.0).max(0.0);
            let dy = yi.min(h as f64 - yi - 1.0).max(0.0);
            let edge_factor = 0.3 + 0.7 * (dx + dy) / (w + h) as f64;
            g[i] = params.ambient_w_per_c * edge_factor;
            b.row_mut(i)[i] += g[i];
            for j in (i + 1)..n {
                let (xj, yj) = xy(j);
                let dist = (xi - xj).hypot(yi - yj);
                let c = params.neighbor_w_per_c * (-dist / params.decay).exp();
                b.row_mut(i)[i] += c;
                b.row_mut(j)[j] += c;
                b.row_mut(i)[j] -= c;
                b.row_mut(j)[i] -= c;
            }
        }

        let b_inv = Lu::factor(&b)?.inverse()?;
        Ok(ChipGrid {
            n,
            w,
            h,
            g,
            b_inv,
            t_dtm_c: params.t_dtm_c,
        })
    }

    /// Cores on this die.
    pub fn n_cores(&self) -> usize {
        self.n
    }

    /// Grid shape `(w, h)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.w, self.h)
    }

    /// Die thermal-trip redline, °C.
    pub fn t_dtm_c(&self) -> f64 {
        self.t_dtm_c
    }

    /// Grid position of core `i` on the die (row-major).
    pub fn core_xy(&self, i: usize) -> (usize, usize) {
        (i % self.w, i / self.w)
    }

    /// Steady-state core temperatures (°C) at the given node inlet
    /// (ambient) temperature and per-core powers in **kW** (the unit
    /// the P-state tables use; converted to watts internally).
    pub fn core_temps(&self, ambient_c: f64, core_power_kw: &[f64]) -> Vec<f64> {
        debug_assert_eq!(core_power_kw.len(), self.n);
        let rhs: Vec<f64> = (0..self.n)
            .map(|i| core_power_kw[i] * 1000.0 + ambient_c * self.g[i])
            .collect();
        self.b_inv.mat_vec(&rhs)
    }

    /// Hottest core temperature (°C); `ambient_c` when the power vector
    /// is empty.
    pub fn peak_c(&self, ambient_c: f64, core_power_kw: &[f64]) -> f64 {
        self.core_temps(ambient_c, core_power_kw)
            .into_iter()
            .fold(ambient_c, f64::max)
    }

    /// Grid positions ranked coolest-first for placement: ascending
    /// self-heating `B⁻¹[i][i]` (°C per watt at core `i` from its own
    /// draw), ties broken by index for determinism. Putting the largest
    /// per-core powers on the earliest positions minimizes hotspots
    /// under the sort-based placement heuristic.
    pub fn placement_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.n).collect();
        order.sort_by(|&a, &b| {
            self.b_inv.row(a)[a]
                .total_cmp(&self.b_inv.row(b)[b])
                .then(a.cmp(&b))
        });
        order
    }

    /// Thermal-safe power density: for each **active** core `i`, the
    /// uniform per-active-core power (watts) that would put core `i`
    /// exactly at the DTM redline if every active core drew it
    /// (snippet 2's `getTSPD` with this workload's zero idle draw and
    /// unit activity factors). Idle cores get `+inf`; a core whose
    /// redline is unreachable gets `0`.
    pub fn tspd_w(&self, ambient_c: f64, active: &[bool]) -> Vec<f64> {
        debug_assert_eq!(active.len(), self.n);
        (0..self.n)
            .map(|i| {
                if !active[i] {
                    return f64::INFINITY;
                }
                let numerator = self.t_dtm_c - ambient_c;
                let denominator: f64 = (0..self.n)
                    .filter(|&j| active[j])
                    .map(|j| self.b_inv.row(i)[j])
                    .sum();
                if denominator > 1e-10 && numerator > 0.0 {
                    numerator / denominator
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// The chip-wide TSPD budget: the binding (smallest) active-core
    /// budget from [`ChipGrid::tspd_w`], or `+inf` if nothing is active.
    pub fn tspd_budget_w(&self, ambient_c: f64, active: &[bool]) -> f64 {
        self.tspd_w(ambient_c, active)
            .into_iter()
            .fold(f64::INFINITY, f64::min)
    }
}

/// The chip-level thermal model for a whole floor: one factored
/// [`ChipGrid`] per node type (every node of a type shares a die
/// layout) and the common DTM redline.
#[derive(Debug, Clone)]
pub struct ChipModel {
    grids: Vec<ChipGrid>,
    t_dtm_c: f64,
}

impl ChipModel {
    /// Build one grid per node type from the type's core count.
    pub fn build(cores_per_node: &[usize], params: &ChipParams) -> Result<ChipModel, LinalgError> {
        let grids = cores_per_node
            .iter()
            .map(|&n| ChipGrid::build(n, params))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ChipModel {
            grids,
            t_dtm_c: params.t_dtm_c,
        })
    }

    /// Number of node types modeled.
    pub fn n_types(&self) -> usize {
        self.grids.len()
    }

    /// The die model of node type `t`.
    pub fn grid(&self, node_type: usize) -> &ChipGrid {
        &self.grids[node_type]
    }

    /// Die thermal-trip redline, °C (shared by all types).
    pub fn t_dtm_c(&self) -> f64 {
        self.t_dtm_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powered_off_chip_sits_at_ambient() {
        let grid = ChipGrid::build(16, &ChipParams::default()).expect("grid builds");
        let temps = grid.core_temps(25.0, &[0.0; 16]);
        for t in temps {
            assert!((t - 25.0).abs() < 1e-6, "idle core at {t} °C, want ambient");
        }
    }

    #[test]
    fn power_anywhere_only_raises_temperatures() {
        let grid = ChipGrid::build(9, &ChipParams::default()).expect("grid builds");
        let base = grid.core_temps(20.0, &[0.005; 9]);
        let mut hotter = vec![0.005; 9];
        hotter[4] += 0.010; // +10 W on the center core
        let after = grid.core_temps(20.0, &hotter);
        for (b, a) in base.iter().zip(&after) {
            assert!(*a >= *b - 1e-9, "M-matrix property: temps never drop");
        }
        assert!(after[4] > base[4] + 1.0, "the powered core heats up");
    }

    #[test]
    fn clustered_load_runs_hotter_than_spread_load() {
        let grid = ChipGrid::build(16, &ChipParams::default()).expect("grid builds");
        // Same total power: 4 × 12 W clustered in a corner vs spread out.
        let mut clustered = vec![0.0; 16];
        for &i in &[0usize, 1, 4, 5] {
            clustered[i] = 0.012;
        }
        let mut spread = vec![0.0; 16];
        for &i in &[0usize, 3, 12, 15] {
            spread[i] = 0.012;
        }
        let hot = grid.peak_c(22.0, &clustered);
        let cool = grid.peak_c(22.0, &spread);
        assert!(
            hot > cool + 0.5,
            "clustered peak {hot} should exceed spread peak {cool}"
        );
    }

    #[test]
    fn tspd_idle_cores_are_unconstrained() {
        let grid = ChipGrid::build(8, &ChipParams::default()).expect("grid builds");
        let active = [true, false, true, false, true, false, true, false];
        let r = grid.tspd_w(25.0, &active);
        for (i, v) in r.iter().enumerate() {
            if active[i] {
                assert!(v.is_finite() && *v > 0.0, "active core {i} budget {v}");
            } else {
                assert!(v.is_infinite(), "idle core {i} must be unconstrained");
            }
        }
        // Hotter ambient shrinks every active budget.
        let tighter = grid.tspd_w(45.0, &active);
        for i in 0..8 {
            if active[i] {
                assert!(tighter[i] < r[i]);
            }
        }
    }

    #[test]
    fn tspd_budget_zero_when_ambient_exceeds_dtm() {
        let grid = ChipGrid::build(4, &ChipParams::default()).expect("grid builds");
        let b = grid.tspd_budget_w(90.0, &[true; 4]);
        assert_eq!(b, 0.0); // lint: allow(float-eq): the budget is the literal 0.0 fallback, never computed
    }

    #[test]
    fn model_builds_one_grid_per_type() {
        let model =
            ChipModel::build(&[4, 16], &ChipParams::default()).expect("model builds");
        assert_eq!(model.n_types(), 2);
        assert_eq!(model.grid(0).n_cores(), 4);
        assert_eq!(model.grid(1).n_cores(), 16);
        assert_eq!(model.grid(1).shape(), (4, 4));
    }
}
