//! Lumped-capacitance transient thermal simulation (extension).
//!
//! The paper's first-step assignment reasons about *steady-state*
//! temperatures and justifies this with the timescale separation:
//! "Temperature evolution in the data center is in orders of minutes,
//! while the execution of a task is in orders of seconds" (Section V.A).
//! This module makes that argument checkable: it integrates a first-order
//! relaxation of the outlet temperatures toward their instantaneous
//! steady-state values,
//!
//! ```text
//! d Tout_n / dt = (Tout_n*(P(t), c(t)) − Tout_n) / τ
//! ```
//!
//! with a configurable thermal time constant `τ` (minutes), so
//! experiments can verify that redlines hold *along the trajectory* of a
//! P-state reassignment, not only at its endpoints.

use crate::model::{ThermalModel, ThermalState};

/// Transient integrator over a [`ThermalModel`].
#[derive(Debug, Clone)]
pub struct TransientSim {
    /// Thermal time constant of node thermal masses, seconds.
    pub time_constant_s: f64,
    /// Integration step, seconds.
    pub dt_s: f64,
    /// Current node outlet temperatures, °C.
    t_out_nodes: Vec<f64>,
    /// Elapsed simulated time, seconds.
    elapsed_s: f64,
}

impl TransientSim {
    /// Start a transient from an initial steady state.
    pub fn from_steady_state(model: &ThermalModel, initial: &ThermalState) -> TransientSim {
        TransientSim {
            time_constant_s: 120.0,
            dt_s: 1.0,
            t_out_nodes: initial.t_out[model.n_crac()..].to_vec(),
            elapsed_s: 0.0,
        }
    }

    /// Elapsed simulated time in seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }

    /// Advance `duration_s` seconds under fixed CRAC outlets and node
    /// powers, returning the state at the end of the interval.
    ///
    /// Integration is explicit Euler on the relaxation equation; with
    /// `dt << τ` (default 1 s vs 120 s) this is comfortably stable.
    pub fn advance(
        &mut self,
        model: &ThermalModel,
        crac_out_c: &[f64],
        node_power_kw: &[f64],
        duration_s: f64,
    ) -> ThermalState {
        let target = model.steady_state(crac_out_c, node_power_kw);
        let target_out = &target.t_out[model.n_crac()..];
        let steps = (duration_s / self.dt_s).ceil().max(1.0) as usize;
        let dt = duration_s / steps as f64;
        let k = dt / self.time_constant_s;
        for _ in 0..steps {
            for (t, &tt) in self.t_out_nodes.iter_mut().zip(target_out) {
                *t += k * (tt - *t);
            }
        }
        self.elapsed_s += duration_s;
        self.state(model, crac_out_c)
    }

    /// Current temperatures, deriving inlets from the mixing matrix.
    pub fn state(&self, model: &ThermalModel, crac_out_c: &[f64]) -> ThermalState {
        let nc = model.n_crac();
        let mut t_out = Vec::with_capacity(nc + self.t_out_nodes.len());
        t_out.extend_from_slice(crac_out_c);
        t_out.extend_from_slice(&self.t_out_nodes);
        let t_in = model.a_matrix().mat_vec(&t_out);
        ThermalState {
            n_crac: nc,
            t_in,
            t_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::{generate_ipf, uniform_flows};
    use crate::layout::Layout;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> ThermalModel {
        let layout = Layout::hot_cold_aisle(1, 10);
        let flows = uniform_flows(&layout, 0.07, None);
        let mut rng = StdRng::seed_from_u64(3);
        let ci = generate_ipf(&layout, &flows, &mut rng).unwrap();
        ThermalModel::new(&layout, &flows, &ci, 25.0, 40.0).unwrap()
    }

    #[test]
    fn converges_to_steady_state() {
        let m = model();
        let cold = m.steady_state(&[18.0], &[0.1; 10]);
        let mut sim = TransientSim::from_steady_state(&m, &cold);
        // Step the power up and integrate ten time constants.
        let hot_target = m.steady_state(&[18.0], &[0.7; 10]);
        let end = sim.advance(&m, &[18.0], &[0.7; 10], 10.0 * sim.time_constant_s);
        for (a, b) in end.t_out.iter().zip(&hot_target.t_out) {
            assert!((a - b).abs() < 0.01, "{a} vs {b}");
        }
    }

    #[test]
    fn monotone_approach_no_overshoot() {
        // First-order relaxation toward a hotter steady state must heat
        // monotonically and never overshoot the target.
        let m = model();
        let cold = m.steady_state(&[18.0], &[0.1; 10]);
        let target = m.steady_state(&[18.0], &[0.7; 10]);
        let mut sim = TransientSim::from_steady_state(&m, &cold);
        let mut prev = cold.max_node_inlet();
        for _ in 0..20 {
            let s = sim.advance(&m, &[18.0], &[0.7; 10], 30.0);
            let now = s.max_node_inlet();
            assert!(now >= prev - 1e-9, "cooling while heating up");
            assert!(now <= target.max_node_inlet() + 1e-6, "overshoot");
            prev = now;
        }
    }

    #[test]
    fn elapsed_time_accumulates() {
        let m = model();
        let s0 = m.steady_state(&[18.0], &[0.2; 10]);
        let mut sim = TransientSim::from_steady_state(&m, &s0);
        sim.advance(&m, &[18.0], &[0.2; 10], 45.0);
        sim.advance(&m, &[18.0], &[0.2; 10], 15.0);
        assert!((sim.elapsed_s() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn timescale_separation_holds() {
        // After one second (a task execution time), temperatures have
        // barely moved — the quantitative basis for the paper's two-step
        // split.
        let m = model();
        let cold = m.steady_state(&[18.0], &[0.1; 10]);
        let target = m.steady_state(&[18.0], &[0.7; 10]);
        let mut sim = TransientSim::from_steady_state(&m, &cold);
        let s = sim.advance(&m, &[18.0], &[0.7; 10], 1.0);
        let full_swing = target.max_node_inlet() - cold.max_node_inlet();
        let moved = s.max_node_inlet() - cold.max_node_inlet();
        assert!(moved < 0.02 * full_swing, "moved {moved} of {full_swing}");
    }
}
