//! Steady-state thermal model (paper Section IV) and the linear
//! power→temperature coefficients consumed by the optimization LPs.
//!
//! With outlet temperatures ordered `[CRACs | nodes]` and `Tin = A·Tout`
//! (Eq. 5), node outlets obey Eq. 4 (`Tout = Tin + P/(ρ·Cp·F)`) while CRAC
//! outlets are *assigned*. Writing `A` in blocks
//!
//! ```text
//!        ┌ A_cc  A_cn ┐   (c = CRAC, n = node)
//!   A =  └ A_nc  A_nn ┘
//! ```
//!
//! the node-outlet fixed point is `(I − A_nn)·Tout_n = A_nc·c + D·P`, with
//! `D = diag(1/(ρ·Cp·F_j))` and `c` the CRAC outlet vector. `(I − A_nn)`
//! is factored once per scenario; inlet temperatures everywhere are then
//! *affine in the node powers* at fixed `c`:
//!
//! ```text
//! Tin_nodes = base_n(c) + G_n · P      Tin_cracs = base_c(c) + G_c · P
//! ```
//!
//! `G_n = A_nn·M·D` and `G_c = A_cn·M·D` (`M = (I − A_nn)⁻¹`) do **not**
//! depend on `c`, so the Stage-1 CRAC-temperature search recomputes only
//! the `base` vectors per candidate — the expensive inverse is paid once.

use crate::interference::CrossInterference;
use crate::layout::Layout;
use crate::{cop, RHO_CP};
use thermaware_linalg::{Lu, Matrix};

/// Steady-state temperatures of every unit.
#[derive(Debug, Clone)]
pub struct ThermalState {
    /// Number of CRAC units (prefix of each vector).
    pub n_crac: usize,
    /// Inlet temperature of every unit, °C, `[CRACs | nodes]`.
    pub t_in: Vec<f64>,
    /// Outlet temperature of every unit, °C, `[CRACs | nodes]`.
    pub t_out: Vec<f64>,
}

impl ThermalState {
    /// Hottest node inlet, °C.
    pub fn max_node_inlet(&self) -> f64 {
        self.t_in[self.n_crac..]
            .iter()
            .fold(f64::NEG_INFINITY, |m, &t| m.max(t))
    }

    /// Hottest CRAC inlet, °C.
    pub fn max_crac_inlet(&self) -> f64 {
        self.t_in[..self.n_crac]
            .iter()
            .fold(f64::NEG_INFINITY, |m, &t| m.max(t))
    }

    /// Worst redline violation in °C (≤ 0 when all inlets are safe).
    pub fn redline_violation(&self, node_redline_c: f64, crac_redline_c: f64) -> f64 {
        (self.max_node_inlet() - node_redline_c).max(self.max_crac_inlet() - crac_redline_c)
    }
}

/// Affine inlet-temperature coefficients at fixed CRAC outlets.
#[derive(Debug, Clone)]
pub struct ThermalCoefficients {
    /// `Tin_node_i = base_node[i] + Σ_j g_node[(i, j)] · P_j`.
    pub base_node: Vec<f64>,
    /// Node-inlet sensitivity to node powers (`n_nodes × n_nodes`).
    pub g_node: Matrix,
    /// `Tin_crac_i = base_crac[i] + Σ_j g_crac[(i, j)] · P_j`.
    pub base_crac: Vec<f64>,
    /// CRAC-inlet sensitivity to node powers (`n_crac × n_nodes`).
    pub g_crac: Matrix,
}

/// The assembled steady-state thermal model of one data center.
#[derive(Debug, Clone)]
pub struct ThermalModel {
    n_crac: usize,
    n_nodes: usize,
    /// Air flows `[CRACs | nodes]`, m³/s.
    flows: Vec<f64>,
    /// Heat-flow mixing matrix `A` (Eq. 5).
    a: Matrix,
    /// `M = (I − A_nn)⁻¹`.
    m_inv: Matrix,
    /// `G_n = A_nn · M · D` (node-inlet sensitivities).
    g_node: Matrix,
    /// `G_c = A_cn · M · D` (CRAC-inlet sensitivities).
    g_crac: Matrix,
    /// Redline inlet temperature for nodes, °C (Eq. 6).
    pub node_redline_c: f64,
    /// Redline inlet temperature for CRAC units, °C (Eq. 6).
    pub crac_redline_c: f64,
}

impl ThermalModel {
    /// Assemble a model from a layout, per-unit flows, and validated
    /// cross-interference coefficients. Factors `(I − A_nn)` once.
    ///
    /// Errors if the recirculation structure is singular (physically: a
    /// closed recirculation loop with no CRAC influence, which cannot
    /// reach steady state).
    pub fn new(
        layout: &Layout,
        flows: &[f64],
        ci: &CrossInterference,
        node_redline_c: f64,
        crac_redline_c: f64,
    ) -> Result<ThermalModel, String> {
        let nc = layout.n_crac;
        let nn = layout.n_nodes();
        let n = nc + nn;
        assert_eq!(flows.len(), n, "flow vector length");
        assert_eq!(ci.n_units(), n, "interference dimension");
        let a = ci.a_matrix(flows);

        // I - A_nn.
        let mut i_minus_ann = Matrix::from_fn(nn, nn, |i, j| -a[(nc + i, nc + j)]);
        for i in 0..nn {
            i_minus_ann[(i, i)] += 1.0;
        }
        let lu = Lu::factor(&i_minus_ann)
            .map_err(|e| format!("recirculation structure is singular: {e}"))?;
        let m_inv = lu
            .inverse()
            .map_err(|e| format!("inverting (I - A_nn): {e}"))?;

        // G_n = A_nn * M * D  and  G_c = A_cn * M * D, with D the diagonal
        // of 1/(rho*Cp*F_node). Fold D in by scaling M's columns.
        let mut m_d = m_inv.clone();
        for i in 0..nn {
            for j in 0..nn {
                m_d[(i, j)] /= RHO_CP * flows[nc + j];
            }
        }
        let a_nn = Matrix::from_fn(nn, nn, |i, j| a[(nc + i, nc + j)]);
        let a_cn = Matrix::from_fn(nc, nn, |i, j| a[(i, nc + j)]);
        let g_node = a_nn.mat_mul(&m_d).expect("shape");
        let g_crac = a_cn.mat_mul(&m_d).expect("shape");

        Ok(ThermalModel {
            n_crac: nc,
            n_nodes: nn,
            flows: flows.to_vec(),
            a,
            m_inv,
            g_node,
            g_crac,
            node_redline_c,
            crac_redline_c,
        })
    }

    /// Number of CRAC units.
    pub fn n_crac(&self) -> usize {
        self.n_crac
    }

    /// Number of compute nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Per-unit air flows `[CRACs | nodes]`.
    pub fn flows(&self) -> &[f64] {
        &self.flows
    }

    /// Steady-state temperatures for assigned CRAC outlets (°C) and node
    /// powers (kW, *total* node power including base).
    pub fn steady_state(&self, crac_out_c: &[f64], node_power_kw: &[f64]) -> ThermalState {
        assert_eq!(crac_out_c.len(), self.n_crac);
        assert_eq!(node_power_kw.len(), self.n_nodes);
        let nc = self.n_crac;
        let nn = self.n_nodes;

        // rhs = A_nc * c + D * P.
        let mut rhs = vec![0.0; nn];
        for (i, r) in rhs.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &c) in crac_out_c.iter().enumerate() {
                acc += self.a[(nc + i, j)] * c;
            }
            acc += node_power_kw[i] / (RHO_CP * self.flows[nc + i]);
            *r = acc;
        }
        let t_out_nodes = self.m_inv.mat_vec(&rhs);

        let mut t_out = Vec::with_capacity(nc + nn);
        t_out.extend_from_slice(crac_out_c);
        t_out.extend_from_slice(&t_out_nodes);
        let t_in = self.a.mat_vec(&t_out);
        ThermalState {
            n_crac: nc,
            t_in,
            t_out,
        }
    }

    /// Affine inlet coefficients at fixed CRAC outlets (see module docs).
    /// The sensitivity matrices are precomputed; only the base vectors are
    /// built here, so this is cheap enough for the CRAC temperature search.
    pub fn coefficients(&self, crac_out_c: &[f64]) -> ThermalCoefficients {
        assert_eq!(crac_out_c.len(), self.n_crac);
        let nc = self.n_crac;
        let nn = self.n_nodes;

        // t0 = M * (A_nc * c): node outlets with zero node power.
        let mut anc_c = vec![0.0; nn];
        for (i, v) in anc_c.iter_mut().enumerate() {
            for (j, &c) in crac_out_c.iter().enumerate() {
                *v += self.a[(nc + i, j)] * c;
            }
        }
        let t0 = self.m_inv.mat_vec(&anc_c);

        // base_node_i = (A_nc c)_i + (A_nn t0)_i ; base_crac_i = (A_cc c)_i
        // + (A_cn t0)_i.
        let mut base_node = vec![0.0; nn];
        for (i, b) in base_node.iter_mut().enumerate() {
            let mut acc = anc_c[i];
            for (j, &t) in t0.iter().enumerate() {
                acc += self.a[(nc + i, nc + j)] * t;
            }
            *b = acc;
        }
        let mut base_crac = vec![0.0; nc];
        for (i, b) in base_crac.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &c) in crac_out_c.iter().enumerate() {
                acc += self.a[(i, j)] * c;
            }
            for (j, &t) in t0.iter().enumerate() {
                acc += self.a[(i, nc + j)] * t;
            }
            *b = acc;
        }
        ThermalCoefficients {
            base_node,
            g_node: self.g_node.clone(),
            base_crac,
            g_crac: self.g_crac.clone(),
        }
    }

    /// Total CRAC power (Eqs. 2–3) at a steady state, given the assigned
    /// outlets. Clamped at zero per Eq. 3's "no heat to remove" case.
    pub fn total_crac_power_kw(&self, state: &ThermalState) -> f64 {
        (0..self.n_crac)
            .map(|i| {
                cop::crac_power_kw(self.flows[i], state.t_in[i], state.t_out[i])
            })
            .sum()
    }

    /// Steady state with some CRAC units **failed** (coil off, fan still
    /// turning): a failed unit stops cooling but keeps moving air, so its
    /// outlet temperature is no longer assigned — it equals its inlet,
    /// exactly like a zero-power compute node. Entries of `crac_out_c`
    /// for failed units are ignored.
    ///
    /// Failed units join the nodes in the free-outlet block `F`:
    /// `(I − A_FF)·T_F = A_FW·c + d`, factored on demand (failure
    /// analysis is occasional, not hot-path). Errors when every CRAC has
    /// failed — with no heat sink the room has no steady state (the block
    /// matrix is singular because its rows sum to 1).
    pub fn steady_state_with_failed_cracs(
        &self,
        crac_out_c: &[f64],
        node_power_kw: &[f64],
        failed: &[bool],
    ) -> Result<ThermalState, String> {
        assert_eq!(crac_out_c.len(), self.n_crac);
        assert_eq!(node_power_kw.len(), self.n_nodes);
        assert_eq!(failed.len(), self.n_crac);
        if failed.iter().all(|&f| !f) {
            return Ok(self.steady_state(crac_out_c, node_power_kw));
        }
        let n = self.n_crac + self.n_nodes;
        // Free block: failed CRACs then all nodes; working block: live
        // CRACs with assigned outlets.
        let free: Vec<usize> = (0..self.n_crac)
            .filter(|&c| failed[c])
            .chain(self.n_crac..n)
            .collect();
        let working: Vec<usize> = (0..self.n_crac).filter(|&c| !failed[c]).collect();
        if working.is_empty() {
            return Err("all CRAC units failed: no steady state exists".to_owned());
        }
        let nf = free.len();
        // (I - A_FF) and rhs = A_FW c + d.
        let mut m = Matrix::from_fn(nf, nf, |i, j| -self.a[(free[i], free[j])]);
        for i in 0..nf {
            m[(i, i)] += 1.0;
        }
        let lu = Lu::factor(&m).map_err(|e| format!("failure block singular: {e}"))?;
        let mut rhs = vec![0.0; nf];
        for (i, &u) in free.iter().enumerate() {
            let mut acc = 0.0;
            for &w in &working {
                acc += self.a[(u, w)] * crac_out_c[w];
            }
            if u >= self.n_crac {
                acc += node_power_kw[u - self.n_crac] / (RHO_CP * self.flows[u]);
            }
            rhs[i] = acc;
        }
        let t_free = lu.solve(&rhs).map_err(|e| format!("failure solve: {e}"))?;

        let mut t_out = vec![0.0; n];
        for &w in &working {
            t_out[w] = crac_out_c[w];
        }
        for (i, &u) in free.iter().enumerate() {
            t_out[u] = t_free[i];
        }
        let t_in = self.a.mat_vec(&t_out);
        Ok(ThermalState {
            n_crac: self.n_crac,
            t_in,
            t_out,
        })
    }

    /// The heat-flow mixing matrix `A` (Eq. 5).
    pub fn a_matrix(&self) -> &Matrix {
        &self.a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::{generate_ipf, uniform_flows};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_model() -> (Layout, Vec<f64>, ThermalModel) {
        let layout = Layout::hot_cold_aisle(2, 20);
        let flows = uniform_flows(&layout, 0.07, None);
        let mut rng = StdRng::seed_from_u64(5);
        let ci = generate_ipf(&layout, &flows, &mut rng).unwrap();
        let model = ThermalModel::new(&layout, &flows, &ci, 25.0, 40.0).unwrap();
        (layout, flows, model)
    }

    #[test]
    fn zero_power_means_uniform_cold() {
        // With no node power, every temperature equals the (uniform) CRAC
        // outlet: the only heat source is gone, so air mixes at 18 °C.
        let (_, _, model) = small_model();
        let state = model.steady_state(&[18.0, 18.0], &[0.0; 20]);
        for &t in &state.t_in {
            assert!((t - 18.0).abs() < 1e-8, "t_in = {t}");
        }
        for &t in &state.t_out {
            assert!((t - 18.0).abs() < 1e-8);
        }
    }

    #[test]
    fn energy_balance_heat_in_equals_heat_removed() {
        // Conservation: total node power must equal the heat crossing the
        // CRAC coils, Σ ρCpF_i (Tin_i - Tout_i).
        let (_, flows, model) = small_model();
        let powers: Vec<f64> = (0..20).map(|i| 0.3 + 0.02 * i as f64).collect();
        let state = model.steady_state(&[16.0, 18.0], &powers);
        let total_power: f64 = powers.iter().sum();
        let heat_removed: f64 = (0..2)
            .map(|i| RHO_CP * flows[i] * (state.t_in[i] - state.t_out[i]))
            .sum();
        assert!(
            (total_power - heat_removed).abs() < 1e-6 * total_power,
            "power {total_power} vs heat {heat_removed}"
        );
    }

    #[test]
    fn node_outlet_equals_inlet_plus_rise() {
        // Eq. 4 must hold exactly at the solution.
        let (_, flows, model) = small_model();
        let powers = vec![0.5; 20];
        let state = model.steady_state(&[15.0, 15.0], &powers);
        for i in 0..20 {
            let expected = state.t_in[2 + i] + powers[i] / (RHO_CP * flows[2 + i]);
            assert!((state.t_out[2 + i] - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn more_power_means_hotter_inlets() {
        let (_, _, model) = small_model();
        let lo = model.steady_state(&[18.0, 18.0], &[0.2; 20]);
        let hi = model.steady_state(&[18.0, 18.0], &[0.8; 20]);
        assert!(hi.max_node_inlet() > lo.max_node_inlet());
        assert!(hi.max_crac_inlet() > lo.max_crac_inlet());
    }

    #[test]
    fn coefficients_match_steady_state() {
        // The affine form must reproduce the exact solve for arbitrary
        // powers.
        let (_, _, model) = small_model();
        let crac_out = [14.0, 19.0];
        let coeff = model.coefficients(&crac_out);
        let powers: Vec<f64> = (0..20).map(|i| 0.1 * (i % 7) as f64).collect();
        let state = model.steady_state(&crac_out, &powers);
        for i in 0..20 {
            let affine = coeff.base_node[i]
                + (0..20).map(|j| coeff.g_node[(i, j)] * powers[j]).sum::<f64>();
            assert!(
                (affine - state.t_in[2 + i]).abs() < 1e-9,
                "node {i}: affine {affine} vs exact {}",
                state.t_in[2 + i]
            );
        }
        for i in 0..2 {
            let affine = coeff.base_crac[i]
                + (0..20).map(|j| coeff.g_crac[(i, j)] * powers[j]).sum::<f64>();
            assert!((affine - state.t_in[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn crac_power_positive_under_load() {
        let (_, _, model) = small_model();
        let state = model.steady_state(&[15.0, 15.0], &[0.6; 20]);
        assert!(model.total_crac_power_kw(&state) > 0.0);
    }

    #[test]
    fn redline_violation_sign() {
        let (_, _, model) = small_model();
        let cool = model.steady_state(&[12.0, 12.0], &[0.05; 20]);
        assert!(cool.redline_violation(25.0, 40.0) < 0.0);
        let hot = model.steady_state(&[24.9, 24.9], &[2.0; 20]);
        assert!(hot.redline_violation(25.0, 40.0) > 0.0);
    }

    #[test]
    fn sensitivities_are_nonnegative() {
        // More power anywhere can never cool any inlet.
        let (_, _, model) = small_model();
        let c = model.coefficients(&[18.0, 18.0]);
        for i in 0..20 {
            for j in 0..20 {
                assert!(c.g_node[(i, j)] >= -1e-12);
            }
        }
        for i in 0..2 {
            for j in 0..20 {
                assert!(c.g_crac[(i, j)] >= -1e-12);
            }
        }
    }
}
