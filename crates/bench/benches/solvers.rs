//! Criterion microbenchmarks of the optimization stack: the LP engine,
//! the Stage-1/Stage-3 solves, the Eq.-21 baseline, and the end-to-end
//! three-stage assignment (one bench per moving part of the Fig.-6
//! pipeline, so regressions in any stage are visible in isolation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use thermaware_core::stage1::{solve_stage1, Stage1Options};
use thermaware_core::stage3::solve_stage3;
use thermaware_core::{solve_baseline, solve_three_stage, ThreeStageOptions};
use thermaware_datacenter::{CracSearchOptions, DataCenter, ScenarioParams};
use thermaware_lp::{Problem, RowOp, Sense};

fn scenario(n_nodes: usize, n_crac: usize) -> DataCenter {
    ScenarioParams {
        n_nodes,
        n_crac,
        ..ScenarioParams::paper(0.2, 0.3)
    }
    .build(7)
    .expect("scenario")
}

/// A dense random-ish LP in the shape of the Stage-1 problems: box-bounded
/// variables, inequality rows with mixed signs.
fn lp_instance(m: usize, n: usize) -> Problem {
    let mut p = Problem::new(Sense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|j| {
            let c = ((j * 2654435761) % 97) as f64 / 10.0;
            p.add_var(&format!("x{j}"), 0.0, 1.0 + (j % 5) as f64, c)
        })
        .collect();
    for i in 0..m {
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(j, &v)| {
                let a = (((i * 31 + j * 17) % 13) as f64 - 4.0) / 4.0;
                (v, a)
            })
            .collect();
        p.add_row_nodup(&format!("r{i}"), &terms, RowOp::Le, 5.0 + (i % 7) as f64);
    }
    p
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_simplex");
    for &(m, n) in &[(20usize, 60usize), (60, 200), (150, 600)] {
        let p = lp_instance(m, n);
        group.bench_with_input(BenchmarkId::new("solve", format!("{m}x{n}")), &p, |b, p| {
            b.iter(|| black_box(p.solve().unwrap().objective))
        });
    }
    group.finish();
}

fn bench_stages(c: &mut Criterion) {
    let dc = scenario(40, 2);
    let mut group = c.benchmark_group("assignment_40n");
    group.sample_size(10);

    group.bench_function("stage1", |b| {
        b.iter(|| black_box(solve_stage1(&dc, &Stage1Options::default()).unwrap().objective))
    });
    let s1 = solve_stage1(&dc, &Stage1Options::default()).unwrap();
    let pstates = thermaware_core::stage2::assign_pstates(&dc, &s1);
    group.bench_function("stage3", |b| {
        b.iter(|| black_box(solve_stage3(&dc, &pstates).unwrap().reward_rate))
    });
    group.bench_function("three_stage_end_to_end", |b| {
        b.iter(|| {
            black_box(
                solve_three_stage(&dc, &ThreeStageOptions::default())
                    .unwrap()
                    .reward_rate(),
            )
        })
    });
    group.bench_function("baseline_eq21", |b| {
        b.iter(|| black_box(solve_baseline(&dc, CracSearchOptions::default()).unwrap().reward_rate))
    });
    group.finish();
}

criterion_group!(benches, bench_lp, bench_stages);
criterion_main!(benches);
