//! Criterion microbenchmarks of the substrates: thermal steady-state
//! solves, cross-interference generation, scenario construction, and the
//! dynamic scheduler's dispatch throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use thermaware_core::{solve_three_stage, ThreeStageOptions};
use thermaware_datacenter::ScenarioParams;
use thermaware_scheduler::simulate;
use thermaware_thermal::{interference, Layout, ThermalModel};
use thermaware_workload::ArrivalTrace;

fn bench_thermal(c: &mut Criterion) {
    let mut group = c.benchmark_group("thermal");
    for &n_nodes in &[20usize, 80, 150] {
        let layout = Layout::hot_cold_aisle(3.min(1 + n_nodes / 50), n_nodes);
        let flows = interference::uniform_flows(&layout, 0.07, None);
        let mut rng = StdRng::seed_from_u64(5);
        let ci = interference::generate_ipf(&layout, &flows, &mut rng).unwrap();
        let model = ThermalModel::new(&layout, &flows, &ci, 25.0, 40.0).unwrap();
        let crac_out = vec![16.0; layout.n_crac];
        let powers = vec![0.5; n_nodes];

        group.bench_with_input(
            BenchmarkId::new("steady_state", n_nodes),
            &n_nodes,
            |b, _| b.iter(|| black_box(model.steady_state(&crac_out, &powers).max_node_inlet())),
        );
        group.bench_with_input(
            BenchmarkId::new("coefficients", n_nodes),
            &n_nodes,
            |b, _| b.iter(|| black_box(model.coefficients(&crac_out).base_node[0])),
        );
    }
    group.finish();
}

fn bench_interference(c: &mut Criterion) {
    let mut group = c.benchmark_group("interference");
    group.sample_size(10);
    for &n_nodes in &[50usize, 150] {
        group.bench_with_input(BenchmarkId::new("ipf", n_nodes), &n_nodes, |b, &n| {
            let layout = Layout::hot_cold_aisle(3, n);
            let flows = interference::uniform_flows(&layout, 0.07, None);
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(5);
                black_box(interference::generate_ipf(&layout, &flows, &mut rng).unwrap())
            })
        });
    }
    group.bench_function("appendix_b_lp_20n", |b| {
        let layout = Layout::hot_cold_aisle(2, 20);
        let flows = interference::uniform_flows(&layout, 0.07, None);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            black_box(interference::generate_lp(&layout, &flows, &mut rng).unwrap())
        })
    });
    group.finish();
}

fn bench_scenario_and_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("scenario_build_40n", |b| {
        let params = ScenarioParams {
            n_nodes: 40,
            n_crac: 2,
            ..ScenarioParams::paper(0.2, 0.3)
        };
        b.iter(|| black_box(params.build(7).unwrap().budget.p_const_kw))
    });

    // Dispatch throughput over a pre-built plan and trace.
    let dc = ScenarioParams {
        n_nodes: 20,
        n_crac: 1,
        ..ScenarioParams::paper(0.2, 0.3)
    }
    .build(7)
    .unwrap();
    let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let trace = ArrivalTrace::generate(&dc.workload, 5.0, &mut rng);
    group.throughput(criterion::Throughput::Elements(trace.arrivals.len() as u64));
    group.bench_function("scheduler_dispatch", |b| {
        b.iter(|| black_box(simulate(&dc, &plan.pstates, &plan.stage3, &trace).reward_collected))
    });
    group.finish();
}

criterion_group!(benches, bench_thermal, bench_interference, bench_scenario_and_scheduler);
criterion_main!(benches);
