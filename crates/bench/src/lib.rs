//! Experiment harness: everything shared by the binaries that regenerate
//! the paper's tables and figures (see EXPERIMENTS.md for the index).

pub mod cli;
pub mod fig6;
pub mod parallel;
pub mod stats;

pub use fig6::{run_figure6_set, Fig6Config, Fig6SetResult, SimulationSet};
pub use stats::{mean_ci95, Summary};
