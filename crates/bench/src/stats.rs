//! Small-sample statistics for experiment reporting.

/// Two-sided 97.5% Student-t quantiles for ν = 1..30 degrees of freedom
/// (the 95% confidence-interval multiplier). ν > 30 uses the normal 1.96.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Mean plus 95% confidence half-width of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95% CI (0 for n < 2).
    pub ci95: f64,
    /// Sample standard deviation (0 for n < 2).
    pub std_dev: f64,
    /// Sample size.
    pub n: usize,
}

/// Compute mean and a Student-t 95% confidence interval — the error bars
/// of the paper's Figure 6 (25 runs per bar → ν = 24, t = 2.064).
pub fn mean_ci95(samples: &[f64]) -> Summary {
    let n = samples.len();
    if n == 0 {
        return Summary {
            mean: f64::NAN,
            ci95: f64::NAN,
            std_dev: f64::NAN,
            n,
        };
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return Summary {
            mean,
            ci95: 0.0,
            std_dev: 0.0,
            n,
        };
    }
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
    let std_dev = var.sqrt();
    let t = if n - 1 <= 30 {
        T_975[n - 2]
    } else {
        1.96
    };
    Summary {
        mean,
        ci95: t * std_dev / (n as f64).sqrt(),
        std_dev,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_small_sample() {
        // Mean 2, sd 1, n = 4: CI = 3.182 * 1/2.
        let s = mean_ci95(&[1.0, 2.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        let sd = (2.0_f64 / 3.0).sqrt();
        assert!((s.std_dev - sd).abs() < 1e-12);
        assert!((s.ci95 - 3.182 * sd / 2.0).abs() < 1e-9);
    }

    #[test]
    fn paper_sample_size_uses_t24() {
        let samples: Vec<f64> = (0..25).map(|i| i as f64).collect();
        let s = mean_ci95(&samples);
        assert_eq!(s.n, 25);
        let sd = s.std_dev;
        assert!((s.ci95 - 2.064 * sd / 5.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_sizes() {
        assert!(mean_ci95(&[]).mean.is_nan());
        let one = mean_ci95(&[5.0]);
        assert_eq!(one.mean, 5.0);
        assert_eq!(one.ci95, 0.0);
    }

    #[test]
    fn constant_sample_has_zero_width() {
        let s = mean_ci95(&[3.0; 10]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.ci95, 0.0);
    }
}
