//! Scoped fork-join parallelism for embarrassingly parallel experiment
//! fan-out (the 25 independent scenario seeds of each Figure-6 set).
//!
//! Built on `crossbeam::scope` with an `AtomicUsize` work index — the
//! scoped-threads + atomics pattern of the workspace's concurrency
//! guides. Each worker claims the next unprocessed index, so uneven
//! per-item cost (LP solve times vary run to run) balances naturally.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `0..n` on up to `threads` worker threads, collecting
/// results in index order. `f` must be `Sync` (it is called concurrently).
///
/// With `threads <= 1` (or `n <= 1`) runs inline, which keeps call sites
/// debuggable and deterministic profiles honest.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let workers = threads.min(n);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(value);
            });
        }
    })
    .expect("worker thread panicked");

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("work item skipped")
        })
        .collect()
}

/// Default worker count: available parallelism, capped to the work size.
pub fn default_threads(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        let out = parallel_map(64, 8, |i| i * i);
        let expected: Vec<usize> = (0..64).map(|i| i * i).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let seq = parallel_map(17, 1, |i| i as f64 * 1.5);
        let par = parallel_map(17, 4, |i| i as f64 * 1.5);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(parallel_map(0, 4, |i| i).is_empty());
        assert_eq!(parallel_map(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still all complete.
        let out = parallel_map(32, 4, |i| {
            let mut acc = 0u64;
            for k in 0..(i % 7) * 10_000 {
                acc = acc.wrapping_add(k as u64);
            }
            (i, acc)
        });
        assert_eq!(out.len(), 32);
        for (i, item) in out.iter().enumerate() {
            assert_eq!(item.0, i);
        }
    }
}
