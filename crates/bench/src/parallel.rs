//! Scoped fork-join parallelism for embarrassingly parallel experiment
//! fan-out (the 25 independent scenario seeds of each Figure-6 set).
//!
//! A thin facade over the shard crate's supervised pool
//! ([`thermaware_shard::pool::scoped_map`]). Each worker claims the next
//! unprocessed index, so uneven per-item cost (LP solve times vary run
//! to run) balances naturally — and unlike the original
//! `crossbeam::scope` version, a panicking item no longer takes the
//! whole harness down: it surfaces as `Err(JobError::Panicked)` for
//! that item while every other seed still completes.

use thermaware_shard::pool::JobError;

/// Map `f` over `0..n` on up to `threads` worker threads, collecting
/// results in index order. `f` must be `Sync` (it is called
/// concurrently). Panics in `f` are isolated per item.
///
/// With `threads <= 1` (or `n <= 1`) runs inline, which keeps call sites
/// debuggable and deterministic profiles honest.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<Result<T, JobError>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    thermaware_shard::pool::scoped_map(n, threads, f)
}

/// Default worker count: available parallelism, capped to the work size.
pub fn default_threads(n: usize) -> usize {
    thermaware_shard::pool::default_threads(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_values<T: Clone>(results: &[Result<T, JobError>]) -> Vec<T> {
        results
            .iter()
            .map(|r| r.as_ref().expect("item failed").clone())
            .collect()
    }

    #[test]
    fn results_are_in_index_order() {
        let out = ok_values(&parallel_map(64, 8, |i| i * i));
        let expected: Vec<usize> = (0..64).map(|i| i * i).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let seq = ok_values(&parallel_map(17, 1, |i| i as f64 * 1.5));
        let par = ok_values(&parallel_map(17, 4, |i| i as f64 * 1.5));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(parallel_map(0, 4, |i| i).is_empty());
        assert_eq!(ok_values(&parallel_map(1, 4, |i| i + 10)), vec![10]);
    }

    #[test]
    fn a_panicking_item_fails_alone() {
        let out = parallel_map(8, 3, |i| {
            assert!(i != 5, "seed 5 exploded");
            i
        });
        for (i, r) in out.iter().enumerate() {
            if i == 5 {
                assert!(matches!(r, Err(JobError::Panicked(_))));
            } else {
                assert_eq!(r.as_ref().copied(), Ok(i));
            }
        }
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still all complete.
        let out = ok_values(&parallel_map(32, 4, |i| {
            let mut acc = 0u64;
            for k in 0..(i % 7) * 10_000 {
                acc = acc.wrapping_add(k as u64);
            }
            (i, acc)
        }));
        assert_eq!(out.len(), 32);
        for (i, item) in out.iter().enumerate() {
            assert_eq!(item.0, i);
        }
    }
}
