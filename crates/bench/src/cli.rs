//! A tiny `--key value` argument parser for the experiment binaries (the
//! offline dependency set has no CLI crate, and the binaries only need a
//! handful of numeric flags).

use std::collections::HashMap;

/// Parsed `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse the process arguments. Unknown flags are kept (callers
    /// decide what they accept); a flag without a value or a positional
    /// argument aborts with a usage hint.
    pub fn parse(usage: &str) -> Args {
        Self::from_iter(std::env::args().skip(1), usage)
    }

    /// Parse from an explicit iterator (testable).
    pub fn from_iter<I: IntoIterator<Item = String>>(iter: I, usage: &str) -> Args {
        let mut flags = HashMap::new();
        let mut it = iter.into_iter();
        while let Some(arg) = it.next() {
            if arg == "--help" || arg == "-h" {
                eprintln!("{usage}");
                std::process::exit(0);
            }
            let Some(key) = arg.strip_prefix("--") else {
                eprintln!("unexpected argument '{arg}'\n{usage}");
                std::process::exit(2);
            };
            let Some(value) = it.next() else {
                eprintln!("flag --{key} needs a value\n{usage}");
                std::process::exit(2);
            };
            flags.insert(key.to_owned(), value);
        }
        Args { flags }
    }

    /// A `usize` flag with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get_parsed(key).unwrap_or(default)
    }

    /// A `u64` flag with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get_parsed(key).unwrap_or(default)
    }

    /// An `f64` flag with a default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.get_parsed(key).unwrap_or(default)
    }

    /// A string flag with a default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_owned())
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.flags.get(key).map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("flag --{key}: cannot parse '{v}'");
                std::process::exit(2);
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::from_iter(s.iter().map(|s| s.to_string()), "usage")
    }

    #[test]
    fn parses_flags_with_defaults() {
        let a = args(&["--runs", "5", "--seed", "42", "--share", "0.25"]);
        assert_eq!(a.get_usize("runs", 25), 5);
        assert_eq!(a.get_u64("seed", 1), 42);
        assert_eq!(a.get_f64("share", 0.3), 0.25);
        assert_eq!(a.get_usize("missing", 7), 7);
    }
}
