//! The Figure-6 replication: average percentage improvement of the
//! three-stage assignment over the Eq.-21 baseline, across the paper's
//! three simulation sets.

use crate::parallel::parallel_map;
use crate::stats::{mean_ci95, Summary};
use thermaware_core::{solve_baseline, solve_three_stage, ThreeStageOptions};
use thermaware_datacenter::{CracSearchOptions, ScenarioParams};

/// One of the paper's simulation sets (a Figure-6 column group).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationSet {
    /// Static share of P-state-0 core power.
    pub static_share: f64,
    /// ECS proportionality noise `V_prop`.
    pub v_prop: f64,
    /// Display label.
    pub label: &'static str,
}

/// The paper's three sets, in Figure-6 order.
pub const PAPER_SETS: [SimulationSet; 3] = [
    SimulationSet {
        static_share: 0.30,
        v_prop: 0.1,
        label: "static 30%, Vprop 0.1",
    },
    SimulationSet {
        static_share: 0.30,
        v_prop: 0.3,
        label: "static 30%, Vprop 0.3",
    },
    SimulationSet {
        static_share: 0.20,
        v_prop: 0.3,
        label: "static 20%, Vprop 0.3",
    },
];

/// Configuration of a Figure-6 run.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Config {
    /// Runs (scenario seeds) per set — 25 in the paper.
    pub runs: usize,
    /// Compute nodes per scenario — 150 in the paper.
    pub n_nodes: usize,
    /// CRAC units per scenario — 3 in the paper.
    pub n_crac: usize,
    /// Base seed; run `r` of a set uses `base_seed + r`.
    pub base_seed: u64,
    /// Worker threads for the scenario fan-out.
    pub threads: usize,
    /// CRAC outlet search options shared by all solvers.
    pub search: CracSearchOptions,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Fig6Config {
            runs: 25,
            n_nodes: 150,
            n_crac: 3,
            base_seed: 1,
            threads: crate::parallel::default_threads(25),
            search: CracSearchOptions::default(),
        }
    }
}

/// Raw per-run numbers of one scenario.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Run {
    /// Three-stage reward rate at ψ = 25.
    pub psi25: f64,
    /// Three-stage reward rate at ψ = 50.
    pub psi50: f64,
    /// Baseline (Eq. 21 + Eq. 22) reward rate.
    pub baseline: f64,
}

impl Fig6Run {
    /// Percentage improvement of a reward rate over the baseline.
    fn improvement(&self, reward: f64) -> f64 {
        100.0 * (reward - self.baseline) / self.baseline
    }
}

/// Aggregated Figure-6 numbers for one simulation set: the three bars the
/// paper plots (ψ=25, ψ=50, best-of-both), each with a 95% CI.
#[derive(Debug, Clone)]
pub struct Fig6SetResult {
    /// The set.
    pub set: SimulationSet,
    /// Percentage improvement of ψ=25 over the baseline.
    pub psi25: Summary,
    /// Percentage improvement of ψ=50 over the baseline.
    pub psi50: Summary,
    /// Percentage improvement of the per-run best of the two ψ values.
    pub best: Summary,
    /// The raw runs (for persistence/inspection).
    pub runs: Vec<Fig6Run>,
}

/// Solve one scenario of a set: both ψ values and the baseline.
pub fn run_one_scenario(
    set: SimulationSet,
    config: &Fig6Config,
    seed: u64,
) -> Result<Fig6Run, String> {
    let params = ScenarioParams {
        n_nodes: config.n_nodes,
        n_crac: config.n_crac,
        ..ScenarioParams::paper(set.static_share, set.v_prop)
    };
    let dc = params.build(seed)?;
    let mk = |psi| ThreeStageOptions {
        psi_percent: psi,
        search: config.search,
        ..ThreeStageOptions::default()
    };
    let s25 = solve_three_stage(&dc, &mk(25.0))?;
    let s50 = solve_three_stage(&dc, &mk(50.0))?;
    let base = solve_baseline(&dc, config.search)?;
    Ok(Fig6Run {
        psi25: s25.reward_rate(),
        psi50: s50.reward_rate(),
        baseline: base.reward_rate,
    })
}

/// Run a full simulation set (the paper's 25 seeds), fanned out over
/// threads.
pub fn run_figure6_set(set: SimulationSet, config: &Fig6Config) -> Result<Fig6SetResult, String> {
    let results = parallel_map(config.runs, config.threads, |r| {
        run_one_scenario(set, config, config.base_seed + r as u64)
    });
    let mut runs = Vec::with_capacity(config.runs);
    for r in results {
        // Outer Err: the worker died (panic); inner Err: a solve failed.
        runs.push(r.map_err(|e| e.to_string())??);
    }
    let imp25: Vec<f64> = runs.iter().map(|r| r.improvement(r.psi25)).collect();
    let imp50: Vec<f64> = runs.iter().map(|r| r.improvement(r.psi50)).collect();
    let impbest: Vec<f64> = runs
        .iter()
        .map(|r| r.improvement(r.psi25.max(r.psi50)))
        .collect();
    Ok(Fig6SetResult {
        set,
        psi25: mean_ci95(&imp25),
        psi50: mean_ci95(&imp50),
        best: mean_ci95(&impbest),
        runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature Figure-6 (small floor, few runs) — exercises the whole
    /// pipeline end to end; the real scale runs in the `fig6` binary.
    #[test]
    fn mini_figure6_runs() {
        let config = Fig6Config {
            runs: 2,
            n_nodes: 10,
            n_crac: 1,
            base_seed: 5,
            threads: 2,
            search: CracSearchOptions::default(),
        };
        let result = run_figure6_set(PAPER_SETS[2], &config).expect("mini fig6");
        assert_eq!(result.runs.len(), 2);
        for run in &result.runs {
            assert!(run.psi25 > 0.0 && run.psi50 > 0.0 && run.baseline > 0.0);
        }
        // best-of dominates both individual ψ series by construction.
        assert!(result.best.mean >= result.psi25.mean - 1e-9);
        assert!(result.best.mean >= result.psi50.mean - 1e-9);
    }
}
