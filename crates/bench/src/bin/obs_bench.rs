//! Observability layer benchmark and trace validation.
//!
//! Three parts:
//!
//! 1. **Overhead** — the same three-stage solve is timed bare (no recorder,
//!    every instrumentation point short-circuits on a relaxed atomic load)
//!    and with the [`NoopRecorder`] installed (spans and metrics flow, the
//!    sink discards them). Medians over `--runs` repetitions; the issue's
//!    acceptance bar is no-op overhead within 2 %.
//! 2. **Trace** — a supervised, faulted run is recorded through the
//!    [`JsonlRecorder`], then the emitted trace is re-parsed line by line
//!    and checked: meta header, every stage span present, at least one
//!    degradation-ladder transition counted. Any validation failure exits
//!    nonzero, so CI can gate on it.
//! 3. **Snapshot** — the recorded counters and histograms are written to
//!    `BENCH_obs.json` so the perf trajectory has a comparable baseline.
//!
//! ```sh
//! cargo run --release -p thermaware-bench --bin obs_bench
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;
use thermaware_bench::cli::Args;
use thermaware_core::Solver;
use thermaware_datacenter::ScenarioParams;
use thermaware_obs::{HistogramSummary, JsonlRecorder, MetricsSnapshot, NoopRecorder};
use thermaware_runtime::{FaultScript, Supervisor, SupervisorConfig};
use thermaware_scheduler::simulate;
use thermaware_workload::ArrivalTrace;

const USAGE: &str = "obs_bench [--nodes N] [--cracs N] [--seed S] [--runs N] \
                     [--horizon SECONDS] [--trace PATH] [--out PATH] [--strict 0|1]";

/// Span names the trace of an instrumented solve + supervised run must
/// contain — one per instrumented layer, solver stages included.
const REQUIRED_SPANS: &[&str] = &[
    "three_stage",
    "stage1",
    "stage2",
    "stage3",
    "crac_search",
    "supervisor.run",
    "supervisor.epoch",
    "sim",
];

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

struct Overhead {
    bare_min: f64,
    noop_min: f64,
    bare_med: f64,
    noop_med: f64,
    pct: f64,
}

/// One overhead sweep: `runs` interleaved samples per variant, each
/// timing `batch` back-to-back solves. Alternates which variant runs
/// first each iteration — the second solve of a pair sees warmer
/// caches, and a fixed order folds that bias into the comparison.
fn measure_overhead(
    dc: &thermaware_datacenter::DataCenter,
    reference: &thermaware_core::ThreeStageSolution,
    runs: usize,
    batch: usize,
) -> Overhead {
    let mut bare_ms = Vec::with_capacity(runs);
    let mut noop_ms = Vec::with_capacity(runs);
    let noop = Arc::new(NoopRecorder);
    for i in 0..runs {
        for variant in [i % 2, (i + 1) % 2] {
            if variant == 0 {
                let t = Instant::now();
                for _ in 0..batch {
                    let bare = Solver::new(dc).solve().expect("bare solve");
                    assert_eq!(&bare, reference, "bare solve must be deterministic");
                }
                bare_ms.push(t.elapsed().as_secs_f64() * 1e3 / batch as f64);
            } else {
                let t = Instant::now();
                for _ in 0..batch {
                    let observed = Solver::new(dc)
                        .recorder(noop.clone() as Arc<dyn thermaware_obs::Recorder>)
                        .solve()
                        .expect("no-op solve");
                    assert_eq!(&observed, reference, "instrumentation must not change the answer");
                }
                noop_ms.push(t.elapsed().as_secs_f64() * 1e3 / batch as f64);
            }
        }
    }
    let bare_min = bare_ms.iter().copied().fold(f64::INFINITY, f64::min);
    let noop_min = noop_ms.iter().copied().fold(f64::INFINITY, f64::min);
    Overhead {
        bare_min,
        noop_min,
        bare_med: median(&mut bare_ms),
        noop_med: median(&mut noop_ms),
        pct: 100.0 * (noop_min / bare_min.max(1e-12) - 1.0),
    }
}

fn main() {
    let args = Args::parse(USAGE);
    let n_nodes = args.get_usize("nodes", 20);
    let n_crac = args.get_usize("cracs", 2);
    let seed = args.get_u64("seed", 7);
    let runs = args.get_usize("runs", 15).max(1);
    let horizon = args.get_f64("horizon", 30.0);
    let trace_path = args.get_str("trace", "results/obs_trace.jsonl");
    let out_path = args.get_str("out", "results/current/BENCH_obs.json");
    let strict = args.get_usize("strict", 0) != 0;

    let params = ScenarioParams {
        n_nodes,
        n_crac,
        crac_flow_margin: 1.5,
        ..ScenarioParams::paper(0.2, 0.3)
    };
    let dc = params.build(seed).expect("scenario");

    // -- Part 1: no-op recorder overhead -----------------------------------
    println!("## No-op recorder overhead — {n_nodes} nodes, {n_crac} CRACs, {runs} runs");
    let warm = Instant::now();
    let reference = Solver::new(&dc).solve().expect("warmup solve");
    // One solve is a few ms — too short to time cleanly on a busy host.
    // Size each timing sample to ~50 ms of solving so scheduler noise
    // amortizes.
    let batch = ((0.05 / warm.elapsed().as_secs_f64().max(1e-6)) as usize).clamp(1, 100);

    // Scheduler interference only ever *adds* time, so the bar is on the
    // best (least noisy) measurement: in strict mode a sweep that lands
    // over the bar is retried up to twice — sustained noise phases on a
    // shared or single-core host span whole sweeps, and the minimum over
    // attempts is the closer estimate of the noise-free overhead. CI
    // gates on trace validation only, not this.
    let attempts = if strict { 3 } else { 1 };
    let mut best: Option<Overhead> = None;
    for attempt in 0..attempts {
        let m = measure_overhead(&dc, &reference, runs, batch);
        if attempt > 0 {
            println!("retry  : {:+.2}% (sweep {})", m.pct, attempt + 1);
        }
        if best.as_ref().is_none_or(|b| m.pct < b.pct) {
            best = Some(m);
        }
        if best.as_ref().is_some_and(|b| b.pct <= 2.0) {
            break;
        }
    }
    let m = best.expect("at least one overhead sweep");
    println!(
        "bare   : {:>8.3} ms/solve best, {:.3} median of {runs} x {batch}-solve samples",
        m.bare_min, m.bare_med
    );
    println!(
        "no-op  : {:>8.3} ms/solve best, {:.3} median of {runs} x {batch}-solve samples",
        m.noop_min, m.noop_med
    );
    println!("overhead: {:+.2}% (acceptance bar: within 2%)", m.pct);
    if strict && m.pct > 2.0 {
        eprintln!("FAIL: no-op overhead {:.2}% exceeds 2% in {attempts} sweeps", m.pct);
        std::process::exit(1);
    }

    // -- Part 2: JSONL trace of a supervised, faulted run ------------------
    if let Some(dir) = std::path::Path::new(&trace_path).parent() {
        std::fs::create_dir_all(dir).expect("trace dir");
    }
    let rec = Arc::new(JsonlRecorder::create(&trace_path).expect("trace file"));
    let script = FaultScript::new()
        .crac_failure(horizon / 3.0, 0)
        .node_death(horizon / 2.0, 3)
        .arrival_surge(horizon * 0.65, 1.4);
    let cfg = SupervisorConfig {
        horizon_s: horizon,
        seed,
        ..SupervisorConfig::default()
    };
    let report = {
        let _guard = thermaware_obs::install(rec.clone());
        let plan = Solver::new(&dc).solve().expect("instrumented solve");
        // The paper's second step, so the scheduler instrumentation shows
        // up in the trace alongside the supervised run.
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = ArrivalTrace::generate(&dc.workload, horizon, &mut rng);
        let _ = simulate(&dc, &plan.pstates, &plan.stage3, &trace);
        Supervisor::new(&dc, cfg).run(&plan, &script)
    };
    rec.finish().expect("trace flush");
    println!(
        "\n## Supervised run traced to {trace_path} ({:?}, reward {:.1}/s, {} events)",
        report.outcome,
        report.sim.reward_rate,
        report.log.events().len()
    );

    let snapshot = rec.snapshot();
    let failures = validate_trace(&trace_path, &snapshot);
    if failures.is_empty() {
        println!("trace validation: OK");
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }

    // -- Part 3: BENCH_obs.json perf snapshot ------------------------------
    let counters_obj = serde_json::Value::Object(
        snapshot
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), serde_json::json!(*v as f64)))
            .collect(),
    );
    let histograms_obj = serde_json::Value::Object(
        snapshot
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), hist_json(h)))
            .collect(),
    );
    let doc = serde_json::json!({
        "experiment": "obs",
        "config": {
            "n_nodes": n_nodes,
            "n_crac": n_crac,
            "seed": seed,
            "runs": runs,
            "horizon_s": horizon,
        },
        "overhead": {
            "bare_ms_best": m.bare_min,
            "noop_ms_best": m.noop_min,
            "bare_ms_median": m.bare_med,
            "noop_ms_median": m.noop_med,
            "overhead_pct": m.pct,
        },
        "counters": counters_obj,
        "histograms": histograms_obj,
    });
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("out dir");
    }
    std::fs::write(&out_path, serde_json::to_string_pretty(&doc).expect("json"))
        .expect("write BENCH_obs.json");
    println!("perf snapshot written to {out_path}");
}

fn hist_json(h: &HistogramSummary) -> serde_json::Value {
    serde_json::json!({
        "count": h.count as f64,
        "mean": h.mean(),
        "min": h.min,
        "max": h.max,
        "p50": h.p50,
        "p95": h.p95,
        "p99": h.p99,
    })
}

/// Re-parse the emitted trace and check the contract the issue states:
/// parseable JSONL, meta header first, every stage span present, and at
/// least one degradation transition counted. Returns the failures.
fn validate_trace(path: &str, snapshot: &MetricsSnapshot) -> Vec<String> {
    let mut failures = Vec::new();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("cannot read {path}: {e}")],
    };

    let mut span_names = BTreeSet::new();
    let mut counter_lines = 0usize;
    let mut hist_lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        let value: serde_json::Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                failures.push(format!("line {}: unparseable JSON: {e}", i + 1));
                continue;
            }
        };
        let kind = value.get("type").and_then(|v| v.as_str()).unwrap_or("");
        match kind {
            "meta" => {
                if i != 0 {
                    failures.push(format!("meta line at {} (must be first)", i + 1));
                }
                let format = value.get("format").and_then(|v| v.as_str());
                if format != Some("thermaware-obs-trace") {
                    failures.push(format!("meta format field is {format:?}"));
                }
            }
            "span" => {
                for field in ["name", "path"] {
                    if value.get(field).and_then(|v| v.as_str()).is_none() {
                        failures.push(format!("line {}: span missing '{field}'", i + 1));
                    }
                }
                for field in ["depth", "thread", "start_us", "dur_us"] {
                    if value.get(field).and_then(|v| v.as_f64()).is_none() {
                        failures.push(format!("line {}: span missing '{field}'", i + 1));
                    }
                }
                if let Some(name) = value.get("name").and_then(|v| v.as_str()) {
                    span_names.insert(name.to_owned());
                }
            }
            "counter" => counter_lines += 1,
            "gauge" => {}
            "hist" => hist_lines += 1,
            other => failures.push(format!("line {}: unknown type '{other}'", i + 1)),
        }
    }
    if !text.lines().next().is_some_and(|l| l.contains("\"meta\"")) {
        failures.push("trace has no meta header".into());
    }
    for required in REQUIRED_SPANS {
        if !span_names.contains(*required) {
            failures.push(format!("required span '{required}' missing from trace"));
        }
    }
    if counter_lines == 0 {
        failures.push("no counter summary lines in trace".into());
    }
    if hist_lines == 0 {
        failures.push("no histogram summary lines in trace".into());
    }

    // The fault script must have driven the supervision ladder: at least
    // one detected violation and one corrective action counted.
    let transitions: u64 = snapshot
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("runtime.action.") || k.starts_with("runtime.violation."))
        .map(|(_, v)| *v)
        .sum();
    if transitions == 0 {
        failures.push("no degradation transitions recorded (runtime.action.* / runtime.violation.*)".into());
    }
    if snapshot.counter("runtime.faults_injected") == 0 {
        failures.push("no faults counted despite the fault script".into());
    }
    failures
}
