//! The second-step dynamic scheduler experiment (paper Section V.C):
//! how closely does the online `ATC/TC` dispatcher realize the
//! steady-state reward rate the first step planned for, and what does it
//! drop?

use rand::rngs::StdRng;
use rand::SeedableRng;
use thermaware_bench::cli::Args;
use thermaware_bench::stats::mean_ci95;
use thermaware_core::{solve_three_stage, ThreeStageOptions};
use thermaware_datacenter::ScenarioParams;
use thermaware_scheduler::simulate;
use thermaware_workload::ArrivalTrace;

const USAGE: &str =
    "dynamic_sched [--runs N] [--nodes N] [--cracs N] [--seed S] [--horizon SECONDS]";

fn main() {
    let args = Args::parse(USAGE);
    let runs = args.get_usize("runs", 5);
    let n_nodes = args.get_usize("nodes", 20);
    let n_crac = args.get_usize("cracs", 1);
    let base_seed = args.get_u64("seed", 1);
    let horizon = args.get_f64("horizon", 30.0);

    println!(
        "# Second-step dynamic scheduler vs first-step plan — {runs} runs x {n_nodes} nodes, horizon {horizon}s\n"
    );
    println!(
        "{:<6} {:>12} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "run", "planned", "achieved", "ratio", "drop%", "util%", "wait_p95", "resp_p95"
    );

    let mut ratios = Vec::new();
    let mut drops = Vec::new();
    for r in 0..runs {
        let seed = base_seed + r as u64;
        let params = ScenarioParams {
            n_nodes,
            n_crac,
            ..ScenarioParams::paper(0.2, 0.3)
        };
        let dc = params.build(seed).expect("scenario");
        let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("plan");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD15C);
        let trace = ArrivalTrace::generate(&dc.workload, horizon, &mut rng);
        let sim = simulate(&dc, &plan.pstates, &plan.stage3, &trace);
        let ratio = sim.reward_rate / plan.reward_rate();
        ratios.push(ratio);
        drops.push(sim.drop_rate() * 100.0);
        println!(
            "{:<6} {:>12.1} {:>12.1} {:>10.3} {:>10.2} {:>10.1} {:>10.3} {:>10.3}",
            r,
            plan.reward_rate(),
            sim.reward_rate,
            ratio,
            sim.drop_rate() * 100.0,
            sim.mean_utilization * 100.0,
            sim.wait.p95,
            sim.response.p95
        );
    }
    let r = mean_ci95(&ratios);
    let d = mean_ci95(&drops);
    println!(
        "\nachieved/planned: {:.3} ± {:.3};   drop rate: {:.2}% ± {:.2}%",
        r.mean, r.ci95, d.mean, d.ci95
    );
    println!("# The ATC/TC rule caps actual rates at desired rates, so the ratio");
    println!("# approaches but does not exceed 1; drops reflect oversubscription,");
    println!("# not scheduler failure (Section V.C).");
}
