//! LP warm-start benchmark: pivot counts with and without basis reuse on
//! the Figure-6 scenario, snapshotted to `results/BENCH_lp.json`.
//!
//! Two measurements, matching the two call sites that dominate LP work:
//!
//! 1. **Stage-1 CRAC grid sweep** — the coarse-to-fine outlet search
//!    solves one LP per grid point. Warm: each point resumes from the
//!    previous point's optimal basis. Cold: `Stage1Options.warm_start`
//!    off, every point solved from scratch.
//! 2. **Stage-3 replans** — a deterministic fault ladder (node deaths
//!    interleaved with throttle steps, the supervisor's rungs) re-solves
//!    the rate LP after each event. Warm: each replan inherits the
//!    pre-fault basis via [`solve_stage3_warm`]. Cold: fresh solves.
//!
//! All recorded metrics are scale-free (pivot counts, solve counts, hit
//! rates) and the solver is deterministic pure-f64 arithmetic, so the
//! snapshot is stable across machines and CI can gate on it. The
//! drift gate itself lives in `thermaware-analyze bench` — this binary
//! only measures and writes the fresh snapshot:
//!
//! ```sh
//! cargo run --release -p thermaware-bench --bin lp_bench   # write results/current/BENCH_lp.json
//! cargo run -p thermaware-analyze -- bench --check          # gate vs committed baselines
//! cargo run -p thermaware-analyze -- bench --bless          # promote current -> baseline
//! ```

use std::sync::Arc;
use thermaware_bench::cli::Args;
use thermaware_core::stage1::{solve_stage1, Stage1Options};
use thermaware_core::stage3::{solve_stage3, solve_stage3_warm};
use thermaware_core::Solver;
use thermaware_datacenter::ScenarioParams;
use thermaware_obs::MemoryRecorder;

const USAGE: &str = "lp_bench [--nodes N] [--cracs N] [--seed S] [--faults N] [--out PATH]";

/// The acceptance floor: warm starts must cut total pivots by at least
/// this factor on the Figure-6 scenario. This is an absolute property
/// of the algorithm, so it stays here; relative drift vs the committed
/// baseline is judged by `thermaware-analyze bench --check`.
const MIN_SPEEDUP: f64 = 5.0;

/// Counter values of one measured phase.
#[derive(Debug, Clone, Copy, Default)]
struct Counts {
    pivots: u64,
    solves: u64,
    warm_starts: u64,
    dual_reentries: u64,
    refactorizations: u64,
    dense_fallbacks: u64,
    infeasible: u64,
}

impl Counts {
    fn from_recorder(rec: &MemoryRecorder) -> Counts {
        let snap = rec.snapshot();
        let get = |k: &str| snap.counters.get(k).copied().unwrap_or(0);
        Counts {
            pivots: get("lp.pivots"),
            solves: get("lp.solves"),
            warm_starts: get("lp.warm_starts"),
            dual_reentries: get("lp.dual_reentries"),
            refactorizations: get("lp.refactorizations"),
            dense_fallbacks: get("lp.dense_fallbacks"),
            infeasible: get("lp.infeasible"),
        }
    }
}

fn pair_json(label: &str, cold: Counts, warm: Counts) -> serde_json::Value {
    let speedup = cold.pivots as f64 / (warm.pivots as f64).max(1.0);
    let hit_rate = warm.warm_starts as f64 / (warm.solves as f64).max(1.0);
    println!(
        "{label}: cold {} pivots / {} solves, warm {} pivots / {} solves \
         ({:.1}x fewer pivots, {:.0}% warm-start hits, {} dual re-entries, {} infeasible)",
        cold.pivots,
        cold.solves,
        warm.pivots,
        warm.solves,
        speedup,
        100.0 * hit_rate,
        warm.dual_reentries,
        warm.infeasible,
    );
    serde_json::json!({
        "cold_pivots": cold.pivots as f64,
        "cold_solves": cold.solves as f64,
        "warm_pivots": warm.pivots as f64,
        "warm_solves": warm.solves as f64,
        "warm_starts": warm.warm_starts as f64,
        "dual_reentries": warm.dual_reentries as f64,
        "refactorizations": warm.refactorizations as f64,
        "dense_fallbacks": warm.dense_fallbacks as f64,
        "infeasible": warm.infeasible as f64,
        "pivot_speedup": speedup,
        "warm_hit_rate": hit_rate,
    })
}

fn main() {
    let args = Args::parse(USAGE);
    let n_nodes = args.get_usize("nodes", 150);
    let n_crac = args.get_usize("cracs", 3);
    let seed = args.get_u64("seed", 1);
    let n_faults = args.get_usize("faults", 8);
    let out_path = args.get_str("out", "results/current/BENCH_lp.json");

    // The Figure-6 third simulation set (static 20%, Vprop 0.3), paper
    // scale: 150 nodes, 3 CRAC units.
    let params = ScenarioParams {
        n_nodes,
        n_crac,
        crac_flow_margin: 1.5,
        ..ScenarioParams::paper(0.2, 0.3)
    };
    let dc = params.build(seed).expect("scenario");
    println!("## LP warm-start benchmark — {n_nodes} nodes, {n_crac} CRACs, seed {seed}");

    // -- Part 1: Stage-1 CRAC outlet sweep ---------------------------------
    let run_sweep = |warm_start: bool| -> (Counts, f64) {
        let rec = Arc::new(MemoryRecorder::new());
        let sol = {
            let _guard = thermaware_obs::install(rec.clone());
            solve_stage1(
                &dc,
                &Stage1Options {
                    warm_start,
                    ..Stage1Options::default()
                },
            )
            .expect("stage 1")
        };
        (Counts::from_recorder(&rec), sol.objective)
    };
    let (sweep_cold, obj_cold) = run_sweep(false);
    let (sweep_warm, obj_warm) = run_sweep(true);
    assert!(
        (obj_warm - obj_cold).abs() <= 1e-9 * (1.0 + obj_cold.abs()),
        "warm sweep changed the Stage-1 objective: {obj_warm} vs {obj_cold}"
    );

    // -- Part 2: Stage-3 replans under a fault ladder ----------------------
    // One plan, then a deterministic ladder of world changes: odd events
    // kill a node (its cores drop to the off state — capacity leaves the
    // LP), even events throttle a block of nodes one P-state deeper (group
    // counts shift). Both chains replay the identical P-state sequence.
    let plan = Solver::new(&dc).solve().expect("three-stage plan");
    let mut ps = plan.pstates.clone();
    let mut snapshots: Vec<Vec<usize>> = Vec::with_capacity(n_faults);
    for event in 0..n_faults {
        if event % 2 == 0 {
            // Kill nodes in increasing index order so surviving groups
            // keep their discovery order.
            let node = (event / 2) * (dc.n_nodes() / (n_faults / 2 + 1)).max(1);
            let off = dc.node_type(node).core.pstates.off_index();
            for k in dc.cores_of_node(node) {
                ps[k] = off;
            }
        } else {
            let lo = (event * dc.n_nodes() / n_faults).min(dc.n_nodes() - 1);
            let hi = ((event + 2) * dc.n_nodes() / n_faults).min(dc.n_nodes());
            for node in lo..hi {
                let off = dc.node_type(node).core.pstates.off_index();
                for k in dc.cores_of_node(node) {
                    if ps[k] < off {
                        ps[k] = (ps[k] + 1).min(off - 1);
                    }
                }
            }
        }
        snapshots.push(ps.clone());
    }

    let rec_cold = Arc::new(MemoryRecorder::new());
    let rewards_cold: Vec<f64> = {
        let _guard = thermaware_obs::install(rec_cold.clone());
        snapshots
            .iter()
            .map(|ps| solve_stage3(&dc, ps).expect("cold replan").reward_rate)
            .collect()
    };
    let replan_cold = Counts::from_recorder(&rec_cold);

    let rec_warm = Arc::new(MemoryRecorder::new());
    let rewards_warm: Vec<f64> = {
        let _guard = thermaware_obs::install(rec_warm.clone());
        let mut basis = plan.stage3_basis.clone();
        snapshots
            .iter()
            .map(|ps| {
                let (s3, next) =
                    solve_stage3_warm(&dc, ps, basis.as_ref()).expect("warm replan");
                basis = next;
                s3.reward_rate
            })
            .collect()
    };
    let replan_warm = Counts::from_recorder(&rec_warm);

    for (k, (w, c)) in rewards_warm.iter().zip(&rewards_cold).enumerate() {
        assert!(
            (w - c).abs() <= 1e-9 * (1.0 + c.abs()),
            "warm replan {k} changed the reward rate: {w} vs {c}"
        );
    }

    // -- Snapshot, bless, or check -----------------------------------------
    let sweep = pair_json("stage1 sweep ", sweep_cold, sweep_warm);
    let replan = pair_json("stage3 replan", replan_cold, replan_warm);
    let total_cold = sweep_cold.pivots + replan_cold.pivots;
    let total_warm = sweep_warm.pivots + replan_warm.pivots;
    let total_speedup = total_cold as f64 / (total_warm as f64).max(1.0);
    println!(
        "total: {total_cold} cold pivots vs {total_warm} warm pivots ({total_speedup:.1}x, floor {MIN_SPEEDUP}x)"
    );
    let doc = serde_json::json!({
        "experiment": "lp",
        "config": {
            "n_nodes": n_nodes,
            "n_crac": n_crac,
            "seed": seed,
            "faults": n_faults,
        },
        "stage1_sweep": sweep,
        "stage3_replans": replan,
        "total": {
            "cold_pivots": total_cold as f64,
            "warm_pivots": total_warm as f64,
            "pivot_speedup": total_speedup,
        },
    });

    if total_speedup < MIN_SPEEDUP {
        eprintln!(
            "FAIL: warm starts cut pivots only {total_speedup:.2}x (acceptance floor {MIN_SPEEDUP}x)"
        );
        std::process::exit(1);
    }

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("out dir");
    }
    std::fs::write(&out_path, serde_json::to_string_pretty(&doc).expect("json"))
        .expect("write snapshot");
    println!("snapshot written to {out_path}");
}
