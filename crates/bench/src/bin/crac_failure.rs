//! Resilience experiment: what happens to a thermal-aware plan when a
//! CRAC unit fails (coil off, fan still turning)?
//!
//! For each single-unit failure: how far do inlets overshoot the
//! redlines, and how much reward must be shed (greedy P-state deepening
//! on the hottest nodes) to bring the floor back inside them? The paper
//! plans for a healthy floor; this quantifies the N−1 margin its plans
//! carry.

use thermaware_bench::cli::Args;
use thermaware_core::stage3::solve_stage3;
use thermaware_core::{solve_three_stage, ThreeStageOptions};
use thermaware_datacenter::{DataCenter, ScenarioParams};

const USAGE: &str = "crac_failure [--nodes N] [--cracs N] [--seed S]";

/// Greedy shed: while any redline is violated, deepen one P-state on the
/// node with the hottest inlet (ties to the most power-hungry core).
/// Returns the shed assignment, or `None` when even all-off overheats.
fn shed_until_safe(
    dc: &DataCenter,
    crac_out: &[f64],
    failed: &[bool],
    pstates: &[usize],
) -> Option<(Vec<usize>, usize)> {
    let mut ps = pstates.to_vec();
    let mut steps = 0;
    loop {
        let powers = dc.node_powers_from_pstates(&ps);
        let state = dc
            .thermal
            .steady_state_with_failed_cracs(crac_out, &powers, failed)
            .ok()?;
        if state.redline_violation(dc.thermal.node_redline_c, dc.thermal.crac_redline_c) <= 1e-9
        {
            return Some((ps, steps));
        }
        // Hottest node inlet.
        let nc = dc.n_crac();
        let hottest = (0..dc.n_nodes())
            .max_by(|&a, &b| state.t_in[nc + a].total_cmp(&state.t_in[nc + b]))
            .unwrap();
        // Deepen that node's shallowest core; walk outward to neighbours
        // if the node is already dark.
        let mut cand: Option<usize> = None;
        for node in std::iter::once(hottest).chain(0..dc.n_nodes()) {
            let off = dc.node_type(node).core.pstates.off_index();
            if let Some(k) = dc
                .cores_of_node(node)
                .filter(|&k| ps[k] < off)
                .min_by_key(|&k| ps[k])
            {
                cand = Some(k);
                break;
            }
        }
        match cand {
            Some(k) => {
                ps[k] += 1;
                steps += 1;
            }
            None => return None, // everything off and still too hot
        }
    }
}

fn main() {
    let args = Args::parse(USAGE);
    let n_nodes = args.get_usize("nodes", 40);
    let n_crac = args.get_usize("cracs", 2);
    let seed = args.get_u64("seed", 1);

    for margin in [1.0, 1.5, 2.0] {
        run_with_margin(n_nodes, n_crac, seed, margin);
        println!();
    }
    println!("# Emergency response modeled: the surviving units drop to their coldest");
    println!("# outlet, then capacity is shed ('shed_steps' P-state deepenings) until");
    println!("# the redlines hold; 'reward_after' is the Stage-3 reward of the shed");
    println!("# plan. With the paper's Section-VI.G flow sizing (margin 1.0) the floor");
    println!("# has no N−1 capability at all — even an idle floor overheats — which is");
    println!("# why real rooms oversize cooling.");
}

fn run_with_margin(n_nodes: usize, n_crac: usize, seed: u64, margin: f64) {
    let params = ScenarioParams {
        n_nodes,
        n_crac,
        crac_flow_margin: margin,
        ..ScenarioParams::paper(0.2, 0.3)
    };
    let dc = params.build(seed).expect("scenario");
    let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("plan");
    let healthy_reward = plan.reward_rate();
    let powers = dc.node_powers_from_pstates(&plan.pstates);

    println!(
        "## CRAC flow margin {margin:.2} — {n_nodes} nodes, {n_crac} CRACs, seed {seed}"
    );
    println!(
        "healthy plan: reward {:.1}, CRAC outlets {:?} °C, hottest inlet {:.2} °C (redline {} °C)\n",
        healthy_reward,
        plan.crac_out_c(),
        dc.thermal
            .steady_state(plan.crac_out_c(), &powers)
            .max_node_inlet(),
        dc.thermal.node_redline_c
    );
    println!(
        "{:<10} {:>14} {:>12} {:>12} {:>14}",
        "failed", "hottest_C", "over_C", "shed_steps", "reward_after"
    );

    for f in 0..n_crac {
        let mut failed = vec![false; n_crac];
        failed[f] = true;
        let state = dc
            .thermal
            .steady_state_with_failed_cracs(plan.crac_out_c(), &powers, &failed)
            .expect("degraded solve");
        let over = state
            .redline_violation(dc.thermal.node_redline_c, dc.thermal.crac_redline_c)
            .max(0.0);
        // Emergency response: survivors drop to their coldest outlet
        // before any capacity is shed.
        let emergency: Vec<f64> = (0..n_crac)
            .map(|c| if failed[c] { plan.crac_out_c()[c] } else { dc.cracs[c].min_outlet_c })
            .collect();
        match shed_until_safe(&dc, &emergency, &failed, &plan.pstates) {
            Some((shed_ps, steps)) => {
                let reward = solve_stage3(&dc, &shed_ps)
                    .map(|s| s.reward_rate)
                    .unwrap_or(f64::NAN);
                println!(
                    "{:<10} {:>14.2} {:>12.2} {:>12} {:>14.1}",
                    format!("CRAC{f}"),
                    state.max_node_inlet(),
                    over,
                    steps,
                    reward
                );
            }
            None => println!(
                "{:<10} {:>14.2} {:>12.2} {:>12} {:>14}",
                format!("CRAC{f}"),
                state.max_node_inlet(),
                over,
                "-",
                "unrecoverable"
            ),
        }
    }
}
