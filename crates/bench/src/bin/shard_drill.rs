//! Degraded-zone drill: an injected worker panic and a forced zone
//! timeout against a live fleet solver, with the whole episode streamed
//! to a JSONL obs trace (CI smoke via `scripts/shard_drill.sh`).
//!
//! The drill runs in release mode with a *real* per-attempt deadline, so
//! the stalled zone exercises the genuine timeout path (abandon the
//! attempt, retry, exhaust, fall back) rather than the no-deadline
//! slow-failure path the proptests use. It exits nonzero unless:
//!
//! 1. the panicked zone and the stalled zone both degrade (everyone else
//!    solves fresh),
//! 2. every epoch's plan passes [`FleetPlan::verify`] — no redline
//!    violations, no feed oversubscription, honest power bookkeeping,
//! 3. the fleet reconverges to all-healthy once the faults clear, and
//! 4. the degraded-zone evidence (timeout/panic counters, fallback
//!    counters, replan spans) actually appears in the streamed trace.

use std::sync::Arc;
use std::time::Duration;

use thermaware_bench::cli::Args;
use thermaware_obs::JsonlRecorder;
use thermaware_shard::chaos::{ChaosScript, Fault};
use thermaware_shard::fleet::{Fleet, FleetParams};
use thermaware_shard::pool::PoolConfig;
use thermaware_shard::solver::{FleetConfig, FleetSolver};

const USAGE: &str =
    "shard_drill [--zones N] [--nodes N] [--seed S] [--deadline-ms N] [--trace PATH]";

fn main() {
    let args = Args::parse(USAGE);
    let n_zones = args.get_usize("zones", 6);
    let nodes_per_zone = args.get_usize("nodes", 24);
    let seed = args.get_u64("seed", 11);
    let deadline_ms = args.get_u64("deadline-ms", 1500);
    let trace_path = args.get_str("trace", "results/shard_trace.jsonl");

    if let Some(dir) = std::path::Path::new(&trace_path).parent() {
        std::fs::create_dir_all(dir).expect("trace dir");
    }
    let rec = Arc::new(JsonlRecorder::create(&trace_path).expect("trace file"));
    let outcome = {
        let _guard = thermaware_obs::install(rec.clone());
        run_drill(n_zones, nodes_per_zone, seed, deadline_ms)
    };
    rec.finish().expect("trace flush");
    if let Err(msg) = outcome {
        eprintln!("FAIL: {msg}");
        std::process::exit(1);
    }
}

fn run_drill(
    n_zones: usize,
    nodes_per_zone: usize,
    seed: u64,
    deadline_ms: u64,
) -> Result<(), String> {
    let fleet = Arc::new(
        Fleet::build(&FleetParams::small(n_zones, nodes_per_zone, seed), 50.0)
            .map_err(|e| format!("fleet build: {e:?}"))?,
    );
    println!(
        "## shard drill — {n_zones} zones x {nodes_per_zone} nodes, \
         deadline {deadline_ms} ms, trace streaming"
    );

    let cfg = FleetConfig {
        pool: PoolConfig {
            threads: thermaware_shard::pool::default_threads(n_zones),
            deadline: Some(Duration::from_millis(deadline_ms)),
            retries: 1,
            backoff: Duration::from_millis(5),
            hedge_after: None,
        },
        ..FleetConfig::default()
    };
    let mut solver = FleetSolver::new(Arc::clone(&fleet), cfg);

    // Epoch 0: healthy — seeds every zone's last-good plan and basis.
    let healthy = solver.replan(None);
    healthy.verify(&fleet).map_err(|e| format!("healthy epoch: {e}"))?;
    if healthy.degraded != 0 {
        return Err(format!("healthy epoch degraded {} zone(s)", healthy.degraded));
    }

    // Epoch 1: zone 0 panics on every attempt; zone 1 stalls for 4x the
    // deadline on every attempt (a genuinely hung worker — the
    // supervisor must abandon it at the deadline, not wait it out).
    let mut script = ChaosScript::new();
    script.inject_persistent(1, 0, 4, Fault::Panic);
    script.inject_persistent(1, 1, 4, Fault::Stall(4 * deadline_ms));
    let faulted = solver.replan(Some(&script));
    faulted.verify(&fleet).map_err(|e| format!("faulted epoch: {e}"))?;
    println!(
        "faulted epoch: {} degraded, stats {:?}",
        faulted.degraded, faulted.stats
    );
    if faulted.zones[0].degraded.is_none() {
        return Err("panicked zone 0 was not marked degraded".into());
    }
    if faulted.zones[1].degraded.is_none() {
        return Err("stalled zone 1 was not marked degraded".into());
    }
    if faulted.degraded != 2 {
        return Err(format!("expected exactly 2 degraded zones, got {}", faulted.degraded));
    }
    if faulted.stats.panics == 0 {
        return Err("no worker panic was recorded".into());
    }
    if faulted.stats.timeouts == 0 {
        return Err("no zone timeout was recorded".into());
    }
    // Degradation must not zero out the fleet: the two degraded zones
    // ride their last-good plans, so reward stays close to healthy.
    if faulted.reward < 0.5 * healthy.reward {
        return Err(format!(
            "fallback reward collapsed: {} vs healthy {}",
            faulted.reward, healthy.reward
        ));
    }

    // Faults cleared: backoff expires and the fleet reconverges.
    let mut recovered = false;
    for _ in 0..12 {
        let plan = solver.replan(None);
        plan.verify(&fleet).map_err(|e| format!("recovery epoch: {e}"))?;
        if plan.degraded == 0 {
            let tol = 1e-6 * (1.0 + healthy.reward.abs());
            if (plan.reward - healthy.reward).abs() > tol {
                return Err(format!(
                    "reconverged reward {} != healthy {}",
                    plan.reward, healthy.reward
                ));
            }
            recovered = true;
            break;
        }
    }
    if !recovered {
        return Err("fleet never reconverged after faults cleared".into());
    }

    println!(
        "PASS: panic + timeout degraded exactly their zones, redlines held \
         every epoch, fleet reconverged"
    );
    Ok(())
}
