//! Extension sweep: reward rate versus the ψ parameter.
//!
//! The paper (Section VII.B, third observation) notes that the best ψ
//! depends on arrival rates, the power constraint, and task/machine
//! affinity — it evaluates only ψ ∈ {25, 50}. This sweep maps the whole
//! curve.

use thermaware_bench::cli::Args;
use thermaware_bench::parallel::{default_threads, parallel_map};
use thermaware_bench::stats::mean_ci95;
use thermaware_core::{solve_three_stage, ThreeStageOptions};
use thermaware_datacenter::ScenarioParams;

const USAGE: &str = "sweep_psi [--runs N] [--nodes N] [--cracs N] [--seed S] [--share F] [--vprop F]";

fn main() {
    let args = Args::parse(USAGE);
    let runs = args.get_usize("runs", 10);
    let n_nodes = args.get_usize("nodes", 40);
    let n_crac = args.get_usize("cracs", 2);
    let base_seed = args.get_u64("seed", 1);
    let share = args.get_f64("share", 0.2);
    let v_prop = args.get_f64("vprop", 0.3);

    println!(
        "# Reward rate vs psi — {runs} runs x {n_nodes} nodes x {n_crac} CRACs, static {share}, Vprop {v_prop}\n"
    );
    println!("{:<8} {:>14} {:>10}", "psi", "reward_rate", "ci95");

    let psis = [12.5, 25.0, 37.5, 50.0, 62.5, 75.0, 87.5, 100.0];
    // Build scenarios once per run; sweep psi within.
    let run_results = parallel_map(runs, default_threads(runs), |r| {
        let params = ScenarioParams {
            n_nodes,
            n_crac,
            ..ScenarioParams::paper(share, v_prop)
        };
        let dc = params.build(base_seed + r as u64).expect("scenario");
        psis.iter()
            .map(|&psi| {
                solve_three_stage(
                    &dc,
                    &ThreeStageOptions {
                        psi_percent: psi,
                        ..ThreeStageOptions::default()
                    },
                )
                .map(|s| s.reward_rate())
                .unwrap_or(f64::NAN)
            })
            .collect()
    });
    let per_run: Vec<Vec<f64>> = run_results
        .into_iter()
        .map(|r| r.expect("run failed"))
        .collect();

    for (i, &psi) in psis.iter().enumerate() {
        let samples: Vec<f64> = per_run.iter().map(|run| run[i]).collect();
        let s = mean_ci95(&samples);
        println!("{:<8.1} {:>14.2} {:>10.2}", psi, s.mean, s.ci95);
    }
    println!("\n# The paper's Fig. 6 uses psi = 25 and 50 and takes the best of the two.");
}
