//! Durability-cost experiment: what batching journal fsyncs buys.
//!
//! The service daemon acks a batch only after its Begin record is
//! fsynced, so fsync latency is admission latency. `flush_every`
//! amortizes the barrier across N appends; this sweep measures the
//! per-append latency distribution (via the `persist.journal_append_us`
//! and `persist.fsync_us` histograms) for flush_every 1 / 8 / 32,
//! against the no-fsync floor, proving the batched mode's win.

use std::sync::Arc;
use std::time::Instant;
use thermaware_bench::cli::Args;
use thermaware_obs::{install, MemoryRecorder};
use thermaware_runtime::persist::JournalWriter;

const USAGE: &str = "fsync_batch [--appends N] [--payload-bytes N] [--dir PATH]";

#[derive(serde::Serialize, serde::Deserialize)]
struct Record {
    epoch: u64,
    payload: String,
}

fn main() {
    let args = Args::parse(USAGE);
    let appends = args.get_usize("appends", 2_000);
    let payload_bytes = args.get_usize("payload-bytes", 256);
    let dir_base = args.get_str(
        "dir",
        std::env::temp_dir()
            .join("thermaware-fsync-bench")
            .to_str()
            .unwrap_or("thermaware-fsync-bench"),
    );
    let dir = std::path::PathBuf::from(&dir_base);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    let payload = "x".repeat(payload_bytes);

    println!(
        "# Journal fsync batching — {appends} appends x {payload_bytes} B payload\n"
    );
    println!(
        "{:<14} {:>9} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "mode", "total_ms", "append_p50", "append_p99", "append_max", "fsyncs", "speedup"
    );

    let mut baseline_ms = 0.0;
    for (label, durable, flush_every) in [
        ("fsync-every-1", true, 1usize),
        ("fsync-every-8", true, 8),
        ("fsync-every-32", true, 32),
        ("no-fsync", false, 1),
    ] {
        let rec = Arc::new(MemoryRecorder::new());
        let guard = install(rec.clone());
        let path = dir.join(format!("journal-{label}.jsonl"));

        let mut journal =
            JournalWriter::create(&path, durable, flush_every).expect("journal");
        let t = Instant::now();
        for epoch in 0..appends as u64 {
            journal
                .append(&Record { epoch, payload: payload.clone() })
                .expect("append");
        }
        journal.sync().expect("final sync");
        let total = t.elapsed();
        drop(guard);

        let snap = rec.snapshot();
        let append = snap.histogram("persist.journal_append_us");
        let fsyncs = snap
            .histogram("persist.fsync_us")
            .map(|h| h.count)
            .unwrap_or(0);
        let (p50, p99, max) = append
            .map(|h| (h.p50, h.p99, h.max))
            .unwrap_or((0.0, 0.0, 0.0));
        let total_ms = total.as_secs_f64() * 1e3;
        if label == "fsync-every-1" {
            baseline_ms = total_ms;
        }
        println!(
            "{:<14} {:>9.1} {:>9.1} us {:>9.1} us {:>9.1} us {:>10} {:>7.1}x",
            label,
            total_ms,
            p50,
            p99,
            max,
            fsyncs,
            baseline_ms / total_ms.max(1e-9),
        );
    }

    println!(
        "\nThe daemon acks after the Begin fsync, so append_p99 bounds the\n\
         admission-latency tax; batching trades a bounded loss window\n\
         (Commit records, whose loss only re-runs a deterministic step)\n\
         for that win."
    );
    let _ = std::fs::remove_dir_all(&dir);
}
