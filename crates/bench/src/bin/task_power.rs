//! Extension experiment: task-type-dependent core power (paper Section
//! III.C's "third index on π"). Sweeps how I/O-intensive the task mix is
//! and reports the reward the power-aware Stage 3 recovers from the
//! headroom that nameplate P-state powers would waste.

use thermaware_bench::cli::Args;
use thermaware_bench::stats::mean_ci95;
use thermaware_core::task_power::{reclaim_power, solve_stage3_task_aware, TaskPowerModel};
use thermaware_core::{solve_three_stage, ThreeStageOptions};
use thermaware_datacenter::ScenarioParams;

const USAGE: &str = "task_power [--runs N] [--nodes N] [--cracs N] [--seed S]";

fn main() {
    let args = Args::parse(USAGE);
    let runs = args.get_usize("runs", 5);
    let n_nodes = args.get_usize("nodes", 20);
    let n_crac = args.get_usize("cracs", 1);
    let base_seed = args.get_u64("seed", 1);

    println!(
        "# Task-dependent power (Section III.C extension) — {runs} runs x {n_nodes} nodes\n"
    );
    println!("# Half the task types are I/O-bound with the given dynamic-power factor;");
    println!("# the other half stay at 1.0. idle factor 0.5.\n");
    println!(
        "{:<12} {:>12} {:>8} {:>12} {:>8} {:>12}",
        "io_factor", "fixed_gain%", "ci95", "reclaim%", "ci95", "power_kW"
    );

    for io_factor in [1.0, 0.9, 0.8, 0.7, 0.6, 0.5] {
        let mut gains = Vec::new();
        let mut reclaim_gains = Vec::new();
        let mut powers = Vec::new();
        for r in 0..runs {
            let seed = base_seed + r as u64;
            let params = ScenarioParams {
                n_nodes,
                n_crac,
                ..ScenarioParams::paper(0.2, 0.3)
            };
            let dc = params.build(seed).expect("scenario");
            let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("plan");
            let model = TaskPowerModel {
                factors: (0..dc.n_task_types())
                    .map(|i| if i % 2 == 0 { io_factor } else { 1.0 })
                    .collect(),
                idle_factor: 0.5,
            };
            let aware = solve_stage3_task_aware(&dc, &plan.pstates, plan.crac_out_c(), &model)
                .expect("task-aware");
            gains.push(100.0 * (aware.reward_rate - plan.reward_rate()) / plan.reward_rate());
            let (_, reclaimed) =
                reclaim_power(&dc, &plan.pstates, plan.crac_out_c(), &model, 64)
                    .expect("reclamation");
            reclaim_gains
                .push(100.0 * (reclaimed.reward_rate - plan.reward_rate()) / plan.reward_rate());
            powers.push(reclaimed.total_power_kw);
        }
        let g = mean_ci95(&gains);
        let rg = mean_ci95(&reclaim_gains);
        let pw = mean_ci95(&powers);
        println!(
            "{:<12.2} {:>12.2} {:>8.2} {:>12.2} {:>8.2} {:>12.2}",
            io_factor, g.mean, g.ci95, rg.mean, rg.ci95, pw.mean
        );
    }
    println!("\n# 'fixed' keeps the base plan's P-states (freed power is unusable —");
    println!("# capacity, not power, binds); 'reclaim' upgrades P-states into the");
    println!("# freed headroom, guided by the capacity duals.");
}
