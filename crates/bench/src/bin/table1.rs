//! Table I — parameters of the two node types, plus the per-P-state core
//! powers the Appendix-A CMOS model derives from them at the paper's two
//! static-power shares.

use thermaware_bench::cli::Args;
use thermaware_power::NodeType;

const USAGE: &str = "table1 [--share F]   (extra static share to tabulate, default both paper values)";

fn print_table(share: f64) {
    let types = NodeType::paper_node_types(share);
    println!("## Static power share {:.0}% of P-state-0 core power", share * 100.0);
    println!(
        "{:<34} {:>14} {:>14}",
        "parameter", &types[0].name[..14.min(types[0].name.len())], "NEC Express580"
    );
    let row = |name: &str, f: &dyn Fn(&NodeType) -> String| {
        println!("{:<34} {:>14} {:>14}", name, f(&types[0]), f(&types[1]));
    };
    row("base power (kW)", &|t| format!("{:.3}", t.base_power_kw));
    row("number of cores", &|t| t.cores_per_node.to_string());
    row("number of P-states (active)", &|t| {
        t.core.pstates.n_active().to_string()
    });
    row("P-state 0 power (kW)", &|t| {
        format!("{:.5}", t.core.pstates.power_kw(0))
    });
    row("air flow rate (m^3/s)", &|t| format!("{:.4}", t.air_flow_m3s));
    for k in 0..4 {
        row(&format!("P{k} clock (MHz)"), &|t| {
            format!("{:.0}", t.core.pstates.freq_mhz(k))
        });
    }
    println!("derived per-P-state core power (kW), Eq. 23:");
    for k in 0..4 {
        row(&format!("  pi(j, {k})"), &|t| {
            format!("{:.5}", t.core.pstates.power_kw(k))
        });
    }
    println!(
        "{:<34} {:>14} {:>14}",
        "  pi(j, off)", "0.00000", "0.00000"
    );
    // The perf/W ladder that decides whether intermediate P-states win.
    println!("clock-per-watt relative to P0 (the paper's key ratio):");
    for k in 0..4 {
        row(&format!("  (f_k/pi_k)/(f_0/pi_0), k={k}"), &|t| {
            let p = &t.core.pstates;
            let r0 = p.freq_mhz(0) / p.power_kw(0);
            format!("{:.3}", (p.freq_mhz(k) / p.power_kw(k)) / r0)
        });
    }
    println!();
}

fn main() {
    let args = Args::parse(USAGE);
    println!("# Table I — parameters of the two node types used in simulations\n");
    let share = args.get_f64("share", f64::NAN);
    if share.is_nan() {
        print_table(0.30);
        print_table(0.20);
    } else {
        print_table(share);
    }
}
