//! Durability experiment: what checkpointing costs, and what a crash
//! costs with it.
//!
//! Part 1 sweeps the snapshot interval and measures wall-clock overhead
//! of the write-ahead journal + snapshot protocol against the same run
//! without any persistence (both durable-fsync and buffered modes).
//!
//! Part 2 is the kill-and-resume demonstration: the checkpointed run is
//! killed at a chosen epoch, recovered from disk (torn tails truncated,
//! CRCs verified, invariants checked), and run to completion — and the
//! recovered report must match the uninterrupted run **exactly**: same
//! reward, same outcome, same event log.

use std::time::Instant;
use thermaware_bench::cli::Args;
use thermaware_core::{solve_three_stage, ThreeStageOptions};
use thermaware_datacenter::ScenarioParams;
use thermaware_runtime::persist::run_checkpointed_until;
use thermaware_runtime::{
    resume, run_checkpointed, CheckpointConfig, FaultScript, Supervisor, SupervisorConfig,
};

const USAGE: &str = "recovery [--nodes N] [--cracs N] [--seed S] [--horizon SECONDS] \
                     [--kill-epoch E] [--checkpoint-dir PATH] [--retain N]";

fn main() {
    let args = Args::parse(USAGE);
    let n_nodes = args.get_usize("nodes", 24);
    let n_crac = args.get_usize("cracs", 2);
    let seed = args.get_u64("seed", 1);
    let horizon = args.get_f64("horizon", 30.0);
    let kill_epoch = args.get_usize("kill-epoch", 17);
    let retain = args.get_usize("retain", 3);
    let dir_base = args.get_str(
        "checkpoint-dir",
        std::env::temp_dir()
            .join("thermaware-recovery-bench")
            .to_str()
            .unwrap_or("thermaware-recovery-bench"),
    );

    let params = ScenarioParams {
        n_nodes,
        n_crac,
        crac_flow_margin: 1.5,
        ..ScenarioParams::paper(0.2, 0.3)
    };
    let dc = params.build(seed).expect("scenario");
    let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("plan");
    let script = FaultScript::new()
        .crac_failure(horizon / 3.0, 0)
        .crac_recovery(horizon * 0.6, 0)
        .arrival_surge(horizon / 2.0, 1.5);
    let cfg = SupervisorConfig {
        horizon_s: horizon,
        seed,
        ..SupervisorConfig::default()
    };
    let n_epochs = (horizon / cfg.epoch_s).ceil() as usize;

    println!(
        "## Checkpoint overhead — {n_nodes} nodes, {n_crac} CRACs, seed {seed}, \
         {n_epochs} epochs"
    );

    let t0 = Instant::now();
    let baseline = Supervisor::new(&dc, cfg).run(&plan, &script);
    let t_plain = t0.elapsed();
    println!(
        "no persistence: {:>8.1} ms  ({:?}, reward {:.1}/s)\n",
        t_plain.as_secs_f64() * 1e3,
        baseline.outcome,
        baseline.sim.reward_rate
    );

    println!(
        "{:<10} {:>9} {:>12} {:>12} {:>10}",
        "interval", "durable", "time_ms", "overhead", "snapshots"
    );
    for &interval in &[1usize, 2, 4, 8, 16] {
        for durable in [true, false] {
            let dir = std::path::PathBuf::from(&dir_base)
                .join(format!("sweep-{interval}-{durable}"));
            let ckpt = CheckpointConfig {
                dir: dir.clone(),
                snapshot_interval: interval,
                retain,
                durable,
                flush_every: 1,
            };
            let t = Instant::now();
            let report = run_checkpointed(&dc, cfg, &plan, &script, &ckpt).expect("run");
            let dt = t.elapsed();
            assert_eq!(report.sim.reward_collected, baseline.sim.reward_collected);
            let snaps = std::fs::read_dir(&dir)
                .map(|d| {
                    d.filter_map(Result::ok)
                        .filter(|e| {
                            e.file_name().to_string_lossy().starts_with("snap-")
                        })
                        .count()
                })
                .unwrap_or(0);
            println!(
                "{:<10} {:>9} {:>12.1} {:>11.2}x {:>10}",
                interval,
                durable,
                dt.as_secs_f64() * 1e3,
                dt.as_secs_f64() / t_plain.as_secs_f64().max(1e-12),
                snaps
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    // -- Kill and resume ---------------------------------------------------
    let kill_epoch = kill_epoch.min(n_epochs.saturating_sub(1));
    println!("\n## Kill-and-resume — killed after epoch {kill_epoch}/{n_epochs}");
    let dir = std::path::PathBuf::from(&dir_base).join("kill");
    let ckpt = CheckpointConfig {
        dir: dir.clone(),
        snapshot_interval: 8,
        retain,
        durable: true,
        flush_every: 1,
    };
    let stopped = run_checkpointed_until(&dc, cfg, &plan, &script, &ckpt, kill_epoch)
        .expect("checkpointed run");
    assert!(stopped.is_none(), "kill epoch must be inside the horizon");

    let t = Instant::now();
    let rec = resume(&dir).expect("resume");
    let t_resume = t.elapsed();
    println!(
        "recovered from snapshot at epoch {} (+{} journal epochs replayed, \
         {} B torn tail truncated) in {:.1} ms; resumes at epoch {}",
        rec.info.snapshot_epoch,
        rec.info.replayed_epochs,
        rec.info.truncated_bytes,
        t_resume.as_secs_f64() * 1e3,
        rec.info.resume_epoch
    );
    println!(
        "recovered assignment feasible: {} (redline {:+.2} °C, headroom {:+.1} kW)",
        rec.info.feasible,
        rec.info.worst_redline_violation_c,
        rec.info.power_headroom_kw
    );

    let report = rec.finish().expect("finish recovered run");
    // Resume must be *bit-identical* to the uninterrupted run (DESIGN.md
    // §7) — compare the reward's bit pattern, which is stricter than
    // `==` (distinguishes -0.0, survives NaN) and states the contract.
    let identical = report.outcome == baseline.outcome
        && report.sim.reward_collected.to_bits() == baseline.sim.reward_collected.to_bits()
        && report.log == baseline.log;
    println!(
        "\nacceptance: resumed run identical to uninterrupted run: {} \
         (reward {:.3} vs {:.3}, {} vs {} events)",
        if identical { "PASS" } else { "FAIL" },
        report.sim.reward_collected,
        baseline.sim.reward_collected,
        report.log.events().len(),
        baseline.log.events().len()
    );
    let _ = std::fs::remove_dir_all(&dir);
    if !identical {
        std::process::exit(1);
    }
}
