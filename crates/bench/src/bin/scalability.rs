//! Scalability: three-stage solve time versus data-center size, and the
//! combinatorial blow-up that makes the exact MINLP intractable — the
//! motivation for the paper's decomposition (Section V.B.1).

use std::time::Instant;
use thermaware_bench::cli::Args;
use thermaware_core::minlp::{solve_exact, MinlpOptions};
use thermaware_core::{solve_baseline, solve_three_stage, ThreeStageOptions};
use thermaware_datacenter::{CracSearchOptions, ScenarioParams};

const USAGE: &str = "scalability [--seed S] [--max-nodes N]";

fn main() {
    let args = Args::parse(USAGE);
    let seed = args.get_u64("seed", 1);
    let max_nodes = args.get_usize("max-nodes", 150);

    println!("# Three-stage and baseline solve times vs data-center size\n");
    println!(
        "{:<8} {:<8} {:>8} {:>14} {:>14} {:>14}",
        "nodes", "cores", "cracs", "3stage_ms", "baseline_ms", "reward_ratio"
    );
    for &(n_nodes, n_crac) in &[(10usize, 1usize), (20, 1), (40, 2), (80, 2), (150, 3)] {
        if n_nodes > max_nodes {
            break;
        }
        let params = ScenarioParams {
            n_nodes,
            n_crac,
            ..ScenarioParams::paper(0.2, 0.3)
        };
        let dc = params.build(seed).expect("scenario");
        let t0 = Instant::now();
        let three = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("3stage");
        let t_three = t0.elapsed();
        let t1 = Instant::now();
        let base = solve_baseline(&dc, CracSearchOptions::default()).expect("baseline");
        let t_base = t1.elapsed();
        println!(
            "{:<8} {:<8} {:>8} {:>14.1} {:>14.1} {:>14.3}",
            n_nodes,
            dc.n_cores(),
            n_crac,
            t_three.as_secs_f64() * 1e3,
            t_base.as_secs_f64() * 1e3,
            three.reward_rate() / base.reward_rate,
        );
    }

    println!("\n# Exact MINLP enumeration cost (P-state multisets per node, product over nodes):");
    println!("{:<24} {:>22}", "instance", "combinations");
    for (cores_per_node, nodes) in [(2, 2), (2, 4), (4, 4), (8, 4), (32, 2), (32, 150)] {
        // C(5 + c - 1, c) multisets per node with 5 P-states (4 active + off).
        let per_node = multiset_count(5, cores_per_node);
        let total = (per_node as f64).powi(nodes);
        println!(
            "{:<24} {:>22.3e}",
            format!("{nodes} nodes x {cores_per_node} cores"),
            total
        );
    }
    println!("\n# The exact solver's size guard on the smallest realistic floor:");
    let tiny = ScenarioParams {
        n_nodes: 4,
        n_crac: 1,
        ..ScenarioParams::paper(0.2, 0.3)
    };
    match tiny.build(seed) {
        Ok(dc) => {
            // Even 4 nodes x 32 cores is far beyond exhaustive
            // enumeration; the guard refuses rather than hang (the
            // `exact_vs_heuristic` integration test runs the solver to
            // completion on a 2-node x 2-core instance instead).
            match solve_exact(&dc, &MinlpOptions::default()) {
                Ok(sol) => println!(
                    "4 nodes: exact reward {:.2} after {} combinations",
                    sol.reward_rate, sol.combinations_checked
                ),
                Err(e) => println!("4 nodes x 32 cores: {e}"),
            }
        }
        Err(e) => println!("tiny scenario failed: {e}"),
    }
}

fn multiset_count(alphabet: u64, len: u64) -> u64 {
    // Incremental binomial recurrence; intermediates are themselves
    // binomial coefficients, so this cannot overflow before saturating.
    let mut c: u128 = 1;
    for i in 0..len {
        c = c * (alphabet as u128 + i as u128) / (i as u128 + 1);
        if c > u64::MAX as u128 {
            return u64::MAX;
        }
    }
    c as u64
}
