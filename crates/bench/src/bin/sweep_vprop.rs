//! Extension sweep: improvement over the baseline versus `V_prop` — the
//! ECS/clock proportionality noise. Generalizes Figure 6's second
//! observation (more noise → more task-type/P-state affinity for the
//! three-stage technique to exploit).

use thermaware_bench::cli::Args;
use thermaware_bench::fig6::{run_figure6_set, Fig6Config, SimulationSet};
use thermaware_bench::parallel::default_threads;
use thermaware_datacenter::CracSearchOptions;

const USAGE: &str = "sweep_vprop [--runs N] [--nodes N] [--cracs N] [--seed S] [--share F]";

fn main() {
    let args = Args::parse(USAGE);
    let runs = args.get_usize("runs", 10);
    let config = Fig6Config {
        runs,
        n_nodes: args.get_usize("nodes", 40),
        n_crac: args.get_usize("cracs", 2),
        base_seed: args.get_u64("seed", 1),
        threads: args.get_usize("threads", default_threads(runs)),
        search: CracSearchOptions::default(),
    };
    let share = args.get_f64("share", 0.3);

    println!(
        "# %% improvement (best of psi 25/50) vs V_prop — {} runs x {} nodes, static {share}\n",
        config.runs, config.n_nodes
    );
    println!("{:<10} {:>12} {:>8}", "v_prop", "improvement%", "ci95");
    for v_prop in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let set = SimulationSet {
            static_share: share,
            v_prop,
            label: "sweep",
        };
        match run_figure6_set(set, &config) {
            Ok(r) => println!("{:<10.2} {:>12.2} {:>8.2}", v_prop, r.best.mean, r.best.ci95),
            Err(e) => println!("{v_prop:<10.2} FAILED: {e}"),
        }
    }
    println!("\n# Paper observation 2: Vprop 0.3 shows a larger improvement than 0.1.");
}
