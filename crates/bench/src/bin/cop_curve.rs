//! The Eq.-8 CoP curve of the HP Utility Data Center, tabulated over the
//! searchable outlet range — the nonlinearity that makes Eq. 7 an MINLP.

use thermaware_thermal::cop::cop;

fn main() {
    println!("# CoP(tau) = 0.0068 tau^2 + 0.0008 tau + 0.458   (Eq. 8)\n");
    println!("{:<10} {:<10} {:<14}", "tau_C", "CoP", "kW_per_kW_heat");
    for t in 0..=40 {
        let tau = t as f64;
        let c = cop(tau);
        println!("{:<10.1} {:<10.4} {:<14.4}", tau, c, 1.0 / c);
    }
    println!("\n# Warmer supply air is cheaper to produce; the Stage-1 outlet search");
    println!("# trades this against redline headroom at the node inlets.");
}
