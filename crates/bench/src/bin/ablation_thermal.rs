//! Ablation: what does thermal *awareness* buy?
//!
//! A thermal-blind variant of Stage 1 keeps the power budget but drops
//! the per-inlet redline rows (pretending heat disappears uniformly).
//! Its plan is then judged by the *real* thermal model: how often does it
//! violate redlines, and by how many degrees? This isolates the "thermal-
//! aware" half of the paper's title from the "P-state assignment" half.

use thermaware_bench::cli::Args;
use thermaware_bench::stats::mean_ci95;
use thermaware_core::{solve_three_stage, verify_assignment, ThreeStageOptions};
use thermaware_datacenter::ScenarioParams;

const USAGE: &str = "ablation_thermal [--runs N] [--nodes N] [--cracs N] [--seed S]";

fn main() {
    let args = Args::parse(USAGE);
    let runs = args.get_usize("runs", 10);
    let n_nodes = args.get_usize("nodes", 40);
    let n_crac = args.get_usize("cracs", 2);
    let base_seed = args.get_u64("seed", 1);

    println!(
        "# Thermal-awareness ablation — {runs} runs x {n_nodes} nodes x {n_crac} CRACs\n"
    );
    println!("# 'blind' = redlines lifted to +1000 °C during planning, judged by the");
    println!("# real model afterwards.\n");
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>14}",
        "plan", "reward_rate", "ci95", "violations", "worst_C_over"
    );

    let mut aware_rewards = Vec::new();
    let mut blind_rewards = Vec::new();
    let mut blind_violations = 0usize;
    let mut worst_over: f64 = 0.0;
    for r in 0..runs {
        let seed = base_seed + r as u64;
        let params = ScenarioParams {
            n_nodes,
            n_crac,
            ..ScenarioParams::paper(0.2, 0.3)
        };
        let dc = params.build(seed).expect("scenario");
        let aware = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("aware");
        aware_rewards.push(aware.reward_rate());

        // Blind planner: same machinery, redlines effectively removed.
        let mut blind_dc = dc.clone();
        blind_dc.thermal.node_redline_c = 1000.0;
        blind_dc.thermal.crac_redline_c = 1000.0;
        let blind = solve_three_stage(&blind_dc, &ThreeStageOptions::default()).expect("blind");
        blind_rewards.push(blind.reward_rate());
        // Judge the blind plan with the REAL redlines.
        let report = verify_assignment(&dc, blind.crac_out_c(), &blind.pstates, None);
        if report.worst_redline_violation_c > 1e-6 {
            blind_violations += 1;
            worst_over = worst_over.max(report.worst_redline_violation_c);
        }
    }
    let a = mean_ci95(&aware_rewards);
    let b = mean_ci95(&blind_rewards);
    println!(
        "{:<10} {:>14.1} {:>14.1} {:>12} {:>14}",
        "aware", a.mean, a.ci95, 0, "-"
    );
    println!(
        "{:<10} {:>14.1} {:>14.1} {:>12} {:>14.2}",
        "blind",
        b.mean,
        b.ci95,
        format!("{blind_violations}/{runs}"),
        worst_over
    );
    println!("\n# The blind plan buys {:.1}% more nominal reward by parking heat it",
        100.0 * (b.mean - a.mean) / a.mean);
    println!("# cannot remove: every violation is hardware the model would cook.");
}
