//! Scenario-engine benchmark: diurnal demand, chip-level thermal
//! migration, and multi-objective cost, snapshotted to
//! `results/BENCH_scenarios.json`.
//!
//! Three measurements, all pure deterministic f64 arithmetic (seeded
//! simulation, no wall-clock dependence), so every gated metric is
//! stable across machines and `thermaware-analyze bench --check` gates
//! it at ±15% drift against the committed baseline:
//!
//! 1. **Diurnal sweep** — the [`Solver`] builder solves the same floor
//!    at the trough and crest of a diurnal arrival curve; the crest plan
//!    must collect strictly more reward. A supervised run under the same
//!    curve then counts the drift-triggered full replans
//!    (`Stage1Replan`) the scenario engine issues as demand walks away
//!    from the planned multiplier.
//! 2. **Migration drill** — a hot chip model (low DTM redline) plus a
//!    scripted CRAC failure: the supervisor's chip rung must answer
//!    every `ChipHotspot` with `Migrate` (work spread across the die at
//!    zero reward cost) or a targeted throttle; the drill counts
//!    hotspots, migrations, and total swaps.
//! 3. **Multi-objective** — reward-only versus a priced objective on
//!    the same floor: the priced plan must draw no more power and the
//!    reward-only plan must stay the reward maximizer; the drill gates
//!    the relative power and reward deltas.
//!
//! The supervised runs' full event logs are written to `--trace` (text,
//! one section per drill) and uploaded as a CI artifact.
//!
//! ```sh
//! cargo run --release -p thermaware-bench --bin scenario_bench  # write results/current/BENCH_scenarios.json
//! cargo run -p thermaware-analyze -- bench --check              # gate vs committed baselines
//! ```

use thermaware_bench::cli::Args;
use thermaware_core::{ObjectiveWeights, Solver};
use thermaware_datacenter::ScenarioParams;
use thermaware_runtime::{
    Action, EventKind, FaultScript, Supervisor, SupervisorConfig, Violation,
};
use thermaware_thermal::{ChipModel, ChipParams};
use thermaware_workload::Curve;

const USAGE: &str = "scenario_bench [--nodes N] [--seed S] [--price P] [--out PATH] \
                     [--trace PATH]";

fn main() {
    let args = Args::parse(USAGE);
    let n_nodes = args.get_usize("nodes", 8);
    let seed = args.get_u64("seed", 1);
    // Task rewards are abstract units, so a price that bites must be
    // commensurate with the floor's marginal reward per kWh (~2e5 units
    // on the 8-node seed-1 floor); the default sits in the smooth part
    // of the trade-off curve, away from the all-or-nothing knife edges.
    let price = args.get_f64("price", 200_000.0);
    let out_path = args.get_str("out", "results/current/BENCH_scenarios.json");
    let trace_path = args.get_str("trace", "results/scenario_trace.txt");

    let dc = ScenarioParams {
        n_nodes,
        n_crac: 2,
        ..ScenarioParams::small_test()
    }
    .build(seed)
    .expect("scenario builds");
    println!("## scenario bench — {n_nodes} nodes, seed {seed}");
    let mut trace = String::new();

    // -- Part 1: diurnal demand -------------------------------------------
    let day = Curve::Diurnal { base: 0.5, peak: 1.5, period_s: 12.0 };
    let solver = Solver::new(&dc).arrival_curve(day);
    let trough = solver.solve_at(0.0).expect("trough solve");
    let crest = solver.solve_at(6.0).expect("crest solve");
    assert!(
        crest.reward_rate() > trough.reward_rate(),
        "crest reward {} must beat trough {}",
        crest.reward_rate(),
        trough.reward_rate()
    );
    let crest_over_trough = crest.reward_rate() / trough.reward_rate().max(1e-12);

    let plan = Solver::new(&dc).solve().expect("static plan");
    let cfg = SupervisorConfig {
        horizon_s: 18.0,
        demand: Some(day),
        ..SupervisorConfig::default()
    };
    let report = Supervisor::new(&dc, cfg).run(&plan, &FaultScript::new());
    let count = |pred: &dyn Fn(&EventKind) -> bool| {
        report.log.events().iter().filter(|e| pred(&e.kind)).count()
    };
    let drift_violations = count(&|k| {
        matches!(k, EventKind::ViolationDetected(Violation::DemandDrift { .. }))
    });
    let drift_replans =
        count(&|k| matches!(k, EventKind::ActionTaken(Action::Stage1Replan)));
    assert!(
        drift_replans > 0,
        "a 3x diurnal swing must trigger at least one full replan"
    );
    println!(
        "diurnal: reward {:.2}/s (trough) -> {:.2}/s (crest) = {crest_over_trough:.3}x; \
         {drift_violations} drift violations, {drift_replans} full replans \
         over {} epochs ({:?})",
        trough.reward_rate(),
        crest.reward_rate(),
        cfg.horizon_s / cfg.epoch_s,
        report.outcome,
    );
    trace.push_str(&format!(
        "== diurnal drill ({:?}) ==\n{}\n",
        report.outcome, report.log
    ));

    // -- Part 2: chip-level migration drill --------------------------------
    let cores_per_type: Vec<usize> =
        dc.node_types.iter().map(|t| t.cores_per_node).collect();
    let chip = ChipModel::build(
        &cores_per_type,
        &ChipParams { t_dtm_c: 40.0, ..ChipParams::default() },
    )
    .expect("chip model builds");
    let script = FaultScript::new().crac_failure(1.0, 0);
    let cfg = SupervisorConfig { horizon_s: 10.0, ..SupervisorConfig::default() };
    let report = Supervisor::new(&dc, cfg).with_chip(&chip).run(&plan, &script);
    let count = |pred: &dyn Fn(&EventKind) -> bool| {
        report.log.events().iter().filter(|e| pred(&e.kind)).count()
    };
    let chip_hotspots = count(&|k| {
        matches!(k, EventKind::ViolationDetected(Violation::ChipHotspot { .. }))
    });
    let migrations = count(&|k| matches!(k, EventKind::ActionTaken(Action::Migrate { .. })));
    let migrate_swaps: usize = report
        .log
        .events()
        .iter()
        .map(|e| match e.kind {
            EventKind::ActionTaken(Action::Migrate { swaps }) => swaps,
            _ => 0,
        })
        .sum();
    assert!(
        chip_hotspots > 0,
        "a 40 degree DTM under a CRAC failure must trip the chip rung"
    );
    println!(
        "migration: {chip_hotspots} hotspots, {migrations} migrations \
         ({migrate_swaps} swaps) ({:?})",
        report.outcome,
    );
    trace.push_str(&format!(
        "== migration drill ({:?}) ==\n{}\n",
        report.outcome, report.log
    ));

    // -- Part 3: multi-objective trade-off ---------------------------------
    let weights = ObjectiveWeights { price_per_kwh: price, ..ObjectiveWeights::reward_only() };
    let priced = Solver::new(&dc).objective(weights).solve().expect("priced solve");
    let (r0, r1) = (plan.reward_rate(), priced.reward_rate());
    let (p0, p1) = (plan.total_power_kw(&dc), priced.total_power_kw(&dc));
    assert!(p1 <= p0 + 1e-9, "a positive price must not increase power");
    let power_drop_frac = (p0 - p1) / p0.max(1e-12);
    let reward_drop_frac = (r0 - r1) / r0.max(1e-12);
    assert!(
        power_drop_frac > 0.01,
        "the default price must actually trade: power only dropped {:.2}%",
        100.0 * power_drop_frac
    );
    assert!(
        priced.net_objective(&dc, &weights) >= plan.net_objective(&dc, &weights) - 1e-9,
        "under the priced objective, the priced plan must win"
    );
    println!(
        "multi-objective @ {price} $/kWh: power {p0:.1} -> {p1:.1} kW (-{:.1}%), \
         reward {r0:.2} -> {r1:.2}/s (-{:.1}%)",
        100.0 * power_drop_frac,
        100.0 * reward_drop_frac,
    );

    if let Some(dir) = std::path::Path::new(&trace_path).parent() {
        std::fs::create_dir_all(dir).expect("trace dir");
    }
    std::fs::write(&trace_path, &trace).expect("write trace");
    println!("trace written to {trace_path}");

    // -- Snapshot, bless, or check -----------------------------------------
    let doc = serde_json::json!({
        "experiment": "scenarios",
        "config": {
            "nodes": n_nodes,
            "seed": seed,
        },
        // Scale-free and machine-independent: drift-gated at ±15%.
        "deterministic": {
            "diurnal_crest_over_trough": crest_over_trough,
            "drift_violations": drift_violations as f64,
            "drift_replans": drift_replans as f64,
            "chip_hotspots": chip_hotspots as f64,
            "migrations": migrations as f64,
            "migrate_swaps": migrate_swaps as f64,
            "multiobj_power_drop_frac": power_drop_frac,
            "multiobj_reward_drop_frac": reward_drop_frac,
        },
    });

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("out dir");
    }
    std::fs::write(&out_path, serde_json::to_string_pretty(&doc).expect("json"))
        .expect("write snapshot");
    println!("snapshot written to {out_path}");
}
