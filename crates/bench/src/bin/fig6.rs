//! Figure 6 — the paper's headline experiment.
//!
//! Average percentage improvement of the three-stage thermal-aware
//! assignment (ψ = 25, ψ = 50, and the per-run best of the two) over the
//! Eq.-21 baseline (P-state 0 or off only), with 95% confidence
//! intervals, for the paper's three simulation sets:
//!
//! 1. static share 30%, V_prop 0.1
//! 2. static share 30%, V_prop 0.3
//! 3. static share 20%, V_prop 0.3
//!
//! Paper scale is `--runs 25 --nodes 150 --cracs 3`; the defaults match.
//! Use smaller values for a quick look.

use thermaware_bench::cli::Args;
use thermaware_bench::fig6::{run_figure6_set, Fig6Config, PAPER_SETS};
use thermaware_bench::parallel::default_threads;
use thermaware_datacenter::CracSearchOptions;

const USAGE: &str =
    "fig6 [--runs N] [--nodes N] [--cracs N] [--seed S] [--threads N] [--json PATH]";

fn main() {
    let args = Args::parse(USAGE);
    let runs = args.get_usize("runs", 25);
    let json_path = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--json")
        .map(|w| w[1].clone());
    let config = Fig6Config {
        runs,
        n_nodes: args.get_usize("nodes", 150),
        n_crac: args.get_usize("cracs", 3),
        base_seed: args.get_u64("seed", 1),
        threads: args.get_usize("threads", default_threads(runs)),
        search: CracSearchOptions::default(),
    };

    println!("# Figure 6 — average % improvement of the three-stage assignment");
    println!(
        "# over the [26]-based baseline; {} runs x {} nodes x {} CRACs, seed {}",
        config.runs, config.n_nodes, config.n_crac, config.base_seed
    );
    println!(
        "{:<24} {:>16} {:>16} {:>16}",
        "simulation set", "psi=25", "psi=50", "best of both"
    );

    let mut json_sets = Vec::new();
    for set in PAPER_SETS {
        let started = std::time::Instant::now();
        match run_figure6_set(set, &config) {
            Ok(r) => {
                println!(
                    "{:<24} {:>8.2} ±{:>5.2} {:>8.2} ±{:>5.2} {:>8.2} ±{:>5.2}   ({:.1}s)",
                    set.label,
                    r.psi25.mean,
                    r.psi25.ci95,
                    r.psi50.mean,
                    r.psi50.ci95,
                    r.best.mean,
                    r.best.ci95,
                    started.elapsed().as_secs_f64()
                );
                json_sets.push(serde_json::json!({
                    "label": set.label,
                    "static_share": set.static_share,
                    "v_prop": set.v_prop,
                    "improvement_pct": {
                        "psi25": { "mean": r.psi25.mean, "ci95": r.psi25.ci95 },
                        "psi50": { "mean": r.psi50.mean, "ci95": r.psi50.ci95 },
                        "best":  { "mean": r.best.mean,  "ci95": r.best.ci95 },
                    },
                    "runs": r.runs.iter().map(|run| serde_json::json!({
                        "psi25": run.psi25,
                        "psi50": run.psi50,
                        "baseline": run.baseline,
                    })).collect::<Vec<_>>(),
                }));
            }
            Err(e) => {
                println!("{:<24} FAILED: {e}", set.label);
            }
        }
    }
    if let Some(path) = json_path {
        let doc = serde_json::json!({
            "experiment": "figure6",
            "config": {
                "runs": config.runs,
                "n_nodes": config.n_nodes,
                "n_crac": config.n_crac,
                "base_seed": config.base_seed,
            },
            "sets": json_sets,
        });
        match std::fs::write(&path, serde_json::to_string_pretty(&doc).unwrap()) {
            Ok(()) => println!("\n# raw runs written to {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
    println!();
    println!("# Paper (Fig. 6): improvements grow from set 1 to set 3, up to ~10%");
    println!("# average for the best-of-both series in set 3.");
}
