//! Extension sweep: improvement over the baseline versus **budget
//! tightness** — the paper's entire premise is a power-*constrained* data
//! center (Eq. 18 pins `Pconst` to the midpoint of the envelope). This
//! sweep moves the budget across the whole envelope: at loose budgets
//! everything runs at P0 and the techniques converge; the tighter the
//! budget, the more the P-state ladder matters.

use thermaware_bench::cli::Args;
use thermaware_bench::parallel::{default_threads, parallel_map};
use thermaware_bench::stats::mean_ci95;
use thermaware_core::{solve_baseline, solve_three_stage_best_of};
use thermaware_datacenter::{CracSearchOptions, ScenarioParams};

const USAGE: &str = "sweep_budget [--runs N] [--nodes N] [--cracs N] [--seed S]";

fn main() {
    let args = Args::parse(USAGE);
    let runs = args.get_usize("runs", 10);
    let n_nodes = args.get_usize("nodes", 40);
    let n_crac = args.get_usize("cracs", 2);
    let base_seed = args.get_u64("seed", 1);

    let fracs = [0.15, 0.3, 0.5, 0.7, 0.85, 1.0];
    println!(
        "# %% improvement (best of psi 25/50) vs budget position — {runs} runs x {n_nodes} nodes"
    );
    println!("# Pconst = Pmin + frac · (Pmax − Pmin); the paper's Eq. 18 is frac = 0.5\n");
    println!(
        "{:<10} {:>12} {:>8} {:>14}",
        "frac", "improvement%", "ci95", "cores_at_P0%"
    );

    // One scenario per run; sweep the budget within it so the comparison
    // isolates the budget effect from scenario noise.
    let row_results = parallel_map(runs, default_threads(runs), |r| {
        let params = ScenarioParams {
            n_nodes,
            n_crac,
            ..ScenarioParams::paper(0.2, 0.3)
        };
        let base_dc = params.build(base_seed + r as u64).expect("scenario");
        fracs
            .iter()
            .map(|&frac| {
                let mut dc = base_dc.clone();
                dc.budget.p_const_kw =
                    dc.budget.p_min_kw + frac * (dc.budget.p_max_kw - dc.budget.p_min_kw);
                let plan =
                    solve_three_stage_best_of(&dc, &[25.0, 50.0], CracSearchOptions::default());
                let base = solve_baseline(&dc, CracSearchOptions::default());
                match (plan, base) {
                    (Ok(p), Ok(b)) => {
                        let improvement =
                            100.0 * (p.reward_rate() - b.reward_rate) / b.reward_rate;
                        let p0_share = 100.0
                            * p.pstates.iter().filter(|&&s| s == 0).count() as f64
                            / p.pstates.len() as f64;
                        (improvement, p0_share)
                    }
                    _ => (f64::NAN, f64::NAN),
                }
            })
            .collect()
    });
    let rows: Vec<Vec<(f64, f64)>> = row_results
        .into_iter()
        .map(|r| r.expect("run failed"))
        .collect();

    for (i, &frac) in fracs.iter().enumerate() {
        let imps: Vec<f64> = rows.iter().map(|r| r[i].0).filter(|v| v.is_finite()).collect();
        let p0s: Vec<f64> = rows.iter().map(|r| r[i].1).filter(|v| v.is_finite()).collect();
        let s = mean_ci95(&imps);
        let p0 = mean_ci95(&p0s);
        println!(
            "{:<10.2} {:>12.2} {:>8.2} {:>14.1}",
            frac, s.mean, s.ci95, p0.mean
        );
    }
    println!("\n# Expectation: the advantage peaks at tight-to-mid budgets (many cores");
    println!("# parked in efficient intermediate P-states) and shrinks as the budget");
    println!("# loosens toward all-P0 capacity.");
}
