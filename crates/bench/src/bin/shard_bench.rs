//! Sharded fleet-solve benchmark: decomposition overhead, fault-drill
//! determinism, and pooled speedup on a 10k-node fleet, snapshotted to
//! `results/BENCH_shard.json`.
//!
//! Three measurements:
//!
//! 1. **Agreement** — the pooled sharded replan must match the
//!    sequential monolithic oracle's total reward (the decomposition is
//!    an accelerator, never an answer-changer).
//! 2. **Deterministic fault drill** — a seeded [`ChaosScript`] over a
//!    few epochs with no deadlines: every counter (zone solves, panics,
//!    retries, degraded zones, recovery epochs, bisection iterations)
//!    is a pure function of the script, so the snapshot is stable
//!    across machines and `thermaware-analyze bench --check` gates it
//!    at ±15% drift against the committed baseline.
//! 3. **Speedup** — ratio of minimum wall times, monolithic over
//!    pooled. Wall time is machine-dependent, so this is *not*
//!    drift-gated; instead it has a machine-relative acceptance floor of
//!    `0.7 × threads_used`, where `threads_used = min(cores, 8)` — i.e.
//!    ≥ 0.7× linear scaling on up to eight cores.
//!
//! ```sh
//! cargo run --release -p thermaware-bench --bin shard_bench  # write results/current/BENCH_shard.json
//! cargo run -p thermaware-analyze -- bench --check           # gate vs committed baselines
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use thermaware_bench::cli::Args;
use thermaware_obs::MemoryRecorder;
use thermaware_shard::chaos::ChaosScript;
use thermaware_shard::fleet::{Fleet, FleetParams};
use thermaware_shard::pool::PoolConfig;
use thermaware_core::ObjectiveWeights;
use thermaware_shard::solver::{solve_monolithic, FleetConfig, FleetSolver};

const USAGE: &str = "shard_bench [--zones N] [--nodes N] [--seed S] [--chaos-epochs N] \
                     [--reps N] [--out PATH]";

/// Machine-relative speedup floor: the pooled solve must reach this
/// fraction of linear scaling over `threads_used` cores. An absolute
/// property, so it stays here; relative drift of the deterministic
/// counters is judged by `thermaware-analyze bench --check`.
const LINEAR_FRACTION: f64 = 0.7;

fn cfg(threads: usize) -> FleetConfig {
    FleetConfig {
        pool: PoolConfig {
            threads,
            deadline: None,
            retries: 1,
            backoff: Duration::from_millis(1),
            hedge_after: None,
        },
        ..FleetConfig::default()
    }
}

fn main() {
    let args = Args::parse(USAGE);
    let n_zones = args.get_usize("zones", 66);
    let nodes_per_zone = args.get_usize("nodes", 152);
    let seed = args.get_u64("seed", 1);
    let chaos_epochs = args.get_usize("chaos-epochs", 3) as u64;
    let reps = args.get_usize("reps", 3).max(1);
    let out_path = args.get_str("out", "results/current/BENCH_shard.json");

    let threads_used = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(8);

    let fleet = Arc::new(
        Fleet::build(&FleetParams::small(n_zones, nodes_per_zone, seed), 50.0)
            .expect("fleet builds"),
    );
    println!(
        "## shard bench — {n_zones} zones x {nodes_per_zone} nodes = {} nodes, \
         seed {seed}, {threads_used} threads",
        fleet.n_nodes()
    );

    // -- Part 1: agreement + speedup (ratio of minimums) -------------------
    let mut mono_best = Duration::MAX;
    let mut mono_reward = 0.0;
    for _ in 0..reps {
        let t0 = Instant::now();
        let mono = solve_monolithic(&fleet, 50.0, &ObjectiveWeights::reward_only())
            .expect("monolithic solve");
        mono_best = mono_best.min(t0.elapsed());
        mono_reward = mono.reward;
    }
    let mut pooled_best = Duration::MAX;
    let mut pooled_reward = 0.0;
    let mut pooled_degraded = usize::MAX;
    let mut bisection_iters = 0u32;
    for _ in 0..reps {
        let mut solver = FleetSolver::new(Arc::clone(&fleet), cfg(threads_used));
        let t0 = Instant::now();
        let plan = solver.replan(None);
        pooled_best = pooled_best.min(t0.elapsed());
        pooled_reward = plan.reward;
        pooled_degraded = plan.degraded;
        bisection_iters = plan.bisection_iters;
    }
    let rel_gap = (pooled_reward - mono_reward).abs() / (1.0 + mono_reward.abs());
    assert!(
        rel_gap <= 1e-9,
        "pooled reward {pooled_reward} disagrees with monolithic {mono_reward}"
    );
    assert_eq!(pooled_degraded, 0, "healthy fleet must not degrade");
    let speedup = mono_best.as_secs_f64() / pooled_best.as_secs_f64().max(1e-9);
    let floor = LINEAR_FRACTION * threads_used as f64;
    println!(
        "speedup: mono {:.3}s vs pooled {:.3}s = {speedup:.2}x \
         (floor {floor:.2}x = {LINEAR_FRACTION} x {threads_used} threads)",
        mono_best.as_secs_f64(),
        pooled_best.as_secs_f64(),
    );

    // -- Part 2: deterministic fault drill ---------------------------------
    // Seeded chaos for `chaos_epochs` epochs, then clean replans until the
    // fleet reconverges. With no deadlines every counter below is a pure
    // function of (seed, script), independent of machine speed.
    let rec = Arc::new(MemoryRecorder::new());
    let (drill_degraded, recovery_epochs) = {
        let _guard = thermaware_obs::install(rec.clone());
        let script = ChaosScript::seeded(seed, chaos_epochs, n_zones, 2, 0.3, 1);
        let mut solver = FleetSolver::new(Arc::clone(&fleet), cfg(threads_used));
        let mut total_degraded = 0usize;
        for _ in 0..chaos_epochs {
            let plan = solver.replan(Some(&script));
            plan.verify(&fleet).expect("invariants under chaos");
            total_degraded += plan.degraded;
        }
        let mut recovery = 0usize;
        loop {
            recovery += 1;
            let plan = solver.replan(None);
            plan.verify(&fleet).expect("invariants during recovery");
            if plan.degraded == 0 {
                break;
            }
            assert!(recovery < 16, "fleet failed to reconverge");
        }
        (total_degraded, recovery)
    };
    let snap = rec.snapshot();
    let counter = |k: &str| snap.counters.get(k).copied().unwrap_or(0);
    println!(
        "drill: {} zone solves, {} panics, {} retries, {} degraded zone-epochs, \
         recovered in {recovery_epochs} epoch(s)",
        counter("shard.zone_solves"),
        counter("shard.zone_panics"),
        counter("shard.zone_retries"),
        drill_degraded,
    );

    // -- Snapshot, bless, or check -----------------------------------------
    let doc = serde_json::json!({
        "experiment": "shard",
        "config": {
            "zones": n_zones,
            "nodes_per_zone": nodes_per_zone,
            "total_nodes": fleet.n_nodes(),
            "seed": seed,
            "chaos_epochs": chaos_epochs,
        },
        // Scale-free and machine-independent: drift-gated at ±15%.
        "deterministic": {
            "zone_solves": counter("shard.zone_solves") as f64,
            "zone_panics": counter("shard.zone_panics") as f64,
            "zone_retries": counter("shard.zone_retries") as f64,
            "degraded_zone_epochs": drill_degraded as f64,
            "recovery_epochs": recovery_epochs as f64,
            "bisection_iters": f64::from(bisection_iters),
            "agreement_rel_gap": rel_gap,
        },
        // Machine-dependent: floor-checked, never drift-gated.
        "speedup": {
            "threads_used": threads_used as f64,
            "mono_s": mono_best.as_secs_f64(),
            "pooled_s": pooled_best.as_secs_f64(),
            "ratio_of_minimums": speedup,
            "linear_floor": floor,
        },
    });

    if speedup < floor {
        eprintln!(
            "FAIL: pooled speedup {speedup:.2}x below the {floor:.2}x floor \
             ({LINEAR_FRACTION} x {threads_used} threads)"
        );
        std::process::exit(1);
    }

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        std::fs::create_dir_all(dir).expect("out dir");
    }
    std::fs::write(&out_path, serde_json::to_string_pretty(&doc).expect("json"))
        .expect("write snapshot");
    println!("snapshot written to {out_path}");
}
