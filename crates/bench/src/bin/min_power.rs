//! The Section-VIII dual problem: minimum total power as a function of a
//! required reward-rate floor (the paper's first future-work item,
//! implemented in `thermaware_core::min_power`).

use thermaware_bench::cli::Args;
use thermaware_core::min_power::{solve_min_power, MinPowerOptions};
use thermaware_core::{solve_three_stage, ThreeStageOptions};
use thermaware_datacenter::ScenarioParams;

const USAGE: &str = "min_power [--nodes N] [--cracs N] [--seed S]";

fn main() {
    let args = Args::parse(USAGE);
    let n_nodes = args.get_usize("nodes", 20);
    let n_crac = args.get_usize("cracs", 1);
    let seed = args.get_u64("seed", 1);

    let params = ScenarioParams {
        n_nodes,
        n_crac,
        ..ScenarioParams::paper(0.2, 0.3)
    };
    let dc = params.build(seed).expect("scenario");
    let full = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("full solve");
    let r_max = full.reward_rate();

    println!("# Minimum total power vs reward-rate floor — {n_nodes} nodes, {n_crac} CRAC(s)\n");
    println!(
        "budgeted operation: reward {:.1} at Pconst {:.1} kW (Pmin {:.1}, Pmax {:.1})\n",
        r_max, dc.budget.p_const_kw, dc.budget.p_min_kw, dc.budget.p_max_kw
    );
    println!(
        "{:<12} {:>12} {:>12} {:>14}",
        "floor_frac", "floor", "power_kW", "achieved_reward"
    );
    for frac in [0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0] {
        let floor = frac * r_max;
        match solve_min_power(&dc, floor, &MinPowerOptions::default()) {
            Ok(sol) => println!(
                "{:<12.2} {:>12.1} {:>12.2} {:>14.1}",
                frac, floor, sol.total_power_kw, sol.reward_rate
            ),
            Err(e) => println!("{frac:<12.2} {floor:>12.1} FAILED: {e}"),
        }
    }
    println!("\n# Power should rise monotonically with the floor and stay below Pconst");
    println!("# until the floor approaches the budgeted optimum.");
}
