//! Adaptive replanning: the paper fixes P-states once assigned
//! (Section V.B.1) but the desired rates `TC` are just an LP — when
//! arrival rates shift, Stage 3 can re-run in milliseconds on the same
//! P-states. This experiment shifts the workload mid-run and compares
//! (a) keeping the stale rates, (b) replanning Stage 3 only, and (c) the
//! full-replan upper reference (new P-states too, which the paper's
//! assumption forbids mid-flight).

use rand::rngs::StdRng;
use rand::SeedableRng;
use thermaware_bench::cli::Args;
use thermaware_bench::stats::mean_ci95;
use thermaware_core::stage3::solve_stage3;
use thermaware_core::{solve_three_stage, ThreeStageOptions};
use thermaware_datacenter::ScenarioParams;
use thermaware_scheduler::simulate;
use thermaware_workload::ArrivalTrace;

const USAGE: &str =
    "adaptive_replan [--runs N] [--nodes N] [--cracs N] [--seed S] [--horizon SECONDS] [--surge F]";

fn main() {
    let args = Args::parse(USAGE);
    let runs = args.get_usize("runs", 5);
    let n_nodes = args.get_usize("nodes", 20);
    let n_crac = args.get_usize("cracs", 1);
    let base_seed = args.get_u64("seed", 1);
    let horizon = args.get_f64("horizon", 20.0);
    // Arrival multiplier for the surging half of the task types in
    // epoch 2 (the other half recedes to keep total load comparable).
    let surge = args.get_f64("surge", 3.0);

    println!(
        "# Adaptive Stage-3 replanning under an arrival shift — {runs} runs x {n_nodes} nodes"
    );
    println!(
        "# epoch 2: even task types x{surge}, odd task types /{surge}; P-states stay fixed\n"
    );
    println!(
        "{:<22} {:>14} {:>10}",
        "strategy (epoch 2)", "reward_rate", "ci95"
    );

    let mut stale = Vec::new();
    let mut replanned = Vec::new();
    let mut full = Vec::new();
    for r in 0..runs {
        let seed = base_seed + r as u64;
        let params = ScenarioParams {
            n_nodes,
            n_crac,
            ..ScenarioParams::paper(0.2, 0.3)
        };
        let dc = params.build(seed).expect("scenario");
        let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("plan");

        // Epoch 2: shifted arrivals.
        let mut shifted = dc.clone();
        for t in &mut shifted.workload.task_types {
            if t.index % 2 == 0 {
                t.arrival_rate *= surge;
            } else {
                t.arrival_rate /= surge;
            }
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let trace = ArrivalTrace::generate(&shifted.workload, horizon, &mut rng);

        // (a) stale rates from epoch 1.
        let sim_stale = simulate(&shifted, &plan.pstates, &plan.stage3, &trace);
        stale.push(sim_stale.reward_rate);

        // (b) Stage-3-only replan on the same P-states.
        let s3_new = solve_stage3(&shifted, &plan.pstates).expect("replan");
        let sim_replan = simulate(&shifted, &plan.pstates, &s3_new, &trace);
        replanned.push(sim_replan.reward_rate);

        // (c) full replan (reference only — violates the fixed-P-state
        // assumption; the thermal transient of the swing is ignored).
        let plan2 = solve_three_stage(&shifted, &ThreeStageOptions::default()).expect("full");
        let sim_full = simulate(&shifted, &plan2.pstates, &plan2.stage3, &trace);
        full.push(sim_full.reward_rate);
    }
    for (name, v) in [
        ("stale epoch-1 rates", &stale),
        ("stage-3 replan", &replanned),
        ("full replan (ref)", &full),
    ] {
        let s = mean_ci95(v);
        println!("{:<22} {:>14.1} {:>10.1}", name, s.mean, s.ci95);
    }
    println!("\n# The Stage-3 replan recovers most of the shift at LP cost (~ms),");
    println!("# without touching P-states or the thermal envelope — the knob the");
    println!("# paper's two-step split leaves available online.");
}
