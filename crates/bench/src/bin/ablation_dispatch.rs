//! Ablation: the paper's ATC/TC dispatch rule versus plan-oblivious
//! policies (earliest-finish, least-loaded) on the same first-step plans
//! and traces. Quantifies what following the Stage-3 rates actually buys
//! at the online layer.

use rand::rngs::StdRng;
use rand::SeedableRng;
use thermaware_bench::cli::Args;
use thermaware_bench::stats::mean_ci95;
use thermaware_core::{solve_three_stage, ThreeStageOptions};
use thermaware_datacenter::ScenarioParams;
use thermaware_scheduler::{simulate_with_policy, DispatchPolicy};
use thermaware_workload::ArrivalTrace;

const USAGE: &str =
    "ablation_dispatch [--runs N] [--nodes N] [--cracs N] [--seed S] [--horizon SECONDS]";

fn main() {
    let args = Args::parse(USAGE);
    let runs = args.get_usize("runs", 5);
    let n_nodes = args.get_usize("nodes", 20);
    let n_crac = args.get_usize("cracs", 1);
    let base_seed = args.get_u64("seed", 1);
    let horizon = args.get_f64("horizon", 30.0);

    let policies = [
        ("ATC/TC (paper)", DispatchPolicy::AtcTc),
        ("ATC/TC windowed 3s", DispatchPolicy::AtcTcWindowed { tau_s: 3.0 }),
        ("earliest finish", DispatchPolicy::EarliestFinish),
        ("least loaded", DispatchPolicy::LeastLoaded),
    ];

    println!(
        "# Dispatch-policy ablation — {runs} runs x {n_nodes} nodes, horizon {horizon}s\n"
    );
    println!(
        "{:<18} {:>14} {:>10} {:>10}",
        "policy", "reward_rate", "ci95", "drop%"
    );

    let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    let mut per_policy_drop: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
    for r in 0..runs {
        let seed = base_seed + r as u64;
        let params = ScenarioParams {
            n_nodes,
            n_crac,
            ..ScenarioParams::paper(0.2, 0.3)
        };
        let dc = params.build(seed).expect("scenario");
        let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("plan");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xAB1A);
        let trace = ArrivalTrace::generate(&dc.workload, horizon, &mut rng);
        for (idx, &(_, policy)) in policies.iter().enumerate() {
            let sim = simulate_with_policy(&dc, &plan.pstates, &plan.stage3, &trace, policy);
            per_policy[idx].push(sim.reward_rate);
            per_policy_drop[idx].push(sim.drop_rate() * 100.0);
        }
    }
    for (idx, &(name, _)) in policies.iter().enumerate() {
        let s = mean_ci95(&per_policy[idx]);
        let d = mean_ci95(&per_policy_drop[idx]);
        println!("{:<18} {:>14.1} {:>10.1} {:>10.2}", name, s.mean, s.ci95, d.mean);
    }
    println!("\n# ATC/TC trades raw throughput for plan conformance: oblivious");
    println!("# policies may collect more reward short-term by overdriving cores");
    println!("# the plan throttled — at the cost of the thermal/power envelope the");
    println!("# plan was built to respect (their load profile no longer matches");
    println!("# the Stage-1 power assignment).");
}
