//! Figure 1 — the hot-aisle/cold-aisle floor plan, rendered as ASCII,
//! with the label distribution of each rack column.

use thermaware_bench::cli::Args;
use thermaware_thermal::Layout;

const USAGE: &str = "layout [--nodes N] [--cracs N]";

fn main() {
    let args = Args::parse(USAGE);
    let n_nodes = args.get_usize("nodes", 150);
    let n_crac = args.get_usize("cracs", 3);
    let layout = Layout::hot_cold_aisle(n_crac, n_nodes);

    println!("# Figure 1 — hot-aisle/cold-aisle layout: {n_nodes} nodes, {n_crac} CRACs\n");
    // CRAC wall.
    print!("   ");
    for c in 0..n_crac {
        print!("[ CRAC{c} ]  ");
    }
    println!("\n");
    // Columns with aisle markings: cold | col col | hot | col col | cold...
    print!("cold ");
    for aisle in 0..n_crac {
        print!("| R{} R{} | hot{} ", 2 * aisle, 2 * aisle + 1, aisle);
    }
    println!("| ... cold\n");

    for col in 0..2 * n_crac {
        let members: Vec<usize> = (0..n_nodes)
            .filter(|&i| layout.nodes[i].rack_col == col)
            .collect();
        let racks = members
            .iter()
            .map(|&i| layout.nodes[i].rack_index)
            .max()
            .map_or(0, |m| m + 1);
        let mut labels: Vec<(char, usize)> = Vec::new();
        for lab in ['A', 'B', 'C', 'D', 'E'] {
            let count = members
                .iter()
                .filter(|&&i| format!("{:?}", layout.nodes[i].label).starts_with(lab))
                .count();
            if count > 0 {
                labels.push((lab, count));
            }
        }
        println!(
            "rack column {col}: {} nodes in {} rack(s), hot aisle {}, labels {:?}",
            members.len(),
            racks,
            col / 2,
            labels
        );
    }
}
