//! Fault-recovery experiment: the runtime supervisor versus a stale plan.
//!
//! A seeded floor runs the paper's three-stage plan; a CRAC unit fails
//! mid-run (optionally followed by a node death and a demand surge).
//! The *supervised* run detects the breach and climbs the degradation
//! ladder (Stage-3 replan, outlet drops, emergency throttling); the
//! *unsupervised* run keeps the stale plan and takes whatever the
//! physics dishes out — nodes trip when their true inlet overshoots the
//! redline by the trip margin, losing their in-flight work for good.
//!
//! Acceptance: the supervised run must end with **zero redline
//! violation** in the recovered steady state and **at least** the stale
//! run's reward rate.

use thermaware_bench::cli::Args;
use thermaware_core::{solve_three_stage, ThreeStageOptions};
use thermaware_datacenter::ScenarioParams;
use thermaware_runtime::{FaultScript, Supervisor, SupervisorConfig, SupervisorReport};

const USAGE: &str = "runtime [--nodes N] [--cracs N] [--seed S] [--margin F] \
                     [--horizon SECONDS] [--surge F] [--verbose 1]";

fn main() {
    let args = Args::parse(USAGE);
    let n_nodes = args.get_usize("nodes", 24);
    let n_crac = args.get_usize("cracs", 2);
    let seed = args.get_u64("seed", 1);
    let margin = args.get_f64("margin", 1.5);
    let horizon = args.get_f64("horizon", 30.0);
    let surge = args.get_f64("surge", 1.5);
    let trip = args.get_f64("trip", 3.0);
    let verbose = args.get_u64("verbose", 0) != 0;

    let params = ScenarioParams {
        n_nodes,
        n_crac,
        crac_flow_margin: margin,
        ..ScenarioParams::paper(0.2, 0.3)
    };
    let dc = params.build(seed).expect("scenario");
    let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("plan");

    // The script: one CRAC fails a third of the way in; demand surges at
    // the halfway mark while the floor is already degraded.
    let script = FaultScript::new()
        .crac_failure(horizon / 3.0, 0)
        .arrival_surge(horizon / 2.0, surge);

    let run = |supervise: bool| -> SupervisorReport {
        let cfg = SupervisorConfig {
            horizon_s: horizon,
            trip_margin_c: trip,
            supervise,
            seed,
            ..SupervisorConfig::default()
        };
        Supervisor::new(&dc, cfg).run(&plan, &script)
    };
    let supervised = run(true);
    let stale = run(false);

    println!(
        "## Runtime supervision — {n_nodes} nodes, {n_crac} CRACs, seed {seed}, \
         flow margin {margin:.2}, horizon {horizon:.0} s"
    );
    println!(
        "plan: reward {:.1}/s, outlets {:?} °C; script: CRAC0 fails at {:.1} s, \
         {surge:.1}x surge at {:.1} s\n",
        plan.reward_rate(),
        plan.crac_out_c(),
        horizon / 3.0,
        horizon / 2.0
    );
    println!(
        "{:<12} {:>14} {:>10} {:>10} {:>10} {:>12} {:>10} {:>8}",
        "mode", "outcome", "reward/s", "drop%", "lost", "violation_C", "power_kW", "replans"
    );
    for (name, r) in [("supervised", &supervised), ("stale-plan", &stale)] {
        let lost: usize = r.sim.per_type.iter().map(|t| t.lost).sum();
        println!(
            "{:<12} {:>14} {:>10.1} {:>10.1} {:>10} {:>12.2} {:>10.1} {:>8}",
            name,
            format!("{:?}", r.outcome),
            r.sim.reward_rate,
            100.0 * r.sim.drop_rate(),
            lost,
            r.final_violation_c,
            r.final_power_kw,
            r.log.replans(),
        );
    }
    println!(
        "\nnodes lost: supervised {} vs stale {} (of {n_nodes}); trips: {} vs {}",
        supervised.nodes_dead,
        stale.nodes_dead,
        supervised.log.trips(),
        stale.log.trips()
    );

    if verbose {
        println!("\n### Supervised event log\n{}", supervised.log);
        println!("### Stale-plan event log\n{}", stale.log);
    }

    let zero_violation = supervised.final_violation_c <= 1e-6;
    let reward_ok = supervised.sim.reward_rate >= stale.sim.reward_rate;
    println!(
        "\nacceptance: recovered steady state safe: {} (violation {:+.2} °C); \
         supervised reward ≥ stale: {} ({:.1} vs {:.1})",
        if zero_violation { "PASS" } else { "FAIL" },
        supervised.final_violation_c,
        if reward_ok { "PASS" } else { "FAIL" },
        supervised.sim.reward_rate,
        stale.sim.reward_rate
    );
}
