//! Table II — EC/RC ranges per node label, and the achieved coefficients
//! of a generated cross-interference instance checked against them.

use rand::rngs::StdRng;
use rand::SeedableRng;
use thermaware_bench::cli::Args;
use thermaware_thermal::{interference, Label, Layout};

const USAGE: &str = "table2 [--nodes N] [--cracs N] [--seed S]";

fn main() {
    let args = Args::parse(USAGE);
    let n_nodes = args.get_usize("nodes", 150);
    let n_crac = args.get_usize("cracs", 3);
    let seed = args.get_u64("seed", 1);

    println!("# Table II — EC and RC ranges per compute-node label\n");
    println!("{:<8} {:>14} {:>14}", "label", "EC range", "RC range");
    for label in Label::ALL {
        let (e0, e1) = label.ec_range();
        let (r0, r1) = label.rc_range();
        println!(
            "{:<8} {:>14} {:>14}",
            format!("{label:?}"),
            format!("{:.0}%-{:.0}%", e0 * 100.0, e1 * 100.0),
            format!("{:.0}%-{:.0}%", r0 * 100.0, r1 * 100.0)
        );
    }

    println!(
        "\n# Achieved coefficients of a generated instance ({n_nodes} nodes, {n_crac} CRACs, seed {seed}):"
    );
    let layout = Layout::hot_cold_aisle(n_crac, n_nodes);
    let flows = interference::uniform_flows(&layout, 0.07, None);
    let mut rng = StdRng::seed_from_u64(seed);
    let ci = interference::generate_ipf(&layout, &flows, &mut rng).expect("generation");
    println!(
        "{:<8} {:>20} {:>20} {:>8}",
        "label", "achieved EC range", "achieved RC range", "nodes"
    );
    for label in Label::ALL {
        let members: Vec<usize> = (0..n_nodes)
            .filter(|&i| layout.nodes[i].label == label)
            .collect();
        if members.is_empty() {
            continue;
        }
        let ecs: Vec<f64> = members.iter().map(|&i| ci.exit_coefficient(i)).collect();
        let rcs: Vec<f64> = members
            .iter()
            .map(|&i| ci.recirculation_coefficient(i, &flows))
            .collect();
        let span = |v: &[f64]| {
            let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            format!("{:6.1}%-{:<6.1}%", lo * 100.0, hi * 100.0)
        };
        println!(
            "{:<8} {:>20} {:>20} {:>8}",
            format!("{label:?}"),
            span(&ecs),
            span(&rcs),
            members.len()
        );
    }
    match ci.validate(&layout, &flows) {
        Ok(()) => println!("\nall Appendix-B constraints satisfied"),
        Err(e) => println!("\nVALIDATION FAILED: {e}"),
    }
}
