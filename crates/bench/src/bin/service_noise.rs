//! Extension experiment: how robust is the two-step pipeline to
//! **service-time uncertainty**? The paper's ETC values are estimates
//! ("user supplied information, experimental data, or task profiling");
//! real executions scatter around them. This sweep runs the dynamic
//! scheduler with lognormal service noise (mean 1, varying CV) and
//! reports reward, drops, and late finishes.

use rand::rngs::StdRng;
use rand::SeedableRng;
use thermaware_bench::cli::Args;
use thermaware_bench::stats::mean_ci95;
use thermaware_core::{solve_three_stage, ThreeStageOptions};
use thermaware_datacenter::ScenarioParams;
use thermaware_scheduler::{simulate_stochastic, DispatchPolicy};
use thermaware_workload::ArrivalTrace;

const USAGE: &str =
    "service_noise [--runs N] [--nodes N] [--cracs N] [--seed S] [--horizon SECONDS]";

fn main() {
    let args = Args::parse(USAGE);
    let runs = args.get_usize("runs", 5);
    let n_nodes = args.get_usize("nodes", 20);
    let n_crac = args.get_usize("cracs", 1);
    let base_seed = args.get_u64("seed", 1);
    let horizon = args.get_f64("horizon", 20.0);

    println!(
        "# Service-time noise robustness — {runs} runs x {n_nodes} nodes, horizon {horizon}s"
    );
    println!("# lognormal factor, mean 1, per-task; admission still plans with 1/ECS\n");
    println!(
        "{:<8} {:>14} {:>8} {:>10} {:>10}",
        "cv", "reward_rate", "ci95", "late%", "drop%"
    );

    for cv in [0.0, 0.1, 0.2, 0.4, 0.8, 1.2] {
        let mut rewards = Vec::new();
        let mut lates = Vec::new();
        let mut drops = Vec::new();
        for r in 0..runs {
            let seed = base_seed + r as u64;
            let params = ScenarioParams {
                n_nodes,
                n_crac,
                ..ScenarioParams::paper(0.2, 0.3)
            };
            let dc = params.build(seed).expect("scenario");
            let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("plan");
            let mut rng = StdRng::seed_from_u64(seed ^ 0x0153);
            let trace = ArrivalTrace::generate(&dc.workload, horizon, &mut rng);
            let sim = simulate_stochastic(
                &dc,
                &plan.pstates,
                &plan.stage3,
                &trace,
                DispatchPolicy::AtcTc,
                cv,
                &mut rng,
            );
            rewards.push(sim.reward_rate);
            let arrived: usize = sim.per_type.iter().map(|t| t.arrived).sum();
            let late: usize = sim.per_type.iter().map(|t| t.late).sum();
            lates.push(100.0 * late as f64 / arrived.max(1) as f64);
            drops.push(100.0 * sim.drop_rate());
        }
        let rr = mean_ci95(&rewards);
        let ll = mean_ci95(&lates);
        let dd = mean_ci95(&drops);
        println!(
            "{:<8.2} {:>14.1} {:>8.1} {:>10.2} {:>10.2}",
            cv, rr.mean, rr.ci95, ll.mean, dd.mean
        );
    }
    println!("\n# Late tasks occupy their core for the full (long) realization and earn");
    println!("# nothing; the admission check contains the damage — reward stays within");
    println!("# a few percent of the noiseless case even at CV 1.2 (the lognormal's");
    println!("# median < mean actually speeds most tasks up).");
}
