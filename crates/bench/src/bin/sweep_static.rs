//! Extension sweep: improvement over the baseline versus the static power
//! share — generalizing Figure 6's first observation (lower static share
//! → deeper P-states have better perf/W → bigger wins for the
//! thermal-aware technique).

use thermaware_bench::cli::Args;
use thermaware_bench::fig6::{run_figure6_set, Fig6Config, SimulationSet};
use thermaware_bench::parallel::default_threads;
use thermaware_datacenter::CracSearchOptions;

const USAGE: &str = "sweep_static [--runs N] [--nodes N] [--cracs N] [--seed S] [--vprop F]";

fn main() {
    let args = Args::parse(USAGE);
    let runs = args.get_usize("runs", 10);
    let config = Fig6Config {
        runs,
        n_nodes: args.get_usize("nodes", 40),
        n_crac: args.get_usize("cracs", 2),
        base_seed: args.get_u64("seed", 1),
        threads: args.get_usize("threads", default_threads(runs)),
        search: CracSearchOptions::default(),
    };
    let v_prop = args.get_f64("vprop", 0.3);

    println!(
        "# %% improvement (best of psi 25/50) vs static power share — {} runs x {} nodes, Vprop {v_prop}\n",
        config.runs, config.n_nodes
    );
    println!("{:<14} {:>12} {:>8}", "static_share", "improvement%", "ci95");
    for share in [0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.50] {
        let set = SimulationSet {
            static_share: share,
            v_prop,
            label: "sweep",
        };
        match run_figure6_set(set, &config) {
            Ok(r) => println!("{:<14.2} {:>12.2} {:>8.2}", share, r.best.mean, r.best.ci95),
            Err(e) => println!("{share:<14.2} FAILED: {e}"),
        }
    }
    println!("\n# Paper observation 1: 20% static share shows a larger improvement than 30%.");
}
