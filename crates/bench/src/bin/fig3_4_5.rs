//! Figures 3, 4, and 5 — the worked RR/ARR example of Section V.B.2.
//!
//! * Fig. 3: `RR_{i,j}` for a 4-P-state core (powers 0.15/0.10/0.05/0 kW,
//!   speeds 1.2/0.9/0.5/0, reward 1) with no deadline pressure.
//! * Fig. 4: the same with `m_i = 1.5`, which makes P-state 2 unable to
//!   meet any deadline — its reward rate collapses to 0.
//! * Fig. 5: the aggregate curve with the "bad" P-state ignored (the
//!   upper concave envelope).
//!
//! Each curve is printed as `power_kW  reward_rate` breakpoint rows plus
//! a dense sample so it can be piped straight into a plotting tool.

use thermaware_core::{reward_rate_curve, ArrCurve, PiecewiseLinear};
use thermaware_power::PStateTable;
use thermaware_workload::{EcsMatrix, TaskType, Workload};

fn example(deadline_slack: f64) -> (Workload, PStateTable) {
    let ecs = EcsMatrix::from_blocks(vec![vec![vec![1.2, 0.9, 0.5, 0.0]]]);
    let workload = Workload {
        task_types: vec![TaskType {
            index: 0,
            arrival_rate: 1.0,
            reward: 1.0,
            deadline_slack,
        }],
        ecs,
    };
    let pstates = PStateTable::new(
        vec![0.15, 0.10, 0.05],
        vec![2500.0, 2000.0, 1500.0],
        vec![1.3, 1.2, 1.1],
    );
    (workload, pstates)
}

fn print_curve(title: &str, curve: &PiecewiseLinear) {
    println!("## {title}");
    println!("{:<12} {:<12}", "power_kW", "reward_rate");
    for &(x, y) in curve.points() {
        println!("{x:<12.4} {y:<12.4}");
    }
    print!("samples:");
    let xmax = curve.x_max();
    for s in 0..=20 {
        let x = xmax * s as f64 / 20.0;
        print!(" {:.3}", curve.eval(x));
    }
    println!("\n");
}

fn main() {
    println!("# Figures 3-5 — reward-rate curves of the Section-V.B.2 example\n");

    let (w3, p3) = example(100.0);
    let fig3 = reward_rate_curve(&w3, &p3, 0, 0);
    print_curve(
        "Figure 3: RR with all P-states deadline-feasible (expect (0,0) (0.05,0.5) (0.10,0.9) (0.15,1.2))",
        &fig3,
    );

    let (w4, p4) = example(1.5);
    let fig4 = reward_rate_curve(&w4, &p4, 0, 0);
    print_curve(
        "Figure 4: RR with m = 1.5 (P-state 2 misses every deadline; expect (0.05, 0))",
        &fig4,
    );

    let arr = ArrCurve::build(&w4, &p4, 0, 100.0);
    print_curve(
        "Figure 5: ARR with the bad P-state ignored (concave envelope; expect (0,0) (0.10,0.9) (0.15,1.2))",
        &arr.curve,
    );
    println!(
        "raw (pre-envelope) aggregate kept {} breakpoints; envelope kept {}",
        arr.raw.points().len(),
        arr.curve.points().len()
    );
}
