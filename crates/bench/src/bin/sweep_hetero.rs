//! Extension sweep: improvement over the baseline versus **node-type
//! heterogeneity** — the paper's Section-VIII list includes "the
//! performance of core types" among the parameters worth exploring. The
//! SPECpower-derived ratio in the paper is 0.6; this sweep moves it from
//! identical node types (1.0) to strongly lopsided floors.

use thermaware_bench::cli::Args;
use thermaware_bench::parallel::{default_threads, parallel_map};
use thermaware_bench::stats::mean_ci95;
use thermaware_core::{solve_baseline, solve_three_stage_best_of};
use thermaware_datacenter::{CracSearchOptions, ScenarioParams};

const USAGE: &str = "sweep_hetero [--runs N] [--nodes N] [--cracs N] [--seed S]";

fn main() {
    let args = Args::parse(USAGE);
    let runs = args.get_usize("runs", 10);
    let n_nodes = args.get_usize("nodes", 40);
    let n_crac = args.get_usize("cracs", 2);
    let base_seed = args.get_u64("seed", 1);

    let ratios = [1.0, 0.8, 0.6, 0.4, 0.25];
    println!(
        "# %% improvement (best of psi 25/50) vs node-type performance ratio —"
    );
    println!("# {runs} runs x {n_nodes} nodes; the paper's SPECpower-derived ratio is 0.6\n");
    println!("{:<10} {:>12} {:>8}", "perf_ratio", "improvement%", "ci95");

    for &ratio in &ratios {
        let imp_results = parallel_map(runs, default_threads(runs), |r| {
            let mut params = ScenarioParams {
                n_nodes,
                n_crac,
                ..ScenarioParams::paper(0.2, 0.3)
            };
            params.workload.ecs.node_type_perf = vec![ratio, 1.0];
            let dc = params.build(base_seed + r as u64).expect("scenario");
            let plan = solve_three_stage_best_of(&dc, &[25.0, 50.0], CracSearchOptions::default())
                .expect("plan");
            let base = solve_baseline(&dc, CracSearchOptions::default()).expect("baseline");
            100.0 * (plan.reward_rate() - base.reward_rate) / base.reward_rate
        });
        let imps: Vec<f64> = imp_results
            .into_iter()
            .map(|r| r.expect("run failed"))
            .collect();
        let s = mean_ci95(&imps);
        println!("{:<10.2} {:>12.2} {:>8.2}", ratio, s.mean, s.ci95);
    }
    println!("\n# Moderate heterogeneity gives the data-center-level assignment");
    println!("# structure to exploit; extreme heterogeneity flattens the comparison");
    println!("# again — the slow type is barely worth powering, so both techniques");
    println!("# park it and the P-state ladder of the fast type dominates.");
}
