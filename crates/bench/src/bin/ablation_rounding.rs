//! Ablation: the paper's Stage-2 rounding (round power *up*, then walk
//! the node back under its Stage-1 budget by deepening the shallowest
//! core) versus a naive round-*down* — how much reward does the careful
//! procedure actually preserve?

use thermaware_bench::cli::Args;
use thermaware_bench::stats::mean_ci95;
use thermaware_core::stage1::{solve_stage1, Stage1Options};
use thermaware_core::stage2::assign_pstates;
use thermaware_core::stage3::solve_stage3;
use thermaware_datacenter::{DataCenter, ScenarioParams};

const USAGE: &str = "ablation_rounding [--runs N] [--nodes N] [--cracs N] [--seed S]";

/// Naive alternative: round every core's power *down* to the nearest
/// P-state (never exceeds budgets, never needs a walk-back, loses power).
fn round_down(dc: &DataCenter, core_power: &[f64]) -> Vec<usize> {
    (0..dc.n_cores())
        .map(|k| {
            let t = &dc.node_type(dc.node_of_core(k)).core.pstates;
            // Deepest state is the floor; find the shallowest state whose
            // power is <= the assignment.
            let mut choice = t.off_index();
            for s in 0..t.n_total() {
                if t.power_kw(s) <= core_power[k] + 1e-12 {
                    choice = s;
                    break;
                }
            }
            choice
        })
        .collect()
}

fn main() {
    let args = Args::parse(USAGE);
    let runs = args.get_usize("runs", 10);
    let n_nodes = args.get_usize("nodes", 40);
    let n_crac = args.get_usize("cracs", 2);
    let base_seed = args.get_u64("seed", 1);

    println!(
        "# Stage-2 rounding ablation — {runs} runs x {n_nodes} nodes x {n_crac} CRACs\n"
    );
    println!("{:<14} {:>14} {:>10}", "rounding", "reward_rate", "ci95");

    let mut paper = Vec::new();
    let mut naive = Vec::new();
    for r in 0..runs {
        let seed = base_seed + r as u64;
        let params = ScenarioParams {
            n_nodes,
            n_crac,
            ..ScenarioParams::paper(0.2, 0.3)
        };
        let dc = params.build(seed).expect("scenario");
        let s1 = solve_stage1(&dc, &Stage1Options::default()).expect("stage 1");

        let ps_paper = assign_pstates(&dc, &s1);
        paper.push(solve_stage3(&dc, &ps_paper).expect("s3").reward_rate);

        let ps_naive = round_down(&dc, &s1.core_power_kw);
        naive.push(solve_stage3(&dc, &ps_naive).expect("s3").reward_rate);
    }
    let a = mean_ci95(&paper);
    let b = mean_ci95(&naive);
    println!("{:<14} {:>14.1} {:>10.1}", "paper (V.B.3)", a.mean, a.ci95);
    println!("{:<14} {:>14.1} {:>10.1}", "round-down", b.mean, b.ci95);
    println!(
        "\n# paper rounding preserves {:+.2}% reward over naive round-down",
        100.0 * (a.mean - b.mean) / b.mean
    );
    println!("# (Stage 1 parks most cores exactly on P-state powers, so the gap is");
    println!("# the value of recovering the at-most-one stray core per node).");
}
