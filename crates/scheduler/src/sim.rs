//! Event-driven simulation of the second step over an arrival trace.

use crate::dispatch::{DispatchDecision, DispatchPolicy, DynamicScheduler, SchedulerState};
use rand::Rng;
use serde::{Deserialize, Serialize};
use thermaware_core::stage3::Stage3Solution;
use thermaware_datacenter::DataCenter;
use thermaware_workload::ArrivalTrace;

/// Per-task-type outcome counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TypeStats {
    /// Tasks that arrived.
    pub arrived: usize,
    /// Tasks completed by their deadline (reward earned).
    pub completed: usize,
    /// Tasks dropped at dispatch.
    pub dropped: usize,
    /// Tasks admitted but finished **after** their deadline (possible
    /// only under service-time noise; they earn nothing).
    pub late: usize,
    /// Tasks in flight on a core when its node died (runtime fault
    /// injection); they earn nothing.
    pub lost: usize,
    /// Reward collected.
    pub reward: f64,
}

/// Outcome of simulating one trace.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// Total reward collected over the horizon.
    pub reward_collected: f64,
    /// Reward per second — directly comparable to the first step's
    /// steady-state reward rate (Eq. 7's objective).
    pub reward_rate: f64,
    /// Horizon simulated, seconds.
    pub horizon_s: f64,
    /// Per-type breakdown.
    pub per_type: Vec<TypeStats>,
    /// Mean utilization of cores with nonzero desired rates.
    pub mean_utilization: f64,
    /// Queueing-latency statistics of admitted tasks (waiting time =
    /// start − arrival).
    pub wait: LatencyStats,
    /// Sojourn-time statistics of admitted tasks (finish − arrival).
    pub response: LatencyStats,
}

/// Latency summary over admitted tasks, seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    /// Mean.
    pub mean: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl LatencyStats {
    fn from_samples(samples: &mut [f64]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_by(f64::total_cmp);
        let n = samples.len();
        LatencyStats {
            mean: samples.iter().sum::<f64>() / n as f64,
            p95: samples[((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1],
            max: samples[n - 1],
        }
    }
}

impl SimulationResult {
    /// Fraction of arrivals dropped.
    pub fn drop_rate(&self) -> f64 {
        let arrived: usize = self.per_type.iter().map(|t| t.arrived).sum();
        let dropped: usize = self.per_type.iter().map(|t| t.dropped).sum();
        if arrived == 0 {
            0.0
        } else {
            dropped as f64 / arrived as f64
        }
    }
}

/// Run the dynamic scheduler over a trace.
///
/// Service times are deterministic (`1/ECS`), so any admitted task
/// finishes exactly when predicted and the admission check makes lateness
/// impossible; reward is therefore credited at admission time of the
/// *completion event* (which the event loop still replays, keeping the
/// machinery honest for extensions with stochastic service times).
pub fn simulate(
    dc: &DataCenter,
    pstates: &[usize],
    stage3: &Stage3Solution,
    trace: &ArrivalTrace,
) -> SimulationResult {
    simulate_with_policy(dc, pstates, stage3, trace, DispatchPolicy::AtcTc)
}

/// [`simulate`] with an explicit dispatch policy — used by the
/// `ablation_dispatch` experiment to compare the paper's rule against
/// plan-oblivious alternatives.
pub fn simulate_with_policy(
    dc: &DataCenter,
    pstates: &[usize],
    stage3: &Stage3Solution,
    trace: &ArrivalTrace,
    policy: DispatchPolicy,
) -> SimulationResult {
    simulate_inner::<rand::rngs::StdRng>(dc, pstates, stage3, trace, policy, None)
}

/// Simulation with **stochastic service times**: each task's realized
/// service is its `1/ECS` estimate times a lognormal factor with mean 1
/// and the given coefficient of variation. The admission check still
/// plans with the estimate, so bursts of slow tasks push backlogs out and
/// make admitted tasks miss deadlines — counted in
/// [`TypeStats::late`], earning nothing.
pub fn simulate_stochastic<R: Rng>(
    dc: &DataCenter,
    pstates: &[usize],
    stage3: &Stage3Solution,
    trace: &ArrivalTrace,
    policy: DispatchPolicy,
    service_cv: f64,
    rng: &mut R,
) -> SimulationResult {
    assert!(service_cv >= 0.0);
    simulate_inner(dc, pstates, stage3, trace, policy, Some((service_cv, rng)))
}

fn simulate_inner<R: Rng>(
    dc: &DataCenter,
    pstates: &[usize],
    stage3: &Stage3Solution,
    trace: &ArrivalTrace,
    policy: DispatchPolicy,
    mut noise: Option<(f64, &mut R)>,
) -> SimulationResult {
    // Lognormal parameters for a mean-1 factor with the requested CV:
    // sigma^2 = ln(1 + cv^2), mu = -sigma^2/2.
    let sigma = noise
        .as_ref()
        .map(|(cv, _)| (1.0 + cv * cv).ln().sqrt())
        .unwrap_or(0.0);
    let _span = thermaware_obs::span("sim");
    let mut sim = EpochSim::with_policy(dc, pstates, stage3, policy);

    for a in &trace.arrivals {
        // Realized service: estimate x lognormal factor (Box-Muller on the
        // sim's RNG; the scheduler never sees the realization at admission
        // time).
        let factor = noise.as_mut().map(|(_, rng)| {
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            // The estimate is per-core, so the factor is drawn here and
            // dispatch applies it to whichever core wins.
            (sigma * z - 0.5 * sigma * sigma).exp()
        });
        let decision = sim.dispatch_with_factor(a.task_type, a.time, a.deadline, factor);
        debug_assert!(
            sigma > 0.0
                || !matches!(decision, DispatchDecision::Assigned { finish, .. }
                    if finish > a.deadline + 1e-9),
            "admitted task missed deadline without service noise"
        );
    }
    sim.finish(trace.horizon_s)
}

/// One admitted task awaiting completion accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Admitted {
    /// Global core index it ran on.
    pub core: usize,
    /// Its task type.
    pub task_type: usize,
    /// Arrival instant, seconds.
    pub arrival: f64,
    /// Execution start (after the core's backlog).
    pub start: f64,
    /// Execution finish.
    pub finish: f64,
    /// Absolute deadline.
    pub deadline: f64,
    /// Its core's node died before it finished: no reward.
    pub lost: bool,
}

/// An **interruptible** simulation: the caller feeds arrivals in time
/// order and may pause between any two to mutate the scheduler — replace
/// the plan ([`EpochSim::replan`]), kill cores ([`EpochSim::kill_cores`])
/// — which is exactly what the runtime supervisor's epoch loop needs.
/// [`simulate`] is a single uninterrupted run of the same machinery.
pub struct EpochSim<'a> {
    dc: &'a DataCenter,
    scheduler: DynamicScheduler,
    per_type: Vec<TypeStats>,
    admitted: Vec<Admitted>,
}

impl<'a> EpochSim<'a> {
    /// Start a simulation from the first step's outputs with the paper's
    /// `AtcTc` policy.
    pub fn new(dc: &'a DataCenter, pstates: &[usize], stage3: &Stage3Solution) -> Self {
        Self::with_policy(dc, pstates, stage3, DispatchPolicy::AtcTc)
    }

    /// Start a simulation with an explicit dispatch policy.
    pub fn with_policy(
        dc: &'a DataCenter,
        pstates: &[usize],
        stage3: &Stage3Solution,
        policy: DispatchPolicy,
    ) -> Self {
        EpochSim {
            dc,
            scheduler: DynamicScheduler::with_policy(dc, pstates, stage3, policy),
            per_type: vec![TypeStats::default(); dc.n_task_types()],
            admitted: Vec::new(),
        }
    }

    /// The live scheduler (e.g. to inspect ATC rates).
    pub fn scheduler(&self) -> &DynamicScheduler {
        &self.scheduler
    }

    /// Dispatch one arrival. Arrivals must be fed in non-decreasing time
    /// order.
    pub fn dispatch(&mut self, task_type: usize, now: f64, deadline: f64) -> DispatchDecision {
        self.dispatch_with_factor(task_type, now, deadline, None)
    }

    /// [`EpochSim::dispatch`] with an optional realized-over-estimated
    /// service factor (stochastic service times).
    pub fn dispatch_with_factor(
        &mut self,
        task_type: usize,
        now: f64,
        deadline: f64,
        factor: Option<f64>,
    ) -> DispatchDecision {
        self.per_type[task_type].arrived += 1;
        thermaware_obs::counter_add("sched.arrived", 1);
        let decision = match factor {
            None => self.scheduler.dispatch(task_type, now, deadline),
            Some(f) => self
                .scheduler
                .dispatch_with_realized_factor(task_type, now, deadline, f),
        };
        match decision {
            DispatchDecision::Dropped => {
                self.per_type[task_type].dropped += 1;
                thermaware_obs::counter_add("sched.dropped", 1);
            }
            DispatchDecision::Assigned { core, start, finish } => {
                if thermaware_obs::enabled() {
                    thermaware_obs::counter_add("sched.admitted", 1);
                    // Queue depth expressed in time: how long the task
                    // waits behind the winning core's backlog.
                    thermaware_obs::observe("sched.wait_s", start - now);
                }
                self.admitted.push(Admitted {
                    core,
                    task_type,
                    arrival: now,
                    start,
                    finish,
                    deadline,
                    lost: false,
                });
            }
        }
        decision
    }

    /// Replace the active plan at time `now` (see
    /// [`DynamicScheduler::apply_plan`]).
    pub fn replan(&mut self, pstates: &[usize], stage3: &Stage3Solution, now: f64) {
        thermaware_obs::counter_add("sched.replans", 1);
        self.scheduler.apply_plan(self.dc, pstates, stage3, now);
    }

    /// Kill cores at time `at`: they stop accepting work, and admitted
    /// tasks still running on them at `at` are lost (no reward).
    pub fn kill_cores(&mut self, cores: &[usize], at: f64) {
        thermaware_obs::counter_add("sched.cores_killed", cores.len() as u64);
        self.scheduler.kill_cores(cores);
        for a in &mut self.admitted {
            if !a.lost && a.finish > at && cores.contains(&a.core) {
                a.lost = true;
            }
        }
    }

    /// Fold tasks that finished at or before `up_to_s` into the
    /// per-type counters and drop them from the in-flight list.
    ///
    /// A batch run never needs this — [`finish`](Self::finish) settles
    /// everything at the horizon — but a long-running daemon must not
    /// let `admitted` grow with total throughput (it is serialized into
    /// every checkpoint, so unbounded growth also makes snapshots
    /// quadratic). Settling uses exactly the accounting `finish`
    /// would apply, so `settle` + `finish` equals plain `finish` for
    /// any cut point; a settled task can no longer be marked lost
    /// (`kill_cores` at `t > up_to_s` only loses tasks finishing after
    /// `t`). Wait/response percentiles in the final summary cover only
    /// unsettled tasks — a daemon measures admission latency at the
    /// protocol layer instead. Returns how many tasks were settled.
    pub fn settle(&mut self, up_to_s: f64) -> usize {
        let before = self.admitted.len();
        let per_type = &mut self.per_type;
        let task_types = &self.dc.workload.task_types;
        self.admitted.retain(|a| {
            if a.finish > up_to_s {
                return true;
            }
            if a.lost {
                per_type[a.task_type].lost += 1;
            } else if a.finish > a.deadline + 1e-9 {
                per_type[a.task_type].late += 1;
            } else {
                per_type[a.task_type].completed += 1;
                per_type[a.task_type].reward += task_types[a.task_type].reward;
            }
            false
        });
        before - self.admitted.len()
    }

    /// Tasks admitted but not yet settled or summarized.
    pub fn in_flight(&self) -> usize {
        self.admitted.len()
    }

    /// Per-type outcome counters accumulated so far (settled tasks
    /// included; in-flight tasks not yet counted).
    pub fn per_type(&self) -> &[TypeStats] {
        &self.per_type
    }

    /// Capture the full simulation state for checkpointing. Everything
    /// except the `DataCenter` reference (restored separately from the
    /// scenario snapshot) round-trips.
    pub fn to_state(&self) -> EpochSimState {
        EpochSimState {
            scheduler: self.scheduler.to_state(),
            per_type: self.per_type.clone(),
            admitted: self.admitted.clone(),
        }
    }

    /// Rebuild a simulation mid-flight from a checkpointed state against
    /// a (restored) data center.
    pub fn from_state(dc: &'a DataCenter, state: EpochSimState) -> EpochSim<'a> {
        EpochSim {
            dc,
            scheduler: DynamicScheduler::from_state(state.scheduler),
            per_type: state.per_type,
            admitted: state.admitted,
        }
    }

    /// Close the books over `[0, horizon_s]` and summarize.
    pub fn finish(self, horizon_s: f64) -> SimulationResult {
        let mut per_type = self.per_type;
        let mut waits: Vec<f64> = Vec::new();
        let mut responses: Vec<f64> = Vec::new();
        for a in &self.admitted {
            if a.lost {
                per_type[a.task_type].lost += 1;
                continue;
            }
            waits.push(a.start - a.arrival);
            responses.push(a.finish - a.arrival);
            if a.finish > a.deadline + 1e-9 {
                // Late: the admission estimate was optimistic. No reward.
                per_type[a.task_type].late += 1;
                continue;
            }
            // Only completions inside the horizon have "happened"; tasks
            // still in flight at the horizon do not earn yet (matches how
            // the steady-state rate is defined).
            if a.finish <= horizon_s {
                per_type[a.task_type].completed += 1;
                per_type[a.task_type].reward += self.dc.workload.task_types[a.task_type].reward;
            }
        }

        let reward_collected: f64 = per_type.iter().map(|t| t.reward).sum();
        if thermaware_obs::enabled() {
            let late: usize = per_type.iter().map(|t| t.late).sum();
            let lost: usize = per_type.iter().map(|t| t.lost).sum();
            thermaware_obs::counter_add("sched.deadline_misses", late as u64);
            thermaware_obs::counter_add("sched.lost", lost as u64);
            thermaware_obs::gauge_set("sched.reward_rate", reward_collected / horizon_s);
        }
        SimulationResult {
            reward_collected,
            reward_rate: reward_collected / horizon_s,
            horizon_s,
            per_type,
            mean_utilization: self.scheduler.mean_active_utilization(horizon_s),
            wait: LatencyStats::from_samples(&mut waits),
            response: LatencyStats::from_samples(&mut responses),
        }
    }
}

/// Serializable mirror of [`EpochSim`] (everything but the `DataCenter`
/// reference): the checkpoint form the runtime's persist layer writes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochSimState {
    /// Dispatch state.
    pub scheduler: SchedulerState,
    /// Per-type outcome counters so far.
    pub per_type: Vec<TypeStats>,
    /// Admitted tasks awaiting completion accounting.
    pub admitted: Vec<Admitted>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use thermaware_core::{solve_three_stage, ThreeStageOptions};
    use thermaware_datacenter::ScenarioParams;

    fn setup(seed: u64) -> (DataCenter, Vec<usize>, Stage3Solution) {
        let dc = ScenarioParams::small_test().build(seed).unwrap();
        let sol = solve_three_stage(&dc, &ThreeStageOptions::default()).unwrap();
        (dc, sol.pstates, sol.stage3)
    }

    #[test]
    fn achieved_rate_tracks_steady_state_prediction() {
        let (dc, pstates, s3) = setup(1);
        let mut rng = StdRng::seed_from_u64(99);
        let trace = ArrivalTrace::generate(&dc.workload, 20.0, &mut rng);
        let result = simulate(&dc, &pstates, &s3, &trace);
        // The dynamic scheduler caps ATC at TC, so it cannot beat the
        // steady-state rate by more than stochastic noise; and with
        // admission-checked FIFO it should capture most of it.
        assert!(
            result.reward_rate <= s3.reward_rate * 1.10,
            "sim {} vs predicted {}",
            result.reward_rate,
            s3.reward_rate
        );
        assert!(
            result.reward_rate >= s3.reward_rate * 0.5,
            "sim {} far below predicted {}",
            result.reward_rate,
            s3.reward_rate
        );
    }

    #[test]
    fn oversubscription_causes_drops() {
        let (dc, pstates, s3) = setup(2);
        let mut rng = StdRng::seed_from_u64(7);
        let trace = ArrivalTrace::generate(&dc.workload, 10.0, &mut rng);
        let result = simulate(&dc, &pstates, &s3, &trace);
        // Arrival rates were sized for all-P0 capacity; the power budget
        // pushed cores deeper, so some tasks must be refused.
        assert!(result.drop_rate() > 0.0, "no drops in an oversubscribed DC");
        assert!(result.drop_rate() < 1.0);
    }

    #[test]
    fn all_off_drops_everything() {
        let dc = ScenarioParams::small_test().build(3).unwrap();
        let off: Vec<usize> = (0..dc.n_cores())
            .map(|k| dc.node_type(dc.node_of_core(k)).core.pstates.off_index())
            .collect();
        let s3 = thermaware_core::stage3::solve_stage3(&dc, &off).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let trace = ArrivalTrace::generate(&dc.workload, 2.0, &mut rng);
        let result = simulate(&dc, &off, &s3, &trace);
        assert_eq!(result.reward_collected, 0.0);
        assert!((result.drop_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_is_sane() {
        let (dc, pstates, s3) = setup(4);
        let mut rng = StdRng::seed_from_u64(11);
        let trace = ArrivalTrace::generate(&dc.workload, 10.0, &mut rng);
        let result = simulate(&dc, &pstates, &s3, &trace);
        assert!(result.mean_utilization > 0.0);
        assert!(result.mean_utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn per_type_counts_are_consistent() {
        let (dc, pstates, s3) = setup(5);
        let mut rng = StdRng::seed_from_u64(13);
        let trace = ArrivalTrace::generate(&dc.workload, 5.0, &mut rng);
        let result = simulate(&dc, &pstates, &s3, &trace);
        let arrived: usize = result.per_type.iter().map(|t| t.arrived).sum();
        assert_eq!(arrived, trace.arrivals.len());
        for t in &result.per_type {
            // completed + dropped <= arrived (in-flight tasks at the
            // horizon are neither).
            assert!(t.completed + t.dropped <= t.arrived);
        }
    }

    #[test]
    fn latency_stats_are_ordered_and_deadline_bounded() {
        let (dc, pstates, s3) = setup(7);
        let mut rng = StdRng::seed_from_u64(31);
        let trace = ArrivalTrace::generate(&dc.workload, 10.0, &mut rng);
        let r = simulate(&dc, &pstates, &s3, &trace);
        assert!(r.wait.mean >= 0.0);
        assert!(r.wait.mean <= r.wait.p95 + 1e-12);
        assert!(r.wait.p95 <= r.wait.max + 1e-12);
        // Response = wait + service > wait.
        assert!(r.response.mean > r.wait.mean);
        // Every admitted task met its deadline, so the response never
        // exceeds the largest slack in the workload.
        let max_slack = dc
            .workload
            .task_types
            .iter()
            .map(|t| t.deadline_slack)
            .fold(0.0_f64, f64::max);
        assert!(r.response.max <= max_slack + 1e-9);
    }

    #[test]
    fn epoch_sim_state_round_trips_mid_flight() {
        let (dc, pstates, s3) = setup(8);
        let mut rng = StdRng::seed_from_u64(17);
        let trace = ArrivalTrace::generate(&dc.workload, 6.0, &mut rng);
        let split = trace.arrivals.len() / 2;

        let mut sim = EpochSim::new(&dc, &pstates, &s3);
        for a in &trace.arrivals[..split] {
            sim.dispatch(a.task_type, a.time, a.deadline);
        }

        // Freeze, serialize through JSON, thaw.
        let state = sim.to_state();
        let json = serde_json::to_string(&state).expect("serialize");
        let back: EpochSimState = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, state);
        let mut resumed = EpochSim::from_state(&dc, back);

        // Both halves must finish bit-identically.
        for a in &trace.arrivals[split..] {
            sim.dispatch(a.task_type, a.time, a.deadline);
            resumed.dispatch(a.task_type, a.time, a.deadline);
        }
        let a = sim.finish(trace.horizon_s);
        let b = resumed.finish(trace.horizon_s);
        assert_eq!(a.reward_collected, b.reward_collected);
        assert_eq!(a.per_type, b.per_type);
        assert_eq!(a.mean_utilization, b.mean_utilization);
    }

    #[test]
    fn settle_matches_unsettled_accounting() {
        let (dc, pstates, s3) = setup(9);
        let mut rng = StdRng::seed_from_u64(23);
        let trace = ArrivalTrace::generate(&dc.workload, 8.0, &mut rng);

        let mut plain = EpochSim::new(&dc, &pstates, &s3);
        let mut settled = EpochSim::new(&dc, &pstates, &s3);
        for a in &trace.arrivals {
            plain.dispatch(a.task_type, a.time, a.deadline);
            settled.dispatch(a.task_type, a.time, a.deadline);
            // Aggressively settle after every arrival — the daemon does
            // this per epoch; per arrival is the worst case.
            settled.settle(a.time);
        }
        assert!(
            settled.in_flight() < plain.in_flight(),
            "settling must shrink the in-flight list"
        );
        let a = plain.finish(trace.horizon_s);
        let b = settled.finish(trace.horizon_s);
        assert_eq!(a.reward_collected, b.reward_collected);
        assert_eq!(a.per_type, b.per_type);
        assert_eq!(a.mean_utilization, b.mean_utilization);
    }

    #[test]
    fn deterministic_given_same_trace() {
        let (dc, pstates, s3) = setup(6);
        let mut rng = StdRng::seed_from_u64(21);
        let trace = ArrivalTrace::generate(&dc.workload, 5.0, &mut rng);
        let a = simulate(&dc, &pstates, &s3, &trace);
        let b = simulate(&dc, &pstates, &s3, &trace);
        assert_eq!(a.reward_collected, b.reward_collected);
        assert_eq!(a.per_type, b.per_type);
    }
}
