//! The second-step **dynamic scheduler** and its discrete-event
//! simulation (paper Section V.C).
//!
//! The first step hands down desired execution rates `TC(i, k)`; the
//! dynamic scheduler sees individual task arrivals and keeps the *actual*
//! rates `ATC(i, k)` tracking the desired ones: each arriving task of
//! type `i` goes to the core with the smallest `ATC(i,k)/TC(i,k)` among
//! cores that (a) have a nonzero desired rate for the type, (b) are not
//! already at or past their desired rate (`ratio <= 1`), and (c) can
//! finish the task before its deadline given their current backlog. If no
//! such core exists the task is **dropped** — in an oversubscribed data
//! center dropping is a decision, not a failure.
//!
//! The simulator is event-driven: arrivals come from a pre-sampled
//! Poisson [`thermaware_workload::ArrivalTrace`]; completions are exact
//! (service times are deterministic `1/ECS`), so a task admitted under
//! check (c) always earns its reward.

mod dispatch;
mod sim;

pub use dispatch::{DispatchDecision, DispatchPolicy, DynamicScheduler, SchedulerState};
pub use sim::{
    simulate, simulate_stochastic, simulate_with_policy, Admitted, EpochSim, EpochSimState,
    LatencyStats, SimulationResult, TypeStats,
};
