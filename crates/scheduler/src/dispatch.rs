//! Dispatch rules: the paper's `ATC/TC` rule (Section V.C) plus two
//! plan-oblivious comparison policies used by the `ablation_dispatch`
//! experiment.

use serde::{Deserialize, Serialize, Value};
use thermaware_core::stage3::Stage3Solution;
use thermaware_datacenter::DataCenter;

/// How arriving tasks are mapped to cores.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DispatchPolicy {
    /// The paper's rule: minimum `ATC/TC` ratio among cores the plan gave
    /// a desired rate, skipping cores already at/over their rate.
    #[default]
    AtcTc,
    /// Plan-oblivious: the deadline-feasible core that finishes the task
    /// earliest (classic EDF-ish greedy). Ignores the Stage-3 rates.
    EarliestFinish,
    /// Plan-oblivious: the deadline-feasible core with the shortest
    /// backlog (classic load balancing).
    LeastLoaded,
    /// The ATC/TC rule with an exponentially-decayed **windowed** rate
    /// estimate instead of the paper's cumulative `count/now`. The
    /// cumulative estimate never forgets: an early burst starves a core
    /// for the rest of time, and after a workload shift the ratio keeps
    /// averaging over the stale epoch. The window tracks the *recent*
    /// rate with time constant `tau` (seconds).
    AtcTcWindowed {
        /// Decay time constant of the rate estimator, seconds.
        tau_s: f64,
    },
}

// Hand-written serde: `AtcTcWindowed` carries a payload, which the
// vendored derive cannot express. Fieldless variants print as plain
// strings; the windowed rule prints as `{"kind": ..., "tau_s": ...}`.
impl Serialize for DispatchPolicy {
    fn to_value(&self) -> Value {
        match self {
            DispatchPolicy::AtcTc => Value::String("atc_tc".to_string()),
            DispatchPolicy::EarliestFinish => Value::String("earliest_finish".to_string()),
            DispatchPolicy::LeastLoaded => Value::String("least_loaded".to_string()),
            DispatchPolicy::AtcTcWindowed { tau_s } => Value::Object(vec![
                ("kind".to_string(), "atc_tc_windowed".to_value()),
                ("tau_s".to_string(), tau_s.to_value()),
            ]),
        }
    }
}

impl Deserialize for DispatchPolicy {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        if let Some(s) = v.as_str() {
            return match s {
                "atc_tc" => Ok(DispatchPolicy::AtcTc),
                "earliest_finish" => Ok(DispatchPolicy::EarliestFinish),
                "least_loaded" => Ok(DispatchPolicy::LeastLoaded),
                other => Err(serde::Error::custom(format!(
                    "DispatchPolicy: unknown variant '{other}'"
                ))),
            };
        }
        let entries = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("DispatchPolicy: expected string or object"))?;
        let kind: String = serde::field(entries, "kind")?;
        match kind.as_str() {
            "atc_tc_windowed" => Ok(DispatchPolicy::AtcTcWindowed {
                tau_s: serde::field(entries, "tau_s")?,
            }),
            other => Err(serde::Error::custom(format!(
                "DispatchPolicy: unknown kind '{other}'"
            ))),
        }
    }
}

/// Where one task went.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DispatchDecision {
    /// Assigned to a core; payload is `(core, start_time, finish_time)`.
    Assigned {
        /// Global core index.
        core: usize,
        /// When execution starts (after the core's backlog).
        start: f64,
        /// When execution finishes (deterministic `1/ECS` service).
        finish: f64,
    },
    /// Dropped: no eligible core could finish it by its deadline.
    Dropped,
}

/// Mutable dispatch state: per-core backlog and per-(type, core) counts.
#[derive(Debug, Clone)]
pub struct DynamicScheduler {
    /// The active policy.
    policy: DispatchPolicy,
    /// Desired rates (per core) from Stage 3.
    tc: Vec<Vec<f64>>,
    /// Cores with a nonzero desired rate, per task type — the only cores
    /// the AtcTc rule ever considers.
    candidates: Vec<Vec<usize>>,
    /// Cores that can run each type at all (finite service time) — the
    /// candidate set of the plan-oblivious policies.
    runnable: Vec<Vec<usize>>,
    /// Tasks of each type assigned to each core: `count[i][core]`.
    count: Vec<Vec<u64>>,
    /// Exponentially-decayed rate estimate per (type, core) and its last
    /// update instant — only maintained under `AtcTcWindowed`.
    ewma_rate: Vec<Vec<(f64, f64)>>,
    /// Time each core becomes free.
    busy_until: Vec<f64>,
    /// Service time of each task type on each core (`1/ECS` at the
    /// assigned P-state); `INFINITY` where the type cannot run.
    service: Vec<Vec<f64>>,
    /// Accumulated busy time per core (for utilization reporting).
    busy_time: Vec<f64>,
    /// Liveness mask: dead cores (failed nodes) are never dispatched to.
    alive: Vec<bool>,
    /// When the current plan took effect — the ATC/TC rate clock starts
    /// here, so a mid-flight replan is judged against *its own* desired
    /// rates rather than an average over the superseded plan.
    plan_start: f64,
}

impl DynamicScheduler {
    /// Set up dispatch state from the first step's outputs, using the
    /// paper's `AtcTc` policy.
    pub fn new(dc: &DataCenter, pstates: &[usize], stage3: &Stage3Solution) -> Self {
        Self::with_policy(dc, pstates, stage3, DispatchPolicy::AtcTc)
    }

    /// Set up dispatch state with an explicit policy.
    pub fn with_policy(
        dc: &DataCenter,
        pstates: &[usize],
        stage3: &Stage3Solution,
        policy: DispatchPolicy,
    ) -> Self {
        let t = dc.n_task_types();
        let n = dc.n_cores();
        let (tc, candidates, runnable, service) = plan_tables(dc, pstates, stage3);
        DynamicScheduler {
            policy,
            tc,
            candidates,
            runnable,
            count: vec![vec![0; n]; t],
            ewma_rate: vec![vec![(0.0, 0.0); n]; t],
            busy_until: vec![0.0; n],
            service,
            busy_time: vec![0.0; n],
            alive: vec![true; n],
            plan_start: 0.0,
        }
    }

    /// Replace the plan mid-flight (a supervisor replan): new P-states
    /// and Stage-3 rates at time `now`. Backlogs (`busy_until`, busy
    /// time) survive — in-flight work is unaffected — but the per-(type,
    /// core) rate clocks restart so admission tracks the new plan.
    pub fn apply_plan(
        &mut self,
        dc: &DataCenter,
        pstates: &[usize],
        stage3: &Stage3Solution,
        now: f64,
    ) {
        let t = dc.n_task_types();
        let n = dc.n_cores();
        let (tc, candidates, runnable, service) = plan_tables(dc, pstates, stage3);
        self.tc = tc;
        self.candidates = candidates;
        self.runnable = runnable;
        self.service = service;
        self.count = vec![vec![0; n]; t];
        self.ewma_rate = vec![vec![(0.0, now); n]; t];
        self.plan_start = now;
    }

    /// Mark cores as dead: they are never dispatched to again. In-flight
    /// accounting (tasks lost with the node) is the caller's job — see
    /// `crate::sim::EpochSim::kill_cores`.
    pub fn kill_cores(&mut self, cores: &[usize]) {
        for &k in cores {
            self.alive[k] = false;
        }
    }

    /// Replace the whole core-liveness mask.
    pub fn set_core_mask(&mut self, alive: &[bool]) {
        assert_eq!(alive.len(), self.alive.len());
        self.alive.copy_from_slice(alive);
    }

    /// Is core `k` still dispatchable?
    pub fn core_alive(&self, core: usize) -> bool {
        self.alive[core]
    }

    /// Mean outstanding backlog across live cores at `now`, seconds —
    /// how far a freshly admitted task would typically wait behind
    /// queued work. The service daemon turns this into its
    /// reject-with-retry-after hint under overload.
    pub fn backlog_s(&self, now: f64) -> f64 {
        let mut sum = 0.0;
        let mut alive = 0usize;
        for (k, &up) in self.busy_until.iter().enumerate() {
            if self.alive[k] {
                sum += (up - now).max(0.0);
                alive += 1;
            }
        }
        if alive == 0 {
            0.0
        } else {
            sum / alive as f64
        }
    }

    /// Dispatch one task of type `task_type` arriving at `now` with the
    /// given absolute `deadline`.
    pub fn dispatch(&mut self, task_type: usize, now: f64, deadline: f64) -> DispatchDecision {
        self.dispatch_with_service(task_type, now, deadline, None)
    }

    /// Dispatch applying a multiplicative factor to the chosen core's
    /// service estimate — the stochastic-simulation entry point (the
    /// factor is the realized-over-estimated service ratio).
    pub fn dispatch_with_realized_factor(
        &mut self,
        task_type: usize,
        now: f64,
        deadline: f64,
        factor: f64,
    ) -> DispatchDecision {
        // Selection must happen with the estimate only; the realized
        // duration applies to whichever core wins. A two-phase call would
        // race against our own mutation, so resolve the winner first via
        // the shared pickers, then commit with the stretched service.
        let best = match self.policy {
            DispatchPolicy::AtcTc => self.pick_atc_tc(task_type, now, deadline),
            DispatchPolicy::AtcTcWindowed { tau_s } => {
                self.pick_atc_tc_windowed(task_type, now, deadline, tau_s)
            }
            DispatchPolicy::EarliestFinish => {
                self.pick_by_key(task_type, now, deadline, |_busy, finish| finish)
            }
            DispatchPolicy::LeastLoaded => {
                self.pick_by_key(task_type, now, deadline, |busy, _finish| busy)
            }
        };
        match best {
            None => DispatchDecision::Dropped,
            Some(k) => self.commit(task_type, now, k, self.service[task_type][k] * factor),
        }
    }

    /// Like [`DynamicScheduler::dispatch`], with an optionally *realized*
    /// service time that may differ from the `1/ECS` estimate the
    /// admission check plans with. The scheduler admits on the estimate
    /// (it cannot see the future), but the core is busy for the realized
    /// duration — so under service-time noise an admitted task can finish
    /// late, exactly like a real floor.
    pub fn dispatch_with_service(
        &mut self,
        task_type: usize,
        now: f64,
        deadline: f64,
        realized_service: Option<f64>,
    ) -> DispatchDecision {
        let best = match self.policy {
            DispatchPolicy::AtcTc => self.pick_atc_tc(task_type, now, deadline),
            DispatchPolicy::AtcTcWindowed { tau_s } => {
                self.pick_atc_tc_windowed(task_type, now, deadline, tau_s)
            }
            DispatchPolicy::EarliestFinish => {
                self.pick_by_key(task_type, now, deadline, |_busy, finish| finish)
            }
            DispatchPolicy::LeastLoaded => {
                self.pick_by_key(task_type, now, deadline, |busy, _finish| busy)
            }
        };
        match best {
            None => DispatchDecision::Dropped,
            Some(k) => {
                let service = realized_service.unwrap_or(self.service[task_type][k]);
                self.commit(task_type, now, k, service)
            }
        }
    }

    /// Record an assignment of one `task_type` task to core `k` with the
    /// given service duration.
    fn commit(&mut self, task_type: usize, now: f64, k: usize, service: f64) -> DispatchDecision {
        let start = self.busy_until[k].max(now);
        let finish = start + service;
        self.busy_until[k] = finish;
        self.busy_time[k] += service;
        self.count[task_type][k] += 1;
        if let DispatchPolicy::AtcTcWindowed { tau_s } = self.policy {
            // Decay the estimate to `now`, then add this assignment's
            // impulse (1 task smeared over tau).
            let (rate, last) = self.ewma_rate[task_type][k];
            let decayed = rate * (-(now - last) / tau_s).exp();
            self.ewma_rate[task_type][k] = (decayed + 1.0 / tau_s, now);
        }
        DispatchDecision::Assigned {
            core: k,
            start,
            finish,
        }
    }

    /// The paper's rule: minimum `ATC/TC` ratio, skipping cores at or
    /// over their desired rate or unable to meet the deadline.
    fn pick_atc_tc(&self, task_type: usize, now: f64, deadline: f64) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        let elapsed = now - self.plan_start;
        for &k in &self.candidates[task_type] {
            if !self.alive[k] {
                continue;
            }
            // Rule (b): actual-to-desired ratio must not exceed 1. The
            // actual rate is the assignment count over time on this plan.
            let ratio = if elapsed > 0.0 {
                self.count[task_type][k] as f64 / (elapsed * self.tc[task_type][k])
            } else if self.count[task_type][k] == 0 {
                0.0
            } else {
                f64::INFINITY
            };
            if ratio > 1.0 {
                continue;
            }
            // Rule (c): finish by the deadline through the backlog.
            let start = self.busy_until[k].max(now);
            let finish = start + self.service[task_type][k];
            if finish > deadline {
                continue;
            }
            if best.is_none_or(|(_, r)| ratio < r) {
                best = Some((k, ratio));
            }
        }
        best.map(|(k, _)| k)
    }

    /// Windowed ATC/TC: same admission rules as the paper's, with the
    /// exponentially-decayed recent rate in place of the cumulative one.
    fn pick_atc_tc_windowed(
        &self,
        task_type: usize,
        now: f64,
        deadline: f64,
        tau_s: f64,
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for &k in &self.candidates[task_type] {
            if !self.alive[k] {
                continue;
            }
            let (rate, last) = self.ewma_rate[task_type][k];
            let atc = rate * (-(now - last) / tau_s).exp();
            let ratio = atc / self.tc[task_type][k];
            if ratio > 1.0 {
                continue;
            }
            let start = self.busy_until[k].max(now);
            let finish = start + self.service[task_type][k];
            if finish > deadline {
                continue;
            }
            if best.is_none_or(|(_, r)| ratio < r) {
                best = Some((k, ratio));
            }
        }
        best.map(|(k, _)| k)
    }

    /// Plan-oblivious policies: smallest key among deadline-feasible
    /// runnable cores; `key(busy_until, finish)` selects the criterion.
    fn pick_by_key(
        &self,
        task_type: usize,
        now: f64,
        deadline: f64,
        key: impl Fn(f64, f64) -> f64,
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for &k in &self.runnable[task_type] {
            if !self.alive[k] {
                continue;
            }
            let start = self.busy_until[k].max(now);
            let finish = start + self.service[task_type][k];
            if finish > deadline {
                continue;
            }
            let score = key(self.busy_until[k], finish);
            if best.is_none_or(|(_, s)| score < s) {
                best = Some((k, score));
            }
        }
        best.map(|(k, _)| k)
    }

    /// Actual execution rate `ATC(i, k)` observed under the current plan.
    pub fn atc(&self, task_type: usize, core: usize, now: f64) -> f64 {
        let elapsed = now - self.plan_start;
        if elapsed > 0.0 {
            self.count[task_type][core] as f64 / elapsed
        } else {
            0.0
        }
    }

    /// Desired rate `TC(i, k)`.
    pub fn tc(&self, task_type: usize, core: usize) -> f64 {
        self.tc[task_type][core]
    }

    /// Mean utilization of the cores able to run anything, over
    /// `[0, horizon]`.
    pub fn mean_active_utilization(&self, horizon: f64) -> f64 {
        // "Active" = can run anything at all (active P-state), so the
        // metric is comparable across policies including plan-oblivious
        // ones that ignore the Stage-3 rates.
        let active: Vec<usize> = (0..self.busy_until.len())
            .filter(|&k| (0..self.service.len()).any(|i| self.service[i][k].is_finite()))
            .collect();
        if active.is_empty() || horizon <= 0.0 {
            return 0.0;
        }
        // Work admitted near the horizon runs past it; clamp each core's
        // busy time to the horizon so utilization stays in [0, 1].
        active
            .iter()
            .map(|&k| self.busy_time[k].min(horizon))
            .sum::<f64>()
            / (active.len() as f64 * horizon)
    }
}

/// Serializable mirror of [`DynamicScheduler`] — the checkpoint form the
/// runtime's persist layer writes. Service times use `Option<f64>` with
/// `None` standing for "cannot run" because JSON has no `INFINITY`; every
/// other field round-trips bit-exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerState {
    /// The active policy.
    pub policy: DispatchPolicy,
    /// Desired rates (per core) from Stage 3.
    pub tc: Vec<Vec<f64>>,
    /// AtcTc candidate cores per task type.
    pub candidates: Vec<Vec<usize>>,
    /// Cores able to run each type at all.
    pub runnable: Vec<Vec<usize>>,
    /// Tasks of each type assigned to each core.
    pub count: Vec<Vec<u64>>,
    /// Windowed-rate estimates `(rate, last_update)` per (type, core).
    pub ewma_rate: Vec<Vec<(f64, f64)>>,
    /// Time each core becomes free.
    pub busy_until: Vec<f64>,
    /// Service time per (type, core); `None` where the type cannot run
    /// (`INFINITY` in the live scheduler).
    pub service: Vec<Vec<Option<f64>>>,
    /// Accumulated busy time per core.
    pub busy_time: Vec<f64>,
    /// Core liveness mask.
    pub alive: Vec<bool>,
    /// When the current plan took effect.
    pub plan_start: f64,
}

impl DynamicScheduler {
    /// Capture the full dispatch state for checkpointing.
    pub fn to_state(&self) -> SchedulerState {
        SchedulerState {
            policy: self.policy,
            tc: self.tc.clone(),
            candidates: self.candidates.clone(),
            runnable: self.runnable.clone(),
            count: self.count.clone(),
            ewma_rate: self.ewma_rate.clone(),
            busy_until: self.busy_until.clone(),
            service: self
                .service
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|&s| if s.is_finite() { Some(s) } else { None })
                        .collect()
                })
                .collect(),
            busy_time: self.busy_time.clone(),
            alive: self.alive.clone(),
            plan_start: self.plan_start,
        }
    }

    /// Rebuild a scheduler from a checkpointed state (inverse of
    /// [`DynamicScheduler::to_state`]).
    pub fn from_state(state: SchedulerState) -> DynamicScheduler {
        DynamicScheduler {
            policy: state.policy,
            tc: state.tc,
            candidates: state.candidates,
            runnable: state.runnable,
            count: state.count,
            ewma_rate: state.ewma_rate,
            busy_until: state.busy_until,
            service: state
                .service
                .into_iter()
                .map(|row| {
                    row.into_iter()
                        .map(|s| s.unwrap_or(f64::INFINITY))
                        .collect()
                })
                .collect(),
            busy_time: state.busy_time,
            alive: state.alive,
            plan_start: state.plan_start,
        }
    }
}

/// The per-plan lookup tables: desired rates, candidate/runnable sets,
/// and service times (shared by construction and mid-flight replans).
#[allow(clippy::type_complexity)]
fn plan_tables(
    dc: &DataCenter,
    pstates: &[usize],
    stage3: &Stage3Solution,
) -> (Vec<Vec<f64>>, Vec<Vec<usize>>, Vec<Vec<usize>>, Vec<Vec<f64>>) {
    let t = dc.n_task_types();
    let n = dc.n_cores();
    let mut tc = vec![vec![0.0; n]; t];
    let mut candidates = vec![Vec::new(); t];
    let mut runnable = vec![Vec::new(); t];
    let mut service = vec![vec![f64::INFINITY; n]; t];
    for i in 0..t {
        for k in 0..n {
            let rate = stage3.tc(i, k);
            let etc = dc.workload.ecs.etc(i, dc.core_type(k), pstates[k]);
            service[i][k] = etc;
            if etc.is_finite() {
                runnable[i].push(k);
            }
            if rate > 0.0 && etc.is_finite() {
                tc[i][k] = rate;
                candidates[i].push(k);
            }
        }
    }
    (tc, candidates, runnable, service)
}
