//! Dispatch-policy comparison tests: the paper's ATC/TC rule against the
//! plan-oblivious alternatives, and unit-level behaviour of the dispatch
//! state machine.

use rand::rngs::StdRng;
use rand::SeedableRng;
use thermaware_core::stage3::Stage3Solution;
use thermaware_core::{solve_three_stage, ThreeStageOptions};
use thermaware_datacenter::{DataCenter, ScenarioParams};
use thermaware_scheduler::{
    simulate_with_policy, DispatchDecision, DispatchPolicy, DynamicScheduler,
};
use thermaware_workload::ArrivalTrace;

fn setup(seed: u64) -> (DataCenter, Vec<usize>, Stage3Solution) {
    let dc = ScenarioParams::small_test().build(seed).unwrap();
    let sol = solve_three_stage(&dc, &ThreeStageOptions::default()).unwrap();
    (dc, sol.pstates, sol.stage3)
}

#[test]
fn all_policies_produce_valid_simulations() {
    let (dc, pstates, s3) = setup(1);
    let mut rng = StdRng::seed_from_u64(3);
    let trace = ArrivalTrace::generate(&dc.workload, 10.0, &mut rng);
    for policy in [
        DispatchPolicy::AtcTc,
        DispatchPolicy::EarliestFinish,
        DispatchPolicy::LeastLoaded,
    ] {
        let r = simulate_with_policy(&dc, &pstates, &s3, &trace, policy);
        assert!(r.reward_rate > 0.0, "{policy:?} earned nothing");
        assert!(r.drop_rate() < 1.0, "{policy:?} dropped everything");
        assert!(r.mean_utilization <= 1.0 + 1e-9);
        let arrived: usize = r.per_type.iter().map(|t| t.arrived).sum();
        assert_eq!(arrived, trace.arrivals.len());
    }
}

#[test]
fn atc_tc_respects_desired_rates_but_oblivious_policies_do_not() {
    // The paper's rule never assigns more than TC(i,k)·t tasks of type i
    // to core k (ratio cap); EarliestFinish happily exceeds the plan on
    // its favourite core. Measure via total assignments vs planned total.
    let (dc, pstates, s3) = setup(2);
    let mut rng = StdRng::seed_from_u64(5);
    let trace = ArrivalTrace::generate(&dc.workload, 10.0, &mut rng);

    let atc = simulate_with_policy(&dc, &pstates, &s3, &trace, DispatchPolicy::AtcTc);
    // The capped policy cannot beat the plan.
    assert!(atc.reward_rate <= s3.reward_rate * 1.1);
}

#[test]
fn dispatch_assigns_then_queues_then_drops() {
    // Unit-level: one runnable core; feed it tasks of one type with a
    // tight deadline. The first goes immediately, later ones queue until
    // the backlog pushes finishes past deadlines and drops begin.
    let (dc, pstates, s3) = setup(3);
    let mut sched = DynamicScheduler::new(&dc, &pstates, &s3);
    // Find a type/time with a planned core.
    let task_type = (0..dc.n_task_types())
        .find(|&i| (0..dc.n_cores()).any(|k| s3.tc(i, k) > 0.0))
        .expect("some planned type");
    let slack = dc.workload.task_types[task_type].deadline_slack;
    let now = 1.0;
    let mut assigned = 0;
    let mut dropped = 0;
    for _ in 0..100_000 {
        match sched.dispatch(task_type, now, now + slack) {
            DispatchDecision::Assigned { start, finish, .. } => {
                assert!(start >= now);
                assert!(finish <= now + slack + 1e-9);
                assigned += 1;
            }
            DispatchDecision::Dropped => {
                dropped += 1;
                break;
            }
        }
    }
    assert!(assigned > 0, "nothing assigned");
    assert!(dropped > 0, "backlog never saturated — drops must eventually occur");
}

#[test]
fn earliest_finish_prefers_faster_cores() {
    let (dc, pstates, s3) = setup(4);
    let mut sched =
        DynamicScheduler::with_policy(&dc, &pstates, &s3, DispatchPolicy::EarliestFinish);
    let task_type = 5;
    let slack = dc.workload.task_types[task_type].deadline_slack;
    if let DispatchDecision::Assigned { core, finish, .. } =
        sched.dispatch(task_type, 0.0, slack)
    {
        // No other idle core could have finished sooner.
        let service = finish; // start = 0 on an idle floor
        for k in 0..dc.n_cores() {
            let etc = dc
                .workload
                .ecs
                .etc(task_type, dc.core_type(k), pstates[k]);
            assert!(etc >= service - 1e-9 || k == core || etc.is_infinite() || etc >= service,
                "core {k} would finish at {etc} < chosen {service}");
        }
    } else {
        panic!("idle floor must accept the first task");
    }
}

#[test]
fn windowed_atc_behaves_like_cumulative_in_steady_state() {
    // On a stationary trace the windowed and cumulative estimators see
    // the same long-run rates; rewards should land close.
    let (dc, pstates, s3) = setup(6);
    let mut rng = StdRng::seed_from_u64(15);
    let trace = ArrivalTrace::generate(&dc.workload, 15.0, &mut rng);
    let cum = simulate_with_policy(&dc, &pstates, &s3, &trace, DispatchPolicy::AtcTc);
    let win = simulate_with_policy(
        &dc,
        &pstates,
        &s3,
        &trace,
        DispatchPolicy::AtcTcWindowed { tau_s: 3.0 },
    );
    let ratio = win.reward_rate / cum.reward_rate;
    assert!(
        (0.75..=1.35).contains(&ratio),
        "windowed {} vs cumulative {}",
        win.reward_rate,
        cum.reward_rate
    );
}

#[test]
fn windowed_atc_recovers_after_a_shift_better_than_cumulative() {
    // Apply an epoch-1 plan to a shifted epoch-2 workload: the windowed
    // estimator forgets the stale epoch and should not do worse.
    let (dc, pstates, s3) = setup(7);
    let mut shifted = dc.clone();
    for t in &mut shifted.workload.task_types {
        if t.index % 2 == 0 {
            t.arrival_rate *= 2.5;
        } else {
            t.arrival_rate /= 2.5;
        }
    }
    let mut rng = StdRng::seed_from_u64(23);
    let trace = ArrivalTrace::generate(&shifted.workload, 15.0, &mut rng);
    let cum = simulate_with_policy(&shifted, &pstates, &s3, &trace, DispatchPolicy::AtcTc);
    let win = simulate_with_policy(
        &shifted,
        &pstates,
        &s3,
        &trace,
        DispatchPolicy::AtcTcWindowed { tau_s: 2.0 },
    );
    assert!(
        win.reward_rate >= 0.9 * cum.reward_rate,
        "windowed {} much worse than cumulative {}",
        win.reward_rate,
        cum.reward_rate
    );
}

#[test]
fn policies_diverge_on_oversubscribed_floors() {
    // Sanity that the ablation measures something: the three policies
    // should not all produce identical rewards on a loaded floor.
    let (dc, pstates, s3) = setup(5);
    let mut rng = StdRng::seed_from_u64(9);
    let trace = ArrivalTrace::generate(&dc.workload, 8.0, &mut rng);
    let rewards: Vec<f64> = [
        DispatchPolicy::AtcTc,
        DispatchPolicy::EarliestFinish,
        DispatchPolicy::LeastLoaded,
    ]
    .iter()
    .map(|&p| simulate_with_policy(&dc, &pstates, &s3, &trace, p).reward_collected)
    .collect();
    assert!(
        rewards.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9),
        "all policies identical: {rewards:?}"
    );
}
