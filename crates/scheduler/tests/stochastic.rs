//! Stochastic-service simulation tests: with noisy service times the
//! admission check becomes optimistic, late finishes appear, and reward
//! degrades gracefully with the noise level.

use rand::rngs::StdRng;
use rand::SeedableRng;
use thermaware_core::{solve_three_stage, ThreeStageOptions};
use thermaware_datacenter::ScenarioParams;
use thermaware_scheduler::{simulate, simulate_stochastic, DispatchPolicy};
use thermaware_workload::ArrivalTrace;

fn setup(seed: u64) -> (
    thermaware_datacenter::DataCenter,
    Vec<usize>,
    thermaware_core::stage3::Stage3Solution,
    ArrivalTrace,
) {
    let dc = ScenarioParams::small_test().build(seed).unwrap();
    let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
    let trace = ArrivalTrace::generate(&dc.workload, 10.0, &mut rng);
    (dc, plan.pstates, plan.stage3, trace)
}

#[test]
fn zero_noise_matches_deterministic() {
    let (dc, pstates, s3, trace) = setup(1);
    let det = simulate(&dc, &pstates, &s3, &trace);
    let mut rng = StdRng::seed_from_u64(5);
    let sto = simulate_stochastic(
        &dc,
        &pstates,
        &s3,
        &trace,
        DispatchPolicy::AtcTc,
        0.0,
        &mut rng,
    );
    assert_eq!(det.reward_collected, sto.reward_collected);
    let late: usize = sto.per_type.iter().map(|t| t.late).sum();
    assert_eq!(late, 0);
}

#[test]
fn noise_produces_late_tasks() {
    let (dc, pstates, s3, trace) = setup(2);
    let mut rng = StdRng::seed_from_u64(7);
    let sto = simulate_stochastic(
        &dc,
        &pstates,
        &s3,
        &trace,
        DispatchPolicy::AtcTc,
        0.5,
        &mut rng,
    );
    let late: usize = sto.per_type.iter().map(|t| t.late).sum();
    assert!(late > 0, "CV 0.5 produced no late tasks");
    // Counters stay consistent: completed + dropped + late <= arrived.
    for t in &sto.per_type {
        assert!(t.completed + t.dropped + t.late <= t.arrived);
    }
}

#[test]
fn noise_shifts_outcomes_but_stays_bounded() {
    // A mean-1 lognormal factor has median e^{-sigma^2/2} < 1: most tasks
    // actually run *faster*, and the admission check truncates the slow
    // tail into `late` counts — so total reward can drift slightly either
    // way. What must hold: late work grows with the noise, and the reward
    // never swings wildly (the admission control contains the variance).
    let (dc, pstates, s3, trace) = setup(3);
    let mut rewards = Vec::new();
    let mut lates = Vec::new();
    for cv in [0.0, 0.3, 0.8] {
        let mut rng = StdRng::seed_from_u64(11);
        let r = simulate_stochastic(
            &dc,
            &pstates,
            &s3,
            &trace,
            DispatchPolicy::AtcTc,
            cv,
            &mut rng,
        );
        lates.push(r.per_type.iter().map(|t| t.late).sum::<usize>());
        rewards.push(r.reward_collected);
    }
    assert_eq!(lates[0], 0);
    assert!(lates[2] > lates[1], "late work must grow with noise: {lates:?}");
    let swing = (rewards[2] - rewards[0]).abs() / rewards[0];
    assert!(swing < 0.15, "reward swung {swing:.2} under noise: {rewards:?}");
}

#[test]
fn stochastic_is_deterministic_under_seed() {
    let (dc, pstates, s3, trace) = setup(4);
    let run = |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        simulate_stochastic(
            &dc,
            &pstates,
            &s3,
            &trace,
            DispatchPolicy::AtcTc,
            0.4,
            &mut rng,
        )
        .reward_collected
    };
    assert_eq!(run(9), run(9));
    // Different noise seeds generally differ.
    assert!(run(9) != run(10) || run(9) == 0.0);
}
