//! The **runtime supervisor** riding out a mid-run CRAC failure: the
//! same plan and the same fault script are run twice, once supervised
//! (staged degradation ladder: replan, outlet drops, thermal-aware
//! throttling, shedding) and once with the stale plan, and the typed
//! event log of the supervised run is printed.
//!
//! ```sh
//! cargo run --release --example fault_recovery
//! ```

use thermaware::prelude::*;

fn main() {
    let params = ScenarioParams {
        n_nodes: 20,
        n_crac: 2,
        crac_flow_margin: 1.5,
        ..ScenarioParams::paper(0.2, 0.3)
    };
    let dc = params.build(7).expect("scenario");
    let plan = Solver::new(&dc).solve().expect("first step");
    println!("plan: steady-state reward rate {:.1}/s", plan.reward_rate());

    // CRAC 0 dies at 10 s; a node dies at 15 s; demand surges 1.3x at 20 s.
    let script = FaultScript::new()
        .crac_failure(10.0, 0)
        .node_death(15.0, 3)
        .arrival_surge(20.0, 1.3);

    for supervise in [true, false] {
        let cfg = SupervisorConfig {
            horizon_s: 30.0,
            supervise,
            seed: 7,
            ..SupervisorConfig::default()
        };
        let report = Supervisor::new(&dc, cfg).run(&plan, &script);
        println!(
            "\n{}: {:?} — reward {:.1}/s, {} nodes dead, final violation {:+.2} °C",
            if supervise { "supervised" } else { "stale-plan" },
            report.outcome,
            report.sim.reward_rate,
            report.nodes_dead,
            report.final_violation_c
        );
        if supervise {
            println!("{}", report.log);
        }
    }
}
