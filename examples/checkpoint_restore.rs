//! **Durable checkpoint/restore**: a supervised run is journaled and
//! snapshotted to disk, "crashes" partway through the horizon, and is
//! recovered — torn journal tails truncated, CRCs verified, physical
//! invariants re-checked — then finishes bit-for-bit identically to a
//! run that was never interrupted.
//!
//! ```sh
//! cargo run --release --example checkpoint_restore
//! ```

use thermaware::prelude::*;
use thermaware::runtime::persist::run_checkpointed_until;

fn main() {
    let params = ScenarioParams {
        n_nodes: 20,
        n_crac: 2,
        crac_flow_margin: 1.5,
        ..ScenarioParams::paper(0.2, 0.3)
    };
    let dc = params.build(7).expect("scenario");
    let plan = Solver::new(&dc).solve().expect("first step");

    // The same eventful script as the fault_recovery example.
    let script = FaultScript::new()
        .crac_failure(10.0, 0)
        .node_death(15.0, 3)
        .arrival_surge(20.0, 1.3);
    let cfg = SupervisorConfig {
        horizon_s: 30.0,
        seed: 7,
        ..SupervisorConfig::default()
    };

    // The reference: one uninterrupted run, no persistence.
    let baseline = Supervisor::new(&dc, cfg).run(&plan, &script);
    println!(
        "uninterrupted: {:?}, reward {:.1}/s, {} events",
        baseline.outcome,
        baseline.sim.reward_rate,
        baseline.log.events().len()
    );

    // The same run under write-ahead journaling, killed after epoch 17
    // (right after the CRAC failure hit and the ladder responded).
    let dir = std::env::temp_dir().join("thermaware-checkpoint-restore");
    let _ = std::fs::remove_dir_all(&dir);
    let ckpt = CheckpointConfig {
        snapshot_interval: 8,
        ..CheckpointConfig::new(&dir)
    };
    let stopped =
        run_checkpointed_until(&dc, cfg, &plan, &script, &ckpt, 17).expect("checkpointed run");
    assert!(stopped.is_none(), "killed mid-horizon");
    println!("\n\"crash\" after epoch 17; checkpoint dir: {}", dir.display());

    // Recovery: newest valid snapshot + deterministic journal replay.
    let rec = resume(&dir).expect("resume");
    println!(
        "recovered: snapshot at epoch {}, {} journal epochs replayed, resumes at {} \
         (feasible: {}, redline {:+.2} °C, headroom {:+.1} kW)",
        rec.info.snapshot_epoch,
        rec.info.replayed_epochs,
        rec.info.resume_epoch,
        rec.info.feasible,
        rec.info.worst_redline_violation_c,
        rec.info.power_headroom_kw
    );

    let report = rec.finish().expect("finish recovered run");
    println!(
        "resumed run:   {:?}, reward {:.1}/s, {} events",
        report.outcome,
        report.sim.reward_rate,
        report.log.events().len()
    );

    assert_eq!(report.outcome, baseline.outcome);
    assert_eq!(report.sim.reward_collected, baseline.sim.reward_collected);
    assert_eq!(report.log, baseline.log);
    println!("\nresumed run is bit-identical to the uninterrupted run ✓");
    let _ = std::fs::remove_dir_all(&dir);
}
