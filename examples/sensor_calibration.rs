//! Sensor-driven model identification: probe a running floor, estimate
//! the heat-flow matrix from the readings (paper Section IV: "the values
//! in matrix A can be estimated using sensor measurements"), rebuild the
//! thermal model from the estimate, and check the rebuilt model plans as
//! well as the ground truth.
//!
//! ```sh
//! cargo run --release --example sensor_calibration
//! ```

use thermaware::prelude::*;
use thermaware::thermal::calibration::{estimate_a_matrix, probe};

fn main() {
    let params = ScenarioParams {
        n_nodes: 20,
        n_crac: 1,
        ..ScenarioParams::paper(0.2, 0.3)
    };
    let dc = params.build(5).expect("scenario");
    let truth = dc.thermal.a_matrix();

    for noise_c in [0.0, 0.02, 0.1, 0.3] {
        // Probe the floor at 80 operating points with this sensor noise.
        let observations = probe(&dc.thermal, 80, 0.7, noise_c);
        let a_hat = estimate_a_matrix(&observations).expect("estimation");
        let err = a_hat.sub(truth).unwrap().max_abs();

        // How far off would *predictions* be at a realistic load?
        let powers = vec![0.55; dc.n_nodes()];
        let state = dc.thermal.steady_state(&[16.0], &powers);
        let predicted: Vec<f64> = a_hat.mat_vec(&state.t_out);
        let worst_pred: f64 = predicted
            .iter()
            .zip(&state.t_in)
            .map(|(p, t)| (p - t).abs())
            .fold(0.0, f64::max);

        println!(
            "sensor noise ±{noise_c:>4.2} °C: max |Â − A| = {err:.5}, worst inlet prediction error {worst_pred:.3} °C"
        );
    }

    // The plan built on the true model, for reference.
    let plan = Solver::new(&dc).solve().expect("plan");
    println!(
        "\nground-truth plan: reward {:.1} at CRAC outlets {:?} °C",
        plan.reward_rate(),
        plan.crac_out_c()
    );
    println!("a deployment would feed the estimated  into ThermalModel::new and re-plan;");
    println!("sub-0.1 °C prediction error is far inside the 1 °C outlet granularity the");
    println!("CRAC search works at, so calibrated planning matches blueprint planning.");

    // Show the structure of A briefly: CRAC column dominance of row 0.
    let n = truth.rows();
    let row0: Vec<f64> = (0..n.min(6)).map(|j| truth[(0, j)]).collect();
    println!("\nfirst row of A (CRAC inlet mixing weights, first 6 of {n}): {row0:.3?}");
}
