//! Quickstart: build a data center, run the paper's three-stage
//! thermal-aware assignment, compare it with the baseline, and verify the
//! result against the exact power/thermal models.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use thermaware::prelude::*;

fn main() {
    // A 20-node, 1-CRAC floor from the paper's third simulation set
    // (static power share 20%, Vprop 0.3 — where thermal-aware P-state
    // assignment shines the most).
    let params = ScenarioParams {
        n_nodes: 20,
        n_crac: 1,
        ..ScenarioParams::paper(0.2, 0.3)
    };
    let dc = params.build(42).expect("scenario generation");

    println!(
        "data center: {} nodes / {} cores / {} CRAC unit(s), {} task types",
        dc.n_nodes(),
        dc.n_cores(),
        dc.n_crac(),
        dc.n_task_types()
    );
    println!(
        "power budget: Pmin {:.1} kW, Pmax {:.1} kW -> Pconst {:.1} kW (Eq. 18)",
        dc.budget.p_min_kw, dc.budget.p_max_kw, dc.budget.p_const_kw
    );

    // The paper's technique: Stage 1 (continuous power + CRAC outlets),
    // Stage 2 (P-state rounding), Stage 3 (execution-rate LP).
    let plan = Solver::new(&dc).psi(50.0).solve().expect("three-stage");
    println!("\nthree-stage assignment (psi = 50):");
    println!("  CRAC outlets: {:?} °C", plan.crac_out_c());
    println!("  reward rate:  {:.1}", plan.reward_rate());
    let mut by_state = std::collections::BTreeMap::new();
    for &p in &plan.pstates {
        *by_state.entry(p).or_insert(0usize) += 1;
    }
    println!("  P-state histogram (4 = off): {by_state:?}");

    // Independent verification against the exact (clamped, nonlinear)
    // models — never trust the solver's own linearization.
    let report = verify_assignment(&dc, plan.crac_out_c(), &plan.pstates, Some(&plan.stage3));
    println!(
        "  verified: feasible = {}, power headroom {:.2} kW, worst inlet margin {:.2} °C",
        report.is_feasible(),
        report.power_headroom_kw,
        -report.worst_redline_violation_c
    );

    // The baseline the paper compares against: P-state 0 or off.
    let base = Solver::new(&dc).baseline().expect("baseline");
    println!("\nEq.-21 baseline (P0 or off): reward rate {:.1}", base.reward_rate);
    println!(
        "\nimprovement: {:+.2}%",
        100.0 * (plan.reward_rate() - base.reward_rate) / base.reward_rate
    );
}
