//! Capacity planning with the thermal model: power bounds (Eq. 17),
//! budget headroom, what the CRAC outlet temperature costs, and the
//! Section-VIII dual question — how little power can a reward target be
//! met with?
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use thermaware::core::min_power::{solve_min_power, MinPowerOptions};
use thermaware::prelude::*;
use thermaware::thermal::cop::cop;

fn main() {
    let params = ScenarioParams {
        n_nodes: 20,
        n_crac: 1,
        ..ScenarioParams::paper(0.2, 0.3)
    };
    let dc = params.build(3).expect("scenario");

    println!("== power envelope (Eq. 17) ==");
    println!(
        "all cores off : {:>8.1} kW total at CRAC outlets {:?} °C",
        dc.budget.p_min_kw, dc.budget.min_outlets_c
    );
    println!(
        "all cores P0  : {:>8.1} kW total at CRAC outlets {:?} °C",
        dc.budget.p_max_kw, dc.budget.max_outlets_c
    );
    println!("budget Pconst : {:>8.1} kW (Eq. 18)", dc.budget.p_const_kw);

    // What outlet temperature buys: cooling cost of 100 kW of heat.
    println!("\n== cost of cooling 100 kW of heat vs outlet temperature (Eq. 8) ==");
    for t in [10.0, 15.0, 20.0, 25.0] {
        println!("  outlet {:>4.1} °C -> CoP {:.2} -> {:.1} kW of CRAC power", t, cop(t), 100.0 / cop(t));
    }

    // The budgeted optimum, then the dual sweep.
    let plan = Solver::new(&dc).solve().expect("plan");
    println!(
        "\n== budgeted operation: reward {:.1} within {:.1} kW ==",
        plan.reward_rate(),
        dc.budget.p_const_kw
    );

    println!("\n== minimum power to sustain a reward floor (Section VIII) ==");
    for frac in [0.25, 0.5, 0.75, 1.0] {
        let floor = frac * plan.reward_rate();
        match solve_min_power(&dc, floor, &MinPowerOptions::default()) {
            Ok(sol) => println!(
                "  {:>3.0}% of budgeted reward ({:>7.1}) -> {:>7.1} kW at outlets {:?} °C",
                frac * 100.0,
                floor,
                sol.total_power_kw,
                sol.crac_out_c
            ),
            Err(e) => println!("  {:>3.0}%: {e}", frac * 100.0),
        }
    }
}
