//! Thermal what-if analysis: watch the data center's temperature field
//! respond to a P-state reassignment, transiently and at steady state —
//! the timescale-separation argument behind the paper's two-step design
//! (Section V.A), made visible.
//!
//! ```sh
//! cargo run --release --example thermal_what_if
//! ```

use thermaware::prelude::*;
use thermaware::thermal::transient::TransientSim;

fn main() {
    let params = ScenarioParams {
        n_nodes: 20,
        n_crac: 1,
        ..ScenarioParams::paper(0.3, 0.1)
    };
    let dc = params.build(11).expect("scenario");
    let plan = Solver::new(&dc).solve().expect("plan");
    let outlets = plan.crac_out_c().to_vec();

    // Idle floor: every core off.
    let idle_powers = dc.min_node_powers();
    let idle = dc.thermal.steady_state(&outlets, &idle_powers);
    // The plan's floor.
    let plan_powers = dc.node_powers_from_pstates(&plan.pstates);
    let target = dc.thermal.steady_state(&outlets, &plan_powers);

    println!(
        "CRAC outlets {:?} °C; node inlet redline {} °C",
        outlets, dc.thermal.node_redline_c
    );
    println!(
        "idle floor:   hottest node inlet {:.2} °C, hottest CRAC inlet {:.2} °C",
        idle.max_node_inlet(),
        idle.max_crac_inlet()
    );
    println!(
        "planned load: hottest node inlet {:.2} °C, hottest CRAC inlet {:.2} °C",
        target.max_node_inlet(),
        target.max_crac_inlet()
    );

    // Transient: apply the plan to an idle floor and watch the approach.
    println!("\nswitching the idle floor to the planned P-states at t = 0:");
    println!("{:>8} {:>18} {:>22}", "t_s", "hottest_inlet_C", "fraction_of_swing");
    let mut sim = TransientSim::from_steady_state(&dc.thermal, &idle);
    let swing = target.max_node_inlet() - idle.max_node_inlet();
    let mut t = 0.0;
    for step in [1.0, 4.0, 15.0, 40.0, 60.0, 120.0, 240.0, 480.0] {
        let s = sim.advance(&dc.thermal, &outlets, &plan_powers, step);
        t += step;
        let frac = (s.max_node_inlet() - idle.max_node_inlet()) / swing;
        println!("{t:>8.0} {:>18.2} {:>22.2}", s.max_node_inlet(), frac);
    }
    println!(
        "\ntask execution times are ~{:.2}s; the thermal swing takes minutes —",
        1.0 / dc.workload.ecs.max_speed(dc.n_task_types() - 1)
    );
    println!("the separation that justifies planning power/thermal state (step 1)");
    println!("independently of per-task dispatch (step 2).");
}
