//! **Scheduling as a service**: the deterministic service engine
//! admits bursty batches epoch by epoch, journals every input, rides
//! out a solver outage on the circuit breaker, "crashes", and resumes
//! bit-identically — the in-process version of what `thermaware-serve`
//! and `thermaware-loadgen` do over a Unix socket.
//!
//! ```sh
//! cargo run --release --example scheduling_service
//! ```

use thermaware::prelude::*;
use thermaware::service::proto::Batch;
use thermaware::service::store::{state_json_crc, StoreConfig};

fn main() {
    let dc = ScenarioParams::small_test().build(11).expect("scenario");
    let plan = Solver::new(&dc).solve().expect("plan");
    let mut engine = ServiceEngine::new(
        dc,
        ServiceConfig::default(),
        &plan.pstates,
        &plan.stage3,
    );

    let dir = std::env::temp_dir().join("thermaware-scheduling-service");
    let _ = std::fs::remove_dir_all(&dir);
    let mut store =
        ServiceStore::create(StoreConfig::new(&dir), &engine).expect("store");

    // Twelve epochs of bursty demand. Epochs 2–4 simulate a solver
    // outage: the daemon would journal Failed verdicts, the breaker
    // opens on the third and sheds the lowest-reward type. The
    // cooldown runs out by epoch 7 (half-open), and the epoch-8 probe
    // succeeds, closing the breaker and restoring the shed type.
    println!("epoch  batches  admitted  shed  breaker    note");
    for epoch in 0..12u64 {
        // Four batches covering all eight task types, so the type the
        // breaker sheds is among the offered work.
        let batches: Vec<Batch> = (0..4)
            .map(|k| Batch {
                id: epoch * 10 + k,
                tasks: vec![(2 * k as usize, 8), (2 * k as usize + 1, 8)],
            })
            .collect();
        let verdict = match epoch {
            2..=4 => ReplanVerdict::Failed { error: "lp outage".into() },
            8 => ReplanVerdict::Ok { stage3: engine.state().stage3.clone() },
            _ => ReplanVerdict::NotAttempted,
        };

        // The daemon's discipline: fsync the Begin (inputs + verdict)
        // BEFORE acking, step deterministically, then the Commit.
        let e = engine.state().epoch;
        store.append_begin(e, &batches, &verdict).expect("begin");
        let report = engine.step(&batches, &verdict);
        let (_, crc) = state_json_crc(engine.state()).expect("crc");
        store.append_commit(e, crc).expect("commit");
        if store.snapshot_due(engine.state().epoch) {
            store.snapshot(&engine).expect("snapshot");
        }

        let s = engine.state();
        println!(
            "{:>5}  {:>7}  {:>8}  {:>4}  {:<9}  {}",
            epoch,
            report.batches.len(),
            s.totals.admitted_tasks,
            s.shed.len(),
            s.breaker.state.as_str(),
            if report.breaker_opened {
                "breaker opened — lowest-reward type shed"
            } else if report.breaker_closed {
                "probe succeeded — all types restored"
            } else if report.replanned {
                "replanned"
            } else {
                ""
            },
        );
    }

    // "SIGKILL": drop the store mid-flight and recover from disk. The
    // journal replays the exact same inputs and verdicts, so the
    // resumed engine is byte-for-byte the one that died.
    drop(store);
    let (resumed, info) = resume_service(&dir).expect("resume");
    println!(
        "\nresumed from snapshot at epoch {} + {} journal epoch(s) replayed",
        info.snapshot_epoch, info.replayed_epochs
    );
    let live = serde_json::to_string(engine.state()).expect("live json");
    let back = serde_json::to_string(resumed.state()).expect("resumed json");
    assert_eq!(live, back, "resume must be bit-identical");
    println!(
        "bit-identical resume: PASS ({} admitted tasks, {} shed, reward forgone {:.1})",
        resumed.state().totals.admitted_tasks,
        resumed.state().totals.shed_tasks,
        resumed.state().totals.shed_reward,
    );
}
