//! The full two-step pipeline of the paper's Figure 2: a first-step
//! steady-state plan feeding the second-step **dynamic scheduler**, which
//! dispatches individual Poisson task arrivals and drops what cannot meet
//! its deadline.
//!
//! ```sh
//! cargo run --release --example online_scheduling
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use thermaware::prelude::*;

fn main() {
    let params = ScenarioParams {
        n_nodes: 20,
        n_crac: 1,
        ..ScenarioParams::paper(0.2, 0.3)
    };
    let dc = params.build(7).expect("scenario");

    // First step: P-states, CRAC outlets, desired rates TC(i, k).
    let plan = Solver::new(&dc).solve().expect("first step");
    println!(
        "first step planned a steady-state reward rate of {:.1}",
        plan.reward_rate()
    );

    // Second step: replay 60 seconds of Poisson arrivals through the
    // ATC/TC dispatcher.
    let mut rng = StdRng::seed_from_u64(1234);
    let trace = ArrivalTrace::generate(&dc.workload, 60.0, &mut rng);
    println!("trace: {} arrivals over {}s", trace.arrivals.len(), trace.horizon_s);

    let result = simulate(&dc, &plan.pstates, &plan.stage3, &trace);
    println!(
        "\nachieved reward rate {:.1} ({:.1}% of plan), drop rate {:.2}%, mean utilization {:.1}%",
        result.reward_rate,
        100.0 * result.reward_rate / plan.reward_rate(),
        100.0 * result.drop_rate(),
        100.0 * result.mean_utilization
    );

    println!("\nper task type (reward r_i descends with index; drops concentrate");
    println!("where the planner assigned little capacity):");
    println!(
        "{:<6} {:>9} {:>10} {:>8} {:>10}",
        "type", "arrived", "completed", "dropped", "reward"
    );
    for (i, t) in result.per_type.iter().enumerate() {
        println!(
            "{:<6} {:>9} {:>10} {:>8} {:>10.1}",
            i, t.arrived, t.completed, t.dropped, t.reward
        );
    }
}
