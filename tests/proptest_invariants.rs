//! Property-based workspace invariants: whatever scenario the generator
//! produces, the solvers' outputs must verify against the exact models.

use proptest::prelude::*;
use thermaware::core::{
    solve_baseline, solve_three_stage, verify_assignment, ThreeStageOptions,
};
use thermaware::datacenter::{CracSearchOptions, ScenarioParams};

proptest! {
    // Each case builds a scenario and runs two LP-based solvers; keep the
    // count modest so the suite stays fast in debug builds.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn three_stage_output_always_verifies(
        seed in 0u64..10_000,
        n_nodes in 6usize..16,
        share in prop::sample::select(vec![0.2, 0.3]),
        v_prop in prop::sample::select(vec![0.1, 0.3]),
    ) {
        let params = ScenarioParams {
            n_nodes,
            n_crac: 1,
            ..ScenarioParams::paper(share, v_prop)
        };
        let dc = params.build(seed).expect("scenario generation");
        let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("solve");
        let report = verify_assignment(&dc, plan.crac_out_c(), &plan.pstates, Some(&plan.stage3));
        prop_assert!(report.is_feasible(), "{report:?}");
        prop_assert!(plan.reward_rate() > 0.0);
        prop_assert!(plan.reward_rate() <= dc.workload.max_reward_rate() * (1.0 + 1e-9));
    }

    #[test]
    fn baseline_output_always_verifies(
        seed in 0u64..10_000,
        n_nodes in 6usize..16,
    ) {
        let params = ScenarioParams {
            n_nodes,
            n_crac: 1,
            ..ScenarioParams::paper(0.3, 0.1)
        };
        let dc = params.build(seed).expect("scenario generation");
        let base = solve_baseline(&dc, CracSearchOptions::default()).expect("solve");
        let node_powers = thermaware::core::baseline::baseline_node_powers(&dc, &base.frac);
        let (it, cooling, state) = dc.total_power_kw(&base.crac_out_c, &node_powers);
        prop_assert!(it + cooling <= dc.budget.p_const_kw * (1.0 + 1e-6) + 1e-6);
        prop_assert!(dc.redlines_ok(&state));
        // Integerization must hold everywhere.
        for j in 0..dc.n_nodes() {
            let used: f64 =
                base.frac[j].iter().sum::<f64>() * dc.node_type(j).cores_per_node as f64;
            prop_assert!((used - used.round()).abs() < 1e-6);
        }
    }
}
