//! Artifact-pipeline integration tests: scenario snapshots and MPS
//! export across crate boundaries — the reproducibility features a
//! downstream user leans on when filing a bug or pinning a result.

use thermaware::core::{solve_three_stage, ThreeStageOptions};
use thermaware::datacenter::{ScenarioParams, ScenarioSnapshot};
use thermaware::lp::{to_mps, Problem, RowOp, Sense};

#[test]
fn snapshot_restores_and_replans_to_the_same_reward() {
    let dc = ScenarioParams {
        n_nodes: 8,
        n_crac: 1,
        ..ScenarioParams::paper(0.2, 0.3)
    }
    .build(21)
    .unwrap();
    let original = solve_three_stage(&dc, &ThreeStageOptions::default()).unwrap();

    // Round-trip through JSON, as an artifact file would.
    let json = serde_json::to_string(&ScenarioSnapshot::capture(&dc)).unwrap();
    let restored = serde_json::from_str::<ScenarioSnapshot>(&json)
        .unwrap()
        .restore()
        .unwrap();
    let replanned = solve_three_stage(&restored, &ThreeStageOptions::default()).unwrap();

    let diff = (original.reward_rate() - replanned.reward_rate()).abs();
    assert!(
        diff <= 1e-6 * (1.0 + original.reward_rate()),
        "original {} vs restored {}",
        original.reward_rate(),
        replanned.reward_rate()
    );
    assert_eq!(original.pstates, replanned.pstates);
}

#[test]
fn any_workspace_lp_exports_to_mps() {
    // Build a representative optimization model and dump it: the export
    // must contain every section and one line per variable/row at least.
    let mut p = Problem::new(Sense::Maximize);
    let vars: Vec<_> = (0..12)
        .map(|j| p.add_var(&format!("seg{j}"), 0.0, 1.0 + j as f64 * 0.1, (j % 5) as f64))
        .collect();
    for i in 0..6 {
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(j, &v)| (v, ((i * 7 + j) % 5) as f64 - 2.0))
            .collect();
        p.add_row(&format!("row{i}"), &terms, RowOp::Le, 4.0 + i as f64);
    }
    let mps = to_mps(&p, "workspace model");
    assert!(mps.contains("ENDATA"));
    for j in 0..12 {
        assert!(mps.contains(&format!("seg{j}_{j}")), "missing column {j}");
    }
    for i in 0..6 {
        assert!(mps.contains(&format!("row{i}_{i}")), "missing row {i}");
    }
    // Sanity: the model still solves after export (export is read-only).
    assert!(p.solve().is_ok());
}

#[test]
fn snapshot_file_size_is_reasonable() {
    // Artifacts get attached to issues; a 10-node scenario should stay
    // well under a megabyte even with the full coefficient matrix.
    let dc = ScenarioParams::small_test().build(2).unwrap();
    let json = serde_json::to_string(&ScenarioSnapshot::capture(&dc)).unwrap();
    assert!(
        json.len() < 1_000_000,
        "snapshot unexpectedly large: {} bytes",
        json.len()
    );
    // And it includes the interference matrix (the expensive-to-recreate
    // part).
    assert!(json.contains("interference"));
}
