//! Workspace-level integration tests: the full Figure-2 pipeline — first
//! step (three-stage assignment) into second step (dynamic scheduler) —
//! plus cross-solver consistency on a shared scenario.

use rand::rngs::StdRng;
use rand::SeedableRng;
use thermaware::core::{
    solve_baseline, solve_three_stage, solve_three_stage_best_of, verify_assignment,
    ThreeStageOptions,
};
use thermaware::datacenter::{CracSearchOptions, ScenarioParams};
use thermaware::scheduler::simulate;
use thermaware::workload::ArrivalTrace;

fn scenario(seed: u64) -> thermaware::datacenter::DataCenter {
    ScenarioParams {
        n_nodes: 20,
        n_crac: 1,
        ..ScenarioParams::paper(0.2, 0.3)
    }
    .build(seed)
    .expect("scenario")
}

#[test]
fn first_step_plan_feeds_second_step_cleanly() {
    let dc = scenario(1);
    let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).expect("first step");
    let report = verify_assignment(&dc, plan.crac_out_c(), &plan.pstates, Some(&plan.stage3));
    assert!(report.is_feasible(), "{report:?}");

    let mut rng = StdRng::seed_from_u64(77);
    let trace = ArrivalTrace::generate(&dc.workload, 30.0, &mut rng);
    let sim = simulate(&dc, &plan.pstates, &plan.stage3, &trace);
    // The online scheduler realizes a substantial fraction of the
    // steady-state plan and never overshoots it by more than noise.
    assert!(sim.reward_rate > 0.5 * plan.reward_rate());
    assert!(sim.reward_rate < 1.1 * plan.reward_rate());
}

#[test]
fn three_stage_usually_beats_baseline_in_set3_conditions() {
    // Set 3 (static 20%, Vprop 0.3) is where the paper reports ~10%
    // average improvement. A single small scenario is noisy, so average a
    // few seeds and require a positive mean improvement.
    let mut improvements = Vec::new();
    for seed in 1..=5 {
        let dc = scenario(seed);
        let plan = solve_three_stage_best_of(&dc, &[25.0, 50.0], CracSearchOptions::default())
            .expect("plan");
        let base = solve_baseline(&dc, CracSearchOptions::default()).expect("baseline");
        improvements.push(100.0 * (plan.reward_rate() - base.reward_rate) / base.reward_rate);
    }
    let mean = improvements.iter().sum::<f64>() / improvements.len() as f64;
    assert!(
        mean > 0.0,
        "expected positive mean improvement, got {mean:.2}% from {improvements:?}"
    );
}

#[test]
fn both_solvers_respect_the_same_budget_and_redlines() {
    let dc = scenario(2);
    let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).unwrap();
    let report = verify_assignment(&dc, plan.crac_out_c(), &plan.pstates, Some(&plan.stage3));
    assert!(report.is_feasible());

    let base = solve_baseline(&dc, CracSearchOptions::default()).unwrap();
    let node_powers = thermaware::core::baseline::baseline_node_powers(&dc, &base.frac);
    let (it, cooling, state) = dc.total_power_kw(&base.crac_out_c, &node_powers);
    assert!(it + cooling <= dc.budget.p_const_kw * (1.0 + 1e-6) + 1e-6);
    assert!(dc.redlines_ok(&state));
}

#[test]
fn reward_rates_bounded_by_arrival_ceiling() {
    let dc = scenario(3);
    let ceiling = dc.workload.max_reward_rate();
    let plan = solve_three_stage(&dc, &ThreeStageOptions::default()).unwrap();
    let base = solve_baseline(&dc, CracSearchOptions::default()).unwrap();
    assert!(plan.reward_rate() <= ceiling * (1.0 + 1e-9));
    assert!(base.reward_rate <= ceiling * (1.0 + 1e-9));
}

#[test]
fn higher_power_budget_never_hurts() {
    // Relax the budget by 20% and re-solve: the reward cannot drop
    // (monotonicity sanity check across the whole pipeline).
    let dc = scenario(4);
    let before = solve_three_stage(&dc, &ThreeStageOptions::default())
        .unwrap()
        .reward_rate();
    let mut relaxed = dc.clone();
    relaxed.budget.p_const_kw *= 1.2;
    let after = solve_three_stage(&relaxed, &ThreeStageOptions::default())
        .unwrap()
        .reward_rate();
    assert!(
        after >= before - 1e-6,
        "more power lowered reward: {before} -> {after}"
    );
}

#[test]
fn tighter_redlines_never_help() {
    let dc = scenario(5);
    let before = solve_three_stage(&dc, &ThreeStageOptions::default())
        .unwrap()
        .reward_rate();
    let mut tight = dc.clone();
    tight.thermal.node_redline_c -= 3.0;
    let after = solve_three_stage(&tight, &ThreeStageOptions::default())
        .map(|s| s.reward_rate())
        .unwrap_or(0.0);
    assert!(
        after <= before + 1e-6,
        "tighter redline raised reward: {before} -> {after}"
    );
}
